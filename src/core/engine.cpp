#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include <atomic>

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "core/repair.h"
#include "core/view.h"
#include "data/group_by.h"
#include "factor/frep.h"
#include "factor/model_cache.h"
#include "fmatrix/materialize.h"
#include "fmatrix/right_mult.h"
#include "model/linear.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace reptile {
namespace {

// Context assembled once per candidate evaluation.
struct CandidateContext {
  std::vector<const FTree*> trees;                 // intercept first, candidate last
  std::vector<const LocalAggregates*> locals;      // aligned with trees
  std::vector<std::vector<int>> tree_columns;      // table columns per tree
  std::vector<int> key_columns;                    // flattened (no intercept)
};

// Attribute id of a table column among the drilled attributes, or nullopt.
std::optional<AttrId> FindDrilledAttr(const CandidateContext& ctx, int table_column) {
  for (size_t k = 1; k < ctx.tree_columns.size(); ++k) {
    for (size_t l = 0; l < ctx.tree_columns[k].size(); ++l) {
      if (ctx.tree_columns[k][l] == table_column) {
        return AttrId{static_cast<int>(k), static_cast<int>(l)};
      }
    }
  }
  return std::nullopt;
}

// Primitive statistics one complaint needs: its own decomposition plus any
// extra statistics frepair should restore (Appendix N). `extra_stats` is the
// batch-effective list: the per-call override when given, else the engine
// option.
std::vector<AggFn> ComplaintPrimitives(const Complaint& complaint,
                                       const std::vector<AggFn>& extra_stats) {
  std::vector<AggFn> primitives = RequiredPrimitives(complaint.agg);
  for (AggFn extra : extra_stats) {
    for (AggFn required : RequiredPrimitives(extra)) {
      if (std::find(primitives.begin(), primitives.end(), required) == primitives.end()) {
        primitives.push_back(required);
      }
    }
  }
  return primitives;
}

// Fallback token source for feature sets that cannot be content-hashed
// (custom features wrap opaque std::functions): every mutation mints a
// process-unique token, so such sessions never exchange models with anyone —
// including their own past.
std::atomic<uint64_t> g_feature_epoch{0};

}  // namespace

// Plan-stage product: everything about drilling one hierarchy a level deeper
// that is independent of the individual complaint, so a batch of complaints
// sharing this hierarchy extension shares it too. The intercept tree and its
// aggregates are per-plan copies (they are a few bytes): no two plans — and
// no two concurrent batches of different engines — share mutable or lazily
// initialised state. Group statistics and trained primitive models are keyed
// by the complaint's measure column; RecommendBatch fills them in dedicated
// parallel stages before any complaint ranking reads them.
struct Engine::CandidatePlan {
  int hierarchy = -1;
  std::string attribute;  // the newly added (drilled) attribute
  FTree intercept_tree;
  LocalAggregates intercept_locals;
  CandidateContext ctx;
  FactorizedMatrix layout;  // reference matrix for layout queries
  double build_seconds = 0.0;

  // Per measure column (-1 = COUNT only): y moments over all parallel groups
  // and the non-empty groups for featurization.
  std::map<int, std::vector<Moments>> y_moments;
  std::map<int, GroupByResult> groups;

  // Trained models: (measure column, primitive) -> fit. shared_ptr because
  // an entry may be owned by the process-shared fitted-model cache (and so
  // by every concurrent batch that hit the same key) rather than this plan.
  std::map<std::pair<int, AggFn>, std::shared_ptr<const FittedModel>> fits;
};

const HierarchyRecommendation& Recommendation::best() const {
  REPTILE_CHECK(best_index >= 0 && best_index < static_cast<int>(candidates.size()))
      << "no drill-down candidate available";
  return candidates[static_cast<size_t>(best_index)];
}

Engine::Engine(const Dataset* dataset, SharedAggregateCache* shared_cache,
               SharedFittedModelCache* model_cache, std::shared_ptr<const void> owner,
               EngineOptions options, const AggregateEpochs* epochs,
               std::string version_token)
    : owner_(std::move(owner)),
      dataset_(dataset),
      model_cache_(model_cache),
      options_(options),
      drill_state_(dataset, options.drill_mode, shared_cache, epochs),
      version_token_(std::move(version_token)) {
  REPTILE_CHECK(dataset != nullptr);
  REPTILE_CHECK_GE(options_.num_threads, 0);
}

Engine::Engine(const Dataset* dataset, EngineOptions options)
    : Engine(dataset, nullptr, nullptr, nullptr, options) {}

Engine::~Engine() = default;

void Engine::BumpFeatureToken() {
  // A custom feature is an opaque std::function — no stable content identity
  // exists, so the partition falls back to a process-unique epoch token.
  // Such keys start with '#' and are skipped by snapshot persistence.
  if (!custom_features_.empty()) {
    feature_token_ =
        "#" + std::to_string(g_feature_epoch.fetch_add(1, std::memory_order_relaxed) + 1);
    return;
  }
  // Otherwise the feature set is fully value-determined: hash the auxiliary
  // registrations (spec fields AND the joined table's contents — the table
  // is borrowed, so identity says nothing) plus the Z exclusions. Equal
  // registrations produce equal tokens across sessions and across process
  // restarts, which is what lets persisted fitted-model entries warm a
  // fresh process (api/dataset_snapshot.h).
  Fnv1aHasher hasher;
  hasher.MixU64(auxiliaries_.size());
  for (const AuxiliarySpec& aux : auxiliaries_) {
    hasher.MixString(aux.name);
    hasher.MixU64(aux.join_attrs.size());
    for (const std::string& attr : aux.join_attrs) hasher.MixString(attr);
    hasher.MixString(aux.measure);
    hasher.MixBool(aux.normalize);
    const Table& table = *aux.table;
    hasher.MixU64(table.num_rows());
    hasher.MixI64(table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      hasher.MixString(table.column_name(c));
      hasher.MixBool(table.is_dimension(c));
      if (table.is_dimension(c)) {
        const ValueDict& dict = table.dict(c);
        hasher.MixI32(dict.size());
        for (int32_t code = 0; code < dict.size(); ++code) hasher.MixString(dict.name(code));
        for (int32_t code : table.dim_codes(c)) hasher.MixI32(code);
      } else {
        for (double v : table.measure(c)) hasher.MixDouble(v);
      }
    }
  }
  hasher.MixU64(z_exclusions_.size());
  for (const std::string& name : z_exclusions_) hasher.MixString(name);
  feature_token_ = "h:" + hasher.Hex();
}

void Engine::RegisterAuxiliary(AuxiliarySpec spec) {
  REPTILE_CHECK(spec.table != nullptr);
  REPTILE_CHECK(!spec.join_attrs.empty());
  (void)spec.table->ColumnIndex(spec.measure);  // validate eagerly
  for (const std::string& attr : spec.join_attrs) {
    (void)dataset_->ResolveAttr(attr);
    (void)spec.table->ColumnIndex(attr);
  }
  auxiliaries_.push_back(std::move(spec));
  BumpFeatureToken();
}

void Engine::RegisterCustomFeature(CustomFeatureSpec spec) {
  (void)dataset_->ResolveAttr(spec.attr);
  REPTILE_CHECK(spec.fn != nullptr);
  custom_features_.push_back(std::move(spec));
  BumpFeatureToken();
}

void Engine::ExcludeFromRandomEffects(const std::string& feature_name) {
  z_exclusions_.push_back(feature_name);
  BumpFeatureToken();
}

Status Engine::ValidateComplaint(const Complaint& complaint) const {
  return ::reptile::ValidateComplaint(dataset_->table(), complaint);
}

Status Engine::ValidateModelSpec(const ModelSpec& spec) const {
  REPTILE_RETURN_IF_ERROR(spec.Validate());
  if (spec.backend == ModelSpec::Backend::kFactorized) {
    for (const AuxiliarySpec& aux : auxiliaries_) {
      if (aux.join_attrs.size() > 1) {
        return Status::InvalidArgument(
            "backend 'factorized' cannot be forced while the multi-attribute auxiliary '" +
            aux.name +
            "' is registered (its feature spans several attributes and requires "
            "materialisation); use backend 'auto' or 'dense'");
      }
    }
  }
  return Status::Ok();
}

ModelSpec Engine::EffectiveModelSpec(const BatchOverrides& overrides) const {
  ModelSpec spec = overrides.model != nullptr ? *overrides.model : options_.model;
  if (overrides.model == nullptr && overrides.extra_repair_stats != nullptr) {
    spec.extra_repair_stats = *overrides.extra_repair_stats;
  }
  if (spec.backend == ModelSpec::Backend::kAuto) {
    // kAuto picks factorised iff every feature is single-attribute, which is
    // statically certain unless a multi-attribute auxiliary is registered
    // (intercept, main-effect, custom and single-join auxiliary features all
    // bind one attribute). Canonicalizing here keeps the cache key and the
    // response echo equal to what the fit stage really does.
    bool multi_attribute = false;
    for (const AuxiliarySpec& aux : auxiliaries_) {
      if (aux.join_attrs.size() > 1) multi_attribute = true;
    }
    if (!multi_attribute) spec.backend = ModelSpec::Backend::kFactorized;
  }
  if (spec.random_effects == ModelSpec::RandomPolicy::kDefault) {
    // A spec that does not name a random-effect policy inherits the engine
    // option — the pre-ModelSpec configuration surface sessions still use.
    spec.random_effects = options_.random_effects == RandomEffects::kInterceptOnly
                              ? ModelSpec::RandomPolicy::kIntercepts
                              : ModelSpec::RandomPolicy::kAll;
  }
  return spec;
}

Recommendation Engine::RecommendDrillDown(const Complaint& complaint) {
  std::vector<Recommendation> batch = RecommendBatch(std::span<const Complaint>(&complaint, 1));
  return std::move(batch.front());
}

ThreadPool* Engine::PoolFor(int num_threads) {
  if (num_threads <= 1) return nullptr;
  // Machine-default width with sharing on: every engine in the process fans
  // out over the one SharedThreadPool(), so N concurrent sessions cost one
  // set of workers, not N. Concurrent ParallelFor calls on a pool are safe
  // (per-call latches); the engine's own tasks never submit to the pool they
  // run on, so sharing cannot deadlock.
  if (options_.share_pool && num_threads == ThreadPool::DefaultThreads()) {
    return SharedThreadPool();
  }
  // Otherwise: one owned pool per requested width, kept for the engine's
  // lifetime — a caller alternating per-call widths (say 4 and 8) must not
  // tear down and respawn workers on every batch. Idle pools cost a few
  // parked threads; the set of widths a caller actually uses is small.
  std::unique_ptr<ThreadPool>& pool = pools_[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return pool.get();
}

std::vector<Recommendation> Engine::RecommendBatch(std::span<const Complaint> complaints,
                                                   const BatchOverrides& overrides,
                                                   BatchTiming* timing) {
  if (timing != nullptr) *timing = BatchTiming();
  if (complaints.empty()) return {};  // nothing to plan — skip the cache pass
  Timer wall_timer;

  REPTILE_CHECK_GE(overrides.num_threads, 0);
  REPTILE_CHECK_GE(overrides.top_k, 0);
  int num_threads = overrides.num_threads > 0 ? overrides.num_threads : options_.num_threads;
  if (num_threads == 0) num_threads = ThreadPool::DefaultThreads();
  const int top_k = overrides.top_k > 0 ? overrides.top_k : options_.top_k;
  // One resolved ModelSpec for the whole call: per-call override or engine
  // option, legacy extra-stats override folded in, backend canonicalized.
  const ModelSpec spec = EffectiveModelSpec(overrides);
  const std::vector<AggFn>& extra_stats = spec.extra_repair_stats;
  ThreadPool* pool = PoolFor(num_threads);

  drill_state_.BeginInvocation();

  // Stage spans for the request trace: start offsets are captured on this
  // (coordinating) thread at each stage boundary — the fan-outs inside a
  // stage belong to that stage's span. Null trace = no recording at all.
  TraceContext* trace = overrides.trace;
  const double plan_start = trace != nullptr ? trace->ElapsedSeconds() : 0.0;

  // --- Plan stage: one shared plan per drillable hierarchy. The drill-down
  // aggregates every plan will read are prefetched first (builds fan out;
  // cache bookkeeping stays on this thread), after which plan assembly only
  // reads the cache and the plans themselves assemble concurrently. ---
  std::vector<int> drillable;
  for (int h = 0; h < dataset_->num_hierarchies(); ++h) {
    if (drill_state_.CanDrill(h)) drillable.push_back(h);
  }
  std::vector<std::pair<int, int>> aggregate_keys;
  for (int h : drillable) aggregate_keys.emplace_back(h, drill_state_.depth(h) + 1);
  for (int k = 0; k < dataset_->num_hierarchies(); ++k) {
    if (drill_state_.depth(k) == 0) continue;
    // A committed-depth entry is read only by the plans of *other*
    // hierarchies (BuildCandidatePlan skips k == h), so don't build entries
    // nothing will read — it matches exactly what the lazy sequential path
    // built, which matters under kStatic where every build is from scratch.
    bool read_by_some_plan =
        drillable.size() > 1 || (drillable.size() == 1 && drillable[0] != k);
    if (read_by_some_plan) aggregate_keys.emplace_back(k, drill_state_.depth(k));
  }
  std::map<std::pair<int, int>, double> aggregate_build_seconds =
      drill_state_.Prefetch(aggregate_keys, pool);

  std::vector<std::unique_ptr<CandidatePlan>> plans =
      ParallelMap<std::unique_ptr<CandidatePlan>>(
          pool, static_cast<int64_t>(drillable.size()),
          [&](int64_t i) { return BuildCandidatePlan(drillable[static_cast<size_t>(i)]); });
  for (std::unique_ptr<CandidatePlan>& plan : plans) {
    // A plan's build cost includes its candidate-depth aggregate build (the
    // committed-depth entries are shared across plans and invocations and
    // charged to none in particular — under kCacheDynamic they are usually
    // cache hits anyway).
    auto it = aggregate_build_seconds.find(
        std::make_pair(plan->hierarchy, drill_state_.depth(plan->hierarchy) + 1));
    if (it != aggregate_build_seconds.end()) plan->build_seconds += it->second;
  }
  stats_.plans_built += static_cast<int64_t>(plans.size());
  if (trace != nullptr) {
    trace->AddSpan("plan", plan_start, trace->ElapsedSeconds() - plan_start,
                   "plans=" + std::to_string(plans.size()));
  }
  const double fit_start = trace != nullptr ? trace->ElapsedSeconds() : 0.0;
  const int64_t trained_before = stats_.models_trained;
  const int64_t cache_hits_before = stats_.fit_cache_hits;

  // --- Execute stage (a): group statistics, one task per (plan, measure,
  // moments-or-groups). Map slots are inserted sequentially here; the tasks
  // only assign into their own pre-inserted slot. ---
  struct StatTask {
    CandidatePlan* plan;
    int measure_column;
    bool moments;  // true: y moments over all rows; false: non-empty group-by
  };
  std::vector<StatTask> stat_tasks;
  for (std::unique_ptr<CandidatePlan>& plan : plans) {
    for (const Complaint& complaint : complaints) {
      int measure = complaint.measure_column;
      if (plan->y_moments.find(measure) != plan->y_moments.end()) continue;
      plan->y_moments.emplace(measure, std::vector<Moments>());
      plan->groups.emplace(measure, GroupByResult());
      stat_tasks.push_back(StatTask{plan.get(), measure, true});
      stat_tasks.push_back(StatTask{plan.get(), measure, false});
    }
  }
  ParallelFor(pool, static_cast<int64_t>(stat_tasks.size()), [&](int64_t i) {
    const StatTask& task = stat_tasks[static_cast<size_t>(i)];
    if (task.moments) {
      task.plan->y_moments.find(task.measure_column)->second =
          BuildGroupMoments(task.plan->layout, dataset_->table(), task.plan->ctx.tree_columns,
                            task.measure_column);
    } else {
      task.plan->groups.find(task.measure_column)->second =
          GroupBy(dataset_->table(), task.plan->ctx.key_columns, task.measure_column);
    }
  });

  // --- Execute stage (b): model fits, one task per distinct (plan, measure,
  // primitive) triple. The work list is assembled in complaint order, so the
  // "owner" of each fit — the first complaint to require it, which its
  // train_seconds are charged to — matches what lazy sequential training
  // charged. Each task first consults the process-shared fitted-model cache
  // (when the spec allows): a hit reuses the very vector some earlier call —
  // this session's or another's — trained, a miss fits under the cache's
  // single-flight latch so concurrent sessions racing on one key train once
  // between them. Results land by task index and are installed into the
  // plans sequentially afterwards. ---
  struct FitTask {
    CandidatePlan* plan;
    size_t plan_index;
    int measure_column;
    AggFn primitive;
    size_t owner_complaint;
  };
  std::vector<FitTask> fit_tasks;
  for (size_t c = 0; c < complaints.size(); ++c) {
    std::vector<AggFn> primitives = ComplaintPrimitives(complaints[c], extra_stats);
    for (size_t p = 0; p < plans.size(); ++p) {
      for (AggFn primitive : primitives) {
        auto key = std::make_pair(complaints[c].measure_column, primitive);
        if (plans[p]->fits.find(key) != plans[p]->fits.end()) continue;
        plans[p]->fits.emplace(key, nullptr);  // dedup slot; installed below
        fit_tasks.push_back(
            FitTask{plans[p].get(), p, complaints[c].measure_column, primitive, c});
      }
    }
  }
  struct FitOutcome {
    std::shared_ptr<const FittedModel> model;
    bool performed = false;  // this call ran the fit (vs a cache hit)
  };
  const bool use_fit_cache = model_cache_ != nullptr && spec.fit_cache;
  std::vector<FitOutcome> outcomes =
      ParallelMap<FitOutcome>(pool, static_cast<int64_t>(fit_tasks.size()), [&](int64_t i) {
        const FitTask& task = fit_tasks[static_cast<size_t>(i)];
        auto run = [&] {
          return FitPrimitive(*task.plan, task.measure_column, task.primitive, spec);
        };
        if (!use_fit_cache) {
          return FitOutcome{std::make_shared<const FittedModel>(run()), true};
        }
        auto [model, performed] = model_cache_->GetOrFit(
            FitCacheKey(spec, task.plan->hierarchy, task.measure_column, task.primitive),
            run);
        return FitOutcome{std::move(model), performed};
      });

  // Install and account sequentially: plan->fits mutation, the engine
  // counters, and the deterministic cost attribution — each fit's duration
  // charged to the (owner complaint, plan) cell that first required it;
  // cache hits charge nothing, their work happened in some earlier call.
  std::vector<double> charged_train(complaints.size() * plans.size(), 0.0);
  double train_seconds_sum = 0.0;
  int em_iterations_run = 0;
  for (size_t i = 0; i < fit_tasks.size(); ++i) {
    const FitTask& task = fit_tasks[i];
    FitOutcome& outcome = outcomes[i];
    if (outcome.performed) {
      stats_.models_trained += 1;
      double seconds = outcome.model->fit_seconds;
      charged_train[task.owner_complaint * plans.size() + task.plan_index] += seconds;
      train_seconds_sum += seconds;
    } else {
      stats_.fit_cache_hits += 1;
    }
    // The realized EM count is a property of the model, not of who fitted
    // it, so hits and fresh fits contribute alike — warm calls echo the same
    // number as the cold call that trained the model.
    em_iterations_run = std::max(em_iterations_run, outcome.model->em_iterations_run);
    task.plan->fits.find(std::make_pair(task.measure_column, task.primitive))->second =
        std::move(outcome.model);
  }
  if (trace != nullptr) {
    // The span covers group statistics + fits + install; its detail is the
    // cache outcome the warm-vs-cold benchmarks care about.
    trace->AddSpan("fit", fit_start, trace->ElapsedSeconds() - fit_start,
                   "hits=" + std::to_string(stats_.fit_cache_hits - cache_hits_before) +
                       " misses=" + std::to_string(stats_.models_trained - trained_before));
  }
  const double rank_start = trace != nullptr ? trace->ElapsedSeconds() : 0.0;

  // --- Execute stage (c): ranking, one task per (complaint, plan) pair.
  // Every task reads the now-immutable plans; results land by index and are
  // merged in complaint order, so output order is scheduling-independent. ---
  std::vector<HierarchyRecommendation> cells =
      ParallelMap<HierarchyRecommendation>(
          pool, static_cast<int64_t>(complaints.size() * plans.size()), [&](int64_t i) {
            size_t c = static_cast<size_t>(i) / plans.size();
            size_t p = static_cast<size_t>(i) % plans.size();
            return ExecuteComplaint(*plans[p], complaints[c], top_k, extra_stats,
                                    charged_train[static_cast<size_t>(i)],
                                    /*charge_build=*/c == 0);
          });
  stats_.complaints_evaluated += static_cast<int64_t>(complaints.size());

  std::vector<Recommendation> out;
  out.reserve(complaints.size());
  for (size_t c = 0; c < complaints.size(); ++c) {
    Recommendation rec;
    double best = std::numeric_limits<double>::infinity();
    for (size_t p = 0; p < plans.size(); ++p) {
      rec.candidates.push_back(std::move(cells[c * plans.size() + p]));
      const HierarchyRecommendation& cand = rec.candidates.back();
      if (!cand.top_groups.empty() && cand.best_score < best) {
        best = cand.best_score;
        rec.best_index = static_cast<int>(rec.candidates.size()) - 1;
      }
    }
    out.push_back(std::move(rec));
  }
  if (trace != nullptr) {
    trace->AddSpan("rank", rank_start, trace->ElapsedSeconds() - rank_start);
  }
  if (timing != nullptr) {
    timing->train_seconds = train_seconds_sum;
    timing->wall_seconds = wall_timer.Seconds();
    timing->em_iterations_run = em_iterations_run;
  }
  return out;
}

void Engine::CommitDrillDown(int hierarchy) { drill_state_.Commit(hierarchy); }

std::string Engine::FitCacheKey(const ModelSpec& spec, int hierarchy, int measure_column,
                                AggFn primitive) const {
  // Everything a fitted model depends on, given the immutable prepared
  // dataset the cache hangs off: the feature-registration partition, the
  // canonical spec (which carries the concrete random-effect policy — the
  // caller always keys on EffectiveModelSpec), the full committed-depth
  // vector (every committed hierarchy's tree shapes the feature matrix),
  // and the fit coordinates. The candidate depth is committed[hierarchy]+1,
  // so it needs no separate component.
  std::string key = feature_token_;
  key += '|';
  key += spec.CacheKey();
  key += "|c:";
  for (int h = 0; h < dataset_->num_hierarchies(); ++h) {
    if (h > 0) key += ',';
    key += std::to_string(drill_state_.depth(h));
  }
  key += "|h" + std::to_string(hierarchy);
  key += "|m" + std::to_string(measure_column);
  key += "|p";
  key += AggFnName(primitive);
  // Version component last, and only for appended versions (v1's token is
  // empty), so v1 keys — the spelling snapshots persist — stay unchanged.
  if (!version_token_.empty()) key += "|v:" + version_token_;
  return key;
}

std::unique_ptr<Engine::CandidatePlan> Engine::BuildCandidatePlan(int h) const {
  Timer build_timer;
  auto plan = std::make_unique<CandidatePlan>();
  plan->hierarchy = h;
  int new_depth = drill_state_.depth(h) + 1;
  plan->attribute = dataset_->hierarchy(h).attributes[static_cast<size_t>(new_depth) - 1];

  // The intercept tree and its (trivial) aggregates are owned by the plan:
  // immutable after this point and never shared across plans or engines.
  plan->intercept_tree = FTree::Singleton();
  plan->intercept_locals = LocalAggregates(&plan->intercept_tree);

  // Assemble the trees: intercept, committed hierarchies, candidate last (the
  // attribute-order requirement of Section 3.4). Tree/aggregate construction
  // went through the drill-down cache prefetch (Section 4.4); Peek is a pure
  // read here.
  CandidateContext& ctx = plan->ctx;
  ctx.trees.push_back(&plan->intercept_tree);
  ctx.locals.push_back(&plan->intercept_locals);
  ctx.tree_columns.push_back({});
  for (int k = 0; k < dataset_->num_hierarchies(); ++k) {
    if (k == h || drill_state_.depth(k) == 0) continue;
    const HierarchyAggregates& agg = drill_state_.Peek(k, drill_state_.depth(k));
    ctx.trees.push_back(agg.tree.get());
    ctx.locals.push_back(agg.locals.get());
    ctx.tree_columns.push_back(dataset_->HierarchyColumns(k, drill_state_.depth(k)));
  }
  const HierarchyAggregates& cand_agg = drill_state_.Peek(h, new_depth);
  ctx.trees.push_back(cand_agg.tree.get());
  ctx.locals.push_back(cand_agg.locals.get());
  ctx.tree_columns.push_back(dataset_->HierarchyColumns(h, new_depth));
  for (size_t k = 1; k < ctx.tree_columns.size(); ++k) {
    ctx.key_columns.insert(ctx.key_columns.end(), ctx.tree_columns[k].begin(),
                           ctx.tree_columns[k].end());
  }

  // Reference matrix for layout queries (per-primitive matrices share it).
  for (const FTree* t : ctx.trees) plan->layout.AddTree(t);

  plan->build_seconds = build_timer.Seconds();
  return plan;
}

FittedModel Engine::FitPrimitive(const CandidatePlan& plan, int measure_column,
                                 AggFn primitive, const ModelSpec& spec) const {
  const Table& table = dataset_->table();
  const CandidateContext& ctx = plan.ctx;

  // Group statistics for this measure, computed by the batch's statistics
  // stage: y moments over all parallel groups (empty groups included — the
  // worst case of Section 5.1.4) and the non-empty groups for featurization.
  // Shared, read-only, across every primitive and concurrent fit.
  auto moments_it = plan.y_moments.find(measure_column);
  REPTILE_CHECK(moments_it != plan.y_moments.end());
  const std::vector<Moments>& y_moments = moments_it->second;
  auto groups_it = plan.groups.find(measure_column);
  REPTILE_CHECK(groups_it != plan.groups.end());
  const GroupByResult& groups = groups_it->second;

  FactorizedMatrix fm;
  for (const FTree* t : ctx.trees) fm.AddTree(t);

  // Intercept.
  std::vector<std::string> column_names;
  {
    FeatureColumn intercept;
    intercept.name = "intercept";
    intercept.attr = AttrId{0, 0};
    intercept.value_map = {1.0};
    fm.AddColumn(std::move(intercept));
    column_names.push_back("intercept");
  }
  // Default main-effect features for every drilled attribute (§3.3.1).
  // An attribute whose every value identifies at most one group would make
  // the median-of-Y feature the target itself (pure leakage: the model
  // would interpolate the corrupted group and the repair would be a
  // no-op), so such attributes are skipped and the model relies on the
  // other attributes and the auxiliary signals.
  for (size_t k = 1; k < ctx.tree_columns.size(); ++k) {
    for (size_t l = 0; l < ctx.tree_columns[k].size(); ++l) {
      int column = ctx.tree_columns[k][l];
      int flat = fm.FlatAttrIndex(AttrId{static_cast<int>(k), static_cast<int>(l)});
      size_t key_pos = static_cast<size_t>(flat) - 1;
      {
        std::vector<int32_t> groups_per_code(
            static_cast<size_t>(table.dict(column).size()), 0);
        bool repeated = false;
        for (size_t g = 0; g < groups.num_groups() && !repeated; ++g) {
          int32_t code = groups.key(g, key_pos);
          if (++groups_per_code[static_cast<size_t>(code)] >= 2) repeated = true;
        }
        if (!repeated) continue;
      }
      FeatureColumn fc;
      fc.name = table.column_name(column);
      fc.attr = AttrId{static_cast<int>(k), static_cast<int>(l)};
      fc.value_map = MainEffectMap(groups, key_pos, primitive, table.dict(column).size());
      column_names.push_back(fc.name);
      fm.AddColumn(std::move(fc));
    }
  }
  // Auxiliary datasets (§3.3.2, Appendix H): applicable once every join
  // attribute has been drilled.
  for (const AuxiliarySpec& aux : auxiliaries_) {
    std::vector<AttrId> attrs;
    std::vector<int> base_columns;
    bool applicable = true;
    for (const std::string& join_attr : aux.join_attrs) {
      int base_column = table.ColumnIndex(join_attr);
      std::optional<AttrId> attr = FindDrilledAttr(ctx, base_column);
      if (!attr.has_value()) {
        applicable = false;
        break;
      }
      attrs.push_back(*attr);
      base_columns.push_back(base_column);
    }
    if (!applicable) continue;
    int measure = aux.table->ColumnIndex(aux.measure);
    FeatureColumn fc;
    fc.name = aux.name;
    if (attrs.size() == 1) {
      int aux_join = aux.table->ColumnIndex(aux.join_attrs[0]);
      std::vector<int32_t> translated = TranslateCodes(
          aux.table->dict(aux_join), table.dict(base_columns[0]), aux.table->dim_codes(aux_join));
      fc.attr = attrs[0];
      fc.value_map = AuxiliaryMapFromCodes(translated, aux.table->measure(measure),
                                           table.dict(base_columns[0]).size(), aux.normalize);
    } else {
      fc.is_multi = true;
      fc.attrs = attrs;
      std::vector<std::vector<int32_t>> translated(attrs.size());
      std::vector<const std::vector<int32_t>*> code_ptrs;
      for (size_t j = 0; j < attrs.size(); ++j) {
        int aux_join = aux.table->ColumnIndex(aux.join_attrs[j]);
        translated[j] = TranslateCodes(aux.table->dict(aux_join), table.dict(base_columns[j]),
                                       aux.table->dim_codes(aux_join));
        code_ptrs.push_back(&translated[j]);
      }
      fc.multi_map =
          MultiAuxiliaryMapFromCodes(code_ptrs, aux.table->measure(measure), aux.normalize);
      fc.missing_value = 0.0;
    }
    fm.AddColumn(std::move(fc));
    column_names.push_back(aux.name);
  }
  // Custom features (§3.3.3).
  for (const CustomFeatureSpec& custom : custom_features_) {
    int base_column = table.ColumnIndex(custom.attr);
    std::optional<AttrId> attr = FindDrilledAttr(ctx, base_column);
    if (!attr.has_value()) continue;
    int flat = fm.FlatAttrIndex(*attr);
    size_t key_pos = static_cast<size_t>(flat) - 1;
    int32_t card = table.dict(base_column).size();
    AttrValueStats stats = CollectAttrValueStats(groups, key_pos, primitive, card);
    FeatureColumn fc;
    fc.name = custom.name;
    fc.attr = *attr;
    fc.value_map = custom.fn(stats);
    REPTILE_CHECK_EQ(static_cast<int32_t>(fc.value_map.size()), card)
        << "custom feature " << custom.name << " returned wrong cardinality";
    fm.AddColumn(std::move(fc));
    column_names.push_back(custom.name);
  }

  // Random-effect columns (§3.3.4): intercept-only by default, or every
  // non-excluded feature. The policy comes from the effective spec (the
  // caller canonicalized kDefault away); the engine option is only the
  // fallback for a raw spec handed in directly.
  std::vector<int> z_cols;
  bool intercept_only =
      spec.random_effects == ModelSpec::RandomPolicy::kDefault
          ? options_.random_effects == RandomEffects::kInterceptOnly
          : spec.random_effects == ModelSpec::RandomPolicy::kIntercepts;
  if (intercept_only) {
    z_cols.push_back(0);
  } else {
    for (int c = 0; c < fm.num_cols(); ++c) {
      bool excluded = false;
      for (const std::string& name : z_exclusions_) {
        if (column_names[static_cast<size_t>(c)] == name) excluded = true;
      }
      if (!excluded) z_cols.push_back(c);
    }
  }

  // y vector for this primitive.
  std::vector<double> y(y_moments.size());
  for (size_t i = 0; i < y_moments.size(); ++i) y[i] = y_moments[i].Value(primitive);

  // Backend selection and training. The timer covers the model fit only
  // (matching the pre-batching train_seconds semantics); group statistics
  // and feature-matrix assembly above count toward total_seconds.
  Timer train_timer;
  bool use_factorized;
  switch (spec.backend) {
    case ModelSpec::Backend::kFactorized:
      REPTILE_CHECK(fm.AllSingleAttribute())
          << "factorised backend requires single-attribute features";
      use_factorized = true;
      break;
    case ModelSpec::Backend::kDense:
      use_factorized = false;
      break;
    case ModelSpec::Backend::kAuto:
    default:
      use_factorized = fm.AllSingleAttribute();
      break;
  }
  MultiLevelOptions em;
  em.em_iters = spec.em_iterations;
  em.tolerance = spec.em_tolerance;

  FittedModel fit;
  DecomposedAggregates agg(&fm, ctx.locals);
  if (spec.kind == ModelSpec::Kind::kMultiLevel) {
    if (use_factorized) {
      FactorizedEmBackend backend(&fm, &agg, z_cols);
      MultiLevelModel model = TrainMultiLevel(&backend, y, em);
      fit.fitted = std::move(model.fitted);
      fit.em_iterations_run = model.iterations_run;
    } else {
      Matrix x = MaterializeMatrix(fm);
      std::vector<int64_t> begins;
      {
        // Cluster boundaries in row order.
        begins.push_back(0);
        for (int64_t row = 1; row < fm.num_rows(); ++row) {
          if (fm.ClusterOfRow(row) != fm.ClusterOfRow(row - 1)) begins.push_back(row);
        }
        begins.push_back(fm.num_rows());
      }
      DenseEmBackend backend(&x, begins, z_cols);
      MultiLevelModel model = TrainMultiLevel(&backend, y, em);
      fit.fitted = std::move(model.fitted);
      fit.em_iterations_run = model.iterations_run;
    }
  } else {
    if (use_factorized) {
      LinearModel model = TrainLinearFactorized(fm, agg, y);
      fit.fitted = FactorizedVecRightMultiply(fm, model.beta);
    } else {
      Matrix x = MaterializeMatrix(fm);
      LinearModel model = TrainLinearDense(x, y);
      fit.fitted.assign(static_cast<size_t>(fm.num_rows()), 0.0);
      for (size_t r = 0; r < x.rows(); ++r) {
        double acc = 0.0;
        for (size_t c = 0; c < x.cols(); ++c) acc += x(r, c) * model.beta[c];
        fit.fitted[r] = acc;
      }
    }
  }

  fit.fit_seconds = train_timer.Seconds();
  return fit;
}

HierarchyRecommendation Engine::ExecuteComplaint(const CandidatePlan& plan,
                                                 const Complaint& complaint, int top_k,
                                                 const std::vector<AggFn>& extra_stats,
                                                 double charged_train_seconds,
                                                 bool charge_build) const {
  Timer rank_timer;
  const Table& table = dataset_->table();
  const CandidateContext& ctx = plan.ctx;
  HierarchyRecommendation rec;
  rec.hierarchy = plan.hierarchy;
  rec.attribute = plan.attribute;
  rec.key_columns = ctx.key_columns;
  rec.model_rows = plan.layout.num_rows();
  rec.model_clusters = plan.layout.num_clusters();
  rec.train_seconds = charged_train_seconds;

  // The complaint tuple's siblings for ranking.
  GroupByResult siblings =
      GroupBy(table, ctx.key_columns, complaint.measure_column, complaint.filter);

  // Matrix row of each sibling group.
  std::vector<int64_t> sibling_rows(siblings.num_groups());
  {
    std::vector<int64_t> leaves(ctx.trees.size(), 0);
    for (size_t g = 0; g < siblings.num_groups(); ++g) {
      const std::vector<int32_t>& key = siblings.key_tuple(g);
      size_t offset = 0;
      for (size_t k = 1; k < ctx.trees.size(); ++k) {
        int depth = ctx.trees[k]->depth();
        int64_t leaf = ctx.trees[k]->LeafIndex(key.data() + offset, depth);
        REPTILE_CHECK_GE(leaf, 0) << "sibling group missing from f-tree";
        leaves[k] = leaf;
        offset += static_cast<size_t>(depth);
      }
      sibling_rows[g] = plan.layout.RowOfLeaves(leaves);
    }
  }

  // Per primitive statistic: fitted model values, trained by the batch's fit
  // stage and shared read-only by every complaint on this plan.
  GroupPredictions predictions(siblings.num_groups());
  for (AggFn primitive : ComplaintPrimitives(complaint, extra_stats)) {
    auto fit_it = plan.fits.find(std::make_pair(complaint.measure_column, primitive));
    REPTILE_CHECK(fit_it != plan.fits.end() && fit_it->second != nullptr)
        << "primitive model missing from batch fit stage";
    const std::vector<double>& fitted = fit_it->second->fitted;
    for (size_t g = 0; g < siblings.num_groups(); ++g) {
      predictions[g][primitive] = fitted[static_cast<size_t>(sibling_rows[g])];
    }
  }

  // Repair each sibling and rank by the repaired complaint value.
  std::vector<ScoredGroup> ranked = RankGroups(siblings, predictions, complaint);
  rec.best_score =
      ranked.empty() ? std::numeric_limits<double>::infinity() : ranked.front().score;
  int keep = std::min<int>(top_k, static_cast<int>(ranked.size()));
  for (int i = 0; i < keep; ++i) {
    const ScoredGroup& sg = ranked[static_cast<size_t>(i)];
    GroupRecommendation gr;
    gr.description = FormatGroupKey(table, ctx.key_columns, sg.key);
    gr.key = sg.key;
    gr.observed = sg.observed;
    gr.repaired = sg.repaired;
    gr.repaired_complaint_value = sg.repaired_complaint_value;
    gr.score = sg.score;
    std::optional<size_t> sibling = siblings.Find(sg.key);
    REPTILE_CHECK(sibling.has_value());
    gr.predicted = predictions[*sibling];
    rec.top_groups.push_back(std::move(gr));
  }
  // total_seconds = this complaint's own ranking work plus its deterministic
  // share of the shared costs (fits it was first to require; the plan build,
  // charged to the batch's first complaint). All three are per-task sums, so
  // the value is meaningful under concurrency.
  rec.total_seconds = rank_timer.Seconds() + charged_train_seconds;
  if (charge_build) rec.total_seconds += plan.build_seconds;
  return rec;
}

}  // namespace reptile
