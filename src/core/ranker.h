// Group ranking (paper Sections 2.1 and 3.1, Problem 1).
//
// Given the sibling groups of a candidate drill-down (the provenance of the
// complaint tuple grouped one level deeper), each group is scored by the
// extent that repairing its statistics to their expected values resolves the
// complaint: score = fcomp( G( V' \ {t} u {frepair(t)} ) ), computed in O(1)
// per group through the distributive moment algebra.

#ifndef REPTILE_CORE_RANKER_H_
#define REPTILE_CORE_RANKER_H_

#include <map>
#include <vector>

#include "agg/aggregates.h"
#include "core/complaint.h"
#include "data/group_by.h"

namespace reptile {

/// One scored drill-down group.
struct ScoredGroup {
  std::vector<int32_t> key;  // group-by key codes
  Moments observed;
  Moments repaired;
  double repaired_complaint_value = 0.0;  // t'_c's aggregate after the repair
  double score = 0.0;                     // fcomp(t'_c); lower is better
};

/// Per-group predicted primitive statistics (from the repair models), aligned
/// with the groups of the sibling GroupByResult.
using GroupPredictions = std::vector<std::map<AggFn, double>>;

/// Scores and ranks all sibling groups (ascending score).
std::vector<ScoredGroup> RankGroups(const GroupByResult& siblings,
                                    const GroupPredictions& predictions,
                                    const Complaint& complaint);

}  // namespace reptile

#endif  // REPTILE_CORE_RANKER_H_
