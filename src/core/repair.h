// Model-based repair (paper Sections 3.1-3.2).
//
// frepair replaces a drill-down group's statistics with their expected
// values. Complaint aggregates decompose into primitive distributive
// statistics (SUM = MEAN x COUNT, footnote 3/4 of the paper), one model is
// fit per primitive, and the repaired group is re-assembled as a moment
// sketch so it recombines with its siblings through the distributive merge.

#ifndef REPTILE_CORE_REPAIR_H_
#define REPTILE_CORE_REPAIR_H_

#include <map>
#include <vector>

#include "agg/aggregates.h"

namespace reptile {

/// Primitive statistics whose models are needed to repair `agg`:
/// COUNT -> {COUNT}; MEAN -> {MEAN}; SUM -> {COUNT, MEAN};
/// STD/VAR -> {COUNT, MEAN, STD} (the full expected tuple: parent STDs
/// recombine from every child triple, and STD anomalies are usually driven
/// by a diverging child mean).
std::vector<AggFn> RequiredPrimitives(AggFn agg);

/// Builds the repaired moment sketch of a group: starts from the observed
/// sketch and substitutes each predicted primitive (predictions are clamped
/// to their domains: COUNT >= 0, STD >= 0).
Moments ApplyRepair(const Moments& observed, const std::map<AggFn, double>& predicted);

}  // namespace reptile

#endif  // REPTILE_CORE_REPAIR_H_
