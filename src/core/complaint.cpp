#include "core/complaint.h"

#include <cmath>
#include <sstream>

namespace reptile {

double Complaint::Score(double value) const {
  switch (direction) {
    case ComplaintDirection::kTooHigh:
      return value;
    case ComplaintDirection::kTooLow:
      return -value;
    case ComplaintDirection::kEquals:
      return std::fabs(value - target);
  }
  return 0.0;
}

std::string Complaint::Describe() const {
  std::ostringstream os;
  os << AggFnName(agg);
  switch (direction) {
    case ComplaintDirection::kTooHigh:
      os << " is too high";
      break;
    case ComplaintDirection::kTooLow:
      os << " is too low";
      break;
    case ComplaintDirection::kEquals:
      os << " should be " << target;
      break;
  }
  return os.str();
}

Complaint Complaint::TooHigh(AggFn agg, int measure_column, RowFilter filter) {
  Complaint c;
  c.agg = agg;
  c.measure_column = measure_column;
  c.filter = std::move(filter);
  c.direction = ComplaintDirection::kTooHigh;
  return c;
}

Complaint Complaint::TooLow(AggFn agg, int measure_column, RowFilter filter) {
  Complaint c = TooHigh(agg, measure_column, std::move(filter));
  c.direction = ComplaintDirection::kTooLow;
  return c;
}

Complaint Complaint::Equals(AggFn agg, int measure_column, RowFilter filter, double target) {
  Complaint c = TooHigh(agg, measure_column, std::move(filter));
  c.direction = ComplaintDirection::kEquals;
  c.target = target;
  return c;
}

}  // namespace reptile
