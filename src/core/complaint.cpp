#include "core/complaint.h"

#include <cmath>
#include <sstream>

namespace reptile {

double Complaint::Score(double value) const {
  switch (direction) {
    case ComplaintDirection::kTooHigh:
      return value;
    case ComplaintDirection::kTooLow:
      return -value;
    case ComplaintDirection::kEquals:
      return std::fabs(value - target);
  }
  return 0.0;
}

std::string Complaint::Describe() const {
  std::ostringstream os;
  os << AggFnName(agg);
  switch (direction) {
    case ComplaintDirection::kTooHigh:
      os << " is too high";
      break;
    case ComplaintDirection::kTooLow:
      os << " is too low";
      break;
    case ComplaintDirection::kEquals:
      os << " should be " << target;
      break;
  }
  return os.str();
}

Complaint Complaint::TooHigh(AggFn agg, int measure_column, RowFilter filter) {
  Complaint c;
  c.agg = agg;
  c.measure_column = measure_column;
  c.filter = std::move(filter);
  c.direction = ComplaintDirection::kTooHigh;
  return c;
}

Complaint Complaint::TooLow(AggFn agg, int measure_column, RowFilter filter) {
  Complaint c = TooHigh(agg, measure_column, std::move(filter));
  c.direction = ComplaintDirection::kTooLow;
  return c;
}

Complaint Complaint::Equals(AggFn agg, int measure_column, RowFilter filter, double target) {
  Complaint c = TooHigh(agg, measure_column, std::move(filter));
  c.direction = ComplaintDirection::kEquals;
  c.target = target;
  return c;
}

Status ValidateComplaint(const Table& table, const Complaint& complaint) {
  if (complaint.measure_column == -1) {
    if (complaint.agg != AggFn::kCount) {
      return Status::InvalidArgument("aggregate " + AggFnName(complaint.agg) +
                                     " requires a measure column (only COUNT may omit it)");
    }
  } else {
    if (complaint.measure_column < 0 || complaint.measure_column >= table.num_columns()) {
      return Status::InvalidArgument("measure column index " +
                                     std::to_string(complaint.measure_column) +
                                     " is out of range");
    }
    if (table.is_dimension(complaint.measure_column)) {
      return Status::InvalidArgument("column '" + table.column_name(complaint.measure_column) +
                                     "' is a dimension column, not a measure");
    }
  }
  if (complaint.direction == ComplaintDirection::kEquals && !std::isfinite(complaint.target)) {
    return Status::InvalidArgument("EQUALS complaint target must be finite");
  }
  for (const auto& [column, code] : complaint.filter.equals) {
    if (column < 0 || column >= table.num_columns()) {
      return Status::InvalidArgument("filter column index " + std::to_string(column) +
                                     " is out of range");
    }
    if (!table.is_dimension(column)) {
      return Status::InvalidArgument("filter column '" + table.column_name(column) +
                                     "' is a measure column; filters apply to dimensions");
    }
    if (code < 0 || code >= table.dict(column).size()) {
      return Status::NotFound("filter code " + std::to_string(code) +
                              " does not occur in column '" + table.column_name(column) + "'");
    }
  }
  return Status::Ok();
}

Result<Complaint> ResolveComplaint(const Dataset& dataset, const std::string& aggregate,
                                   const std::string& measure,
                                   const std::vector<NamedPredicate>& where,
                                   ComplaintDirection direction, double target) {
  const Table& table = dataset.table();
  std::optional<AggFn> agg = ParseAggFn(aggregate);
  if (!agg.has_value()) {
    return Status::InvalidArgument("unknown aggregate '" + aggregate +
                                   "' (expected one of count, sum, mean, std, var)");
  }

  Complaint c;
  c.agg = *agg;
  c.direction = direction;
  c.target = target;

  if (measure.empty()) {
    c.measure_column = -1;
  } else {
    std::optional<int> column = table.FindColumn(measure);
    if (!column.has_value()) {
      return Status::NotFound("measure column '" + measure + "' does not exist");
    }
    c.measure_column = *column;
  }

  for (const NamedPredicate& pred : where) {
    std::optional<int> column = table.FindColumn(pred.column);
    if (!column.has_value()) {
      return Status::NotFound("filter column '" + pred.column + "' does not exist");
    }
    if (!table.is_dimension(*column)) {
      return Status::InvalidArgument("filter column '" + pred.column +
                                     "' is a measure column; filters apply to dimensions");
    }
    std::optional<int32_t> code = table.dict(*column).Find(pred.value);
    if (!code.has_value()) {
      return Status::NotFound("value '" + pred.value + "' does not occur in column '" +
                              pred.column + "'");
    }
    c.filter.Add(*column, *code);
  }

  REPTILE_RETURN_IF_ERROR(ValidateComplaint(table, c));
  return c;
}

}  // namespace reptile
