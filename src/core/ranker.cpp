#include "core/ranker.h"

#include <algorithm>

#include "common/check.h"
#include "core/repair.h"

namespace reptile {

std::vector<ScoredGroup> RankGroups(const GroupByResult& siblings,
                                    const GroupPredictions& predictions,
                                    const Complaint& complaint) {
  REPTILE_CHECK_EQ(siblings.num_groups(), predictions.size());
  Moments total;
  for (size_t g = 0; g < siblings.num_groups(); ++g) total.Add(siblings.stats(g));

  std::vector<ScoredGroup> scored;
  scored.reserve(siblings.num_groups());
  for (size_t g = 0; g < siblings.num_groups(); ++g) {
    ScoredGroup sg;
    sg.key = siblings.key_tuple(g);
    sg.observed = siblings.stats(g);
    sg.repaired = ApplyRepair(sg.observed, predictions[g]);
    // t'_c = G(V' \ {t} u {frepair(t)}): subtract the observed sketch, add
    // the repaired one.
    Moments repaired_total = total;
    repaired_total.Subtract(sg.observed);
    repaired_total.Add(sg.repaired);
    sg.repaired_complaint_value = repaired_total.Value(complaint.agg);
    sg.score = complaint.Score(sg.repaired_complaint_value);
    scored.push_back(std::move(sg));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredGroup& a, const ScoredGroup& b) { return a.score < b.score; });
  return scored;
}

}  // namespace reptile
