#include "data/snapshot.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace reptile {
namespace {

constexpr char kHeadMagic[8] = {'R', 'P', 'T', 'L', 'S', 'N', 'A', 'P'};
constexpr char kTailMagic[8] = {'R', 'P', 'T', 'L', 'E', 'N', 'D', '.'};
constexpr size_t kHeaderSize = sizeof(kHeadMagic) + 4;        // magic + version
constexpr size_t kTrailerSize = 8 + 4 + sizeof(kTailMagic);   // offset + crc + magic

// Sane ceiling for label lengths in the index: labels are short identifiers,
// so a longer one means the index bytes are garbage.
constexpr uint32_t kMaxLabelLength = 4096;

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void AppendLe32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendLe64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t ParseLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t ParseLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::U32(uint32_t v) { AppendLe32(buf_, v); }
void ByteWriter::U64(uint64_t v) { AppendLe64(buf_, v); }

void ByteWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(const std::string& s) {
  U64(s.size());
  buf_.append(s);
}

void ByteWriter::VecI32(const std::vector<int32_t>& v) {
  U64(v.size());
  for (int32_t x : v) I32(x);
}

void ByteWriter::VecI64(const std::vector<int64_t>& v) {
  U64(v.size());
  for (int64_t x : v) I64(x);
}

void ByteWriter::VecF64(const std::vector<double>& v) {
  U64(v.size());
  for (double x : v) F64(x);
}

bool ByteReader::Take(void* out, size_t n) {
  if (!status_.ok()) return false;
  if (n > size_ - pos_) {
    status_ = Status::ParseError("corrupt snapshot: section '" + label_ +
                                 "' truncated (read past its end)");
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

void ByteReader::Fail(const std::string& what) {
  if (status_.ok()) {
    status_ = Status::ParseError("corrupt snapshot: section '" + label_ + "': " + what);
  }
}

uint8_t ByteReader::U8() {
  char c = 0;
  return Take(&c, 1) ? static_cast<uint8_t>(c) : 0;
}

uint32_t ByteReader::U32() {
  char raw[4];
  return Take(raw, 4) ? ParseLe32(raw) : 0;
}

uint64_t ByteReader::U64() {
  char raw[8];
  return Take(raw, 8) ? ParseLe64(raw) : 0;
}

double ByteReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::Str() {
  uint64_t n = U64();
  if (!status_.ok()) return std::string();
  if (n > remaining()) {
    Fail("string length exceeds the bytes remaining");
    return std::string();
  }
  std::string s(data_ + pos_, static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return s;
}

std::vector<int32_t> ByteReader::VecI32() {
  uint64_t n = U64();
  if (!status_.ok()) return {};
  if (n > remaining() / 4) {
    Fail("vector count exceeds the bytes remaining");
    return {};
  }
  std::vector<int32_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = I32();
  return v;
}

std::vector<int64_t> ByteReader::VecI64() {
  uint64_t n = U64();
  if (!status_.ok()) return {};
  if (n > remaining() / 8) {
    Fail("vector count exceeds the bytes remaining");
    return {};
  }
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = I64();
  return v;
}

std::vector<double> ByteReader::VecF64() {
  uint64_t n = U64();
  if (!status_.ok()) return {};
  if (n > remaining() / 8) {
    Fail("vector count exceeds the bytes remaining");
    return {};
  }
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = F64();
  return v;
}

void SnapshotWriter::AddSection(const std::string& label, std::string payload) {
  for (const auto& [existing, bytes] : sections_) {
    REPTILE_CHECK(existing != label) << "duplicate snapshot section '" << label << "'";
  }
  sections_.emplace_back(label, std::move(payload));
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  std::string out;
  out.append(kHeadMagic, sizeof(kHeadMagic));
  AppendLe32(out, kSnapshotFormatVersion);

  std::string index;
  AppendLe32(index, static_cast<uint32_t>(sections_.size()));
  for (const auto& [label, payload] : sections_) {
    uint64_t offset = out.size();
    out.append(payload);
    AppendLe32(index, static_cast<uint32_t>(label.size()));
    index.append(label);
    AppendLe64(index, offset);
    AppendLe64(index, payload.size());
    AppendLe32(index, Crc32(payload.data(), payload.size()));
  }

  uint64_t index_offset = out.size();
  out.append(index);
  AppendLe64(out, index_offset);
  AppendLe32(out, Crc32(index.data(), index.size()));
  out.append(kTailMagic, sizeof(kTailMagic));

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot create snapshot file '" + path + "'");
  }
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file.good()) {
    return Status::IoError("short write to snapshot file '" + path + "'");
  }
  return Status::Ok();
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open snapshot file '" + path + "'");
  }
  SnapshotReader reader;
  reader.file_.assign(std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) {
    return Status::IoError("cannot read snapshot file '" + path + "'");
  }
  const std::string& buf = reader.file_;
  if (buf.size() < kHeaderSize + kTrailerSize) {
    return Status::ParseError("corrupt snapshot: file too short for header and trailer");
  }
  if (std::memcmp(buf.data(), kHeadMagic, sizeof(kHeadMagic)) != 0) {
    return Status::ParseError("not a snapshot file (bad magic)");
  }
  uint32_t version = ParseLe32(buf.data() + sizeof(kHeadMagic));
  if (version != kSnapshotFormatVersion) {
    return Status::ParseError("unsupported snapshot format version " +
                              std::to_string(version) + " (this build reads version " +
                              std::to_string(kSnapshotFormatVersion) + ")");
  }
  const char* trailer = buf.data() + buf.size() - kTrailerSize;
  if (std::memcmp(trailer + 12, kTailMagic, sizeof(kTailMagic)) != 0) {
    return Status::ParseError("corrupt snapshot: truncated (bad trailer magic)");
  }
  uint64_t index_offset = ParseLe64(trailer);
  uint32_t index_crc = ParseLe32(trailer + 8);
  if (index_offset < kHeaderSize || index_offset > buf.size() - kTrailerSize) {
    return Status::ParseError("corrupt snapshot: index offset out of range");
  }
  size_t index_size = buf.size() - kTrailerSize - static_cast<size_t>(index_offset);
  const char* index = buf.data() + index_offset;
  if (Crc32(index, index_size) != index_crc) {
    return Status::ParseError("corrupt snapshot: index checksum mismatch");
  }

  // The index passed its checksum; parse it with the same bounds-checked
  // cursor sections use.
  ByteReader cursor(index, index_size, "<index>");
  uint32_t count = cursor.U32();
  for (uint32_t i = 0; i < count && cursor.status().ok(); ++i) {
    uint32_t label_len = cursor.U32();
    if (label_len > kMaxLabelLength || label_len > cursor.remaining()) {
      return Status::ParseError("corrupt snapshot: index entry label length out of range");
    }
    std::string label;
    label.resize(label_len);
    for (uint32_t b = 0; b < label_len; ++b) label[b] = static_cast<char>(cursor.U8());
    SectionEntry entry;
    entry.offset = cursor.U64();
    entry.length = cursor.U64();
    entry.crc = cursor.U32();
    entry.order = i;
    if (!cursor.status().ok()) break;
    if (entry.offset < kHeaderSize || entry.offset > index_offset ||
        entry.length > index_offset - entry.offset) {
      return Status::ParseError("corrupt snapshot: section '" + label +
                                "' extends outside the payload region");
    }
    if (!reader.index_.emplace(std::move(label), entry).second) {
      return Status::ParseError("corrupt snapshot: duplicate section label in index");
    }
  }
  if (!cursor.status().ok()) return cursor.status();
  if (!cursor.AtEnd()) {
    return Status::ParseError("corrupt snapshot: trailing bytes after the index entries");
  }
  return reader;
}

std::vector<std::string> SnapshotReader::sections() const {
  std::vector<std::string> labels(index_.size());
  for (const auto& [label, entry] : index_) labels[entry.order] = label;
  return labels;
}

bool SnapshotReader::Contains(const std::string& label) const {
  return index_.find(label) != index_.end();
}

Result<ByteReader> SnapshotReader::Find(const std::string& label) const {
  auto it = index_.find(label);
  if (it == index_.end()) {
    return Status::ParseError("snapshot has no section '" + label + "'");
  }
  const SectionEntry& entry = it->second;
  const char* data = file_.data() + entry.offset;
  if (Crc32(data, static_cast<size_t>(entry.length)) != entry.crc) {
    return Status::ParseError("corrupt snapshot: section '" + label +
                              "' checksum mismatch");
  }
  return ByteReader(data, static_cast<size_t>(entry.length), label);
}

}  // namespace reptile
