#include "data/group_by.h"

#include "common/check.h"

namespace reptile {

std::optional<size_t> GroupByResult::Find(const std::vector<int32_t>& key_tuple) const {
  auto it = index_.find(key_tuple);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

size_t GroupByResult::GetOrAddGroup(const std::vector<int32_t>& key_tuple) {
  auto [it, inserted] = index_.emplace(key_tuple, keys_.size());
  if (inserted) {
    keys_.push_back(key_tuple);
    stats_.emplace_back();
  }
  return it->second;
}

GroupByResult GroupBy(const Table& table, const std::vector<int>& key_columns,
                      int measure_column, const RowFilter& filter) {
  GroupByResult result;
  std::vector<const std::vector<int32_t>*> key_codes;
  key_codes.reserve(key_columns.size());
  for (int column : key_columns) key_codes.push_back(&table.dim_codes(column));
  const std::vector<double>* measures =
      measure_column >= 0 ? &table.measure(measure_column) : nullptr;

  std::vector<int32_t> key(key_columns.size());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!filter.empty() && !table.Matches(filter, row)) continue;
    for (size_t k = 0; k < key_codes.size(); ++k) key[k] = (*key_codes[k])[row];
    size_t group = result.GetOrAddGroup(key);
    double value = measures != nullptr ? (*measures)[row] : 0.0;
    result.mutable_stats(group).Observe(value);
  }
  return result;
}

}  // namespace reptile
