// Hierarchy metadata (paper Section 3.1).
//
// A dimension's hierarchy H = [A1, ..., Ak] is an ordered list of attributes,
// least specific first, with the functional dependency An -> Am for m < n
// (e.g., Village -> District). A hierarchy may contain a single attribute.

#ifndef REPTILE_DATA_HIERARCHY_H_
#define REPTILE_DATA_HIERARCHY_H_

#include <string>
#include <vector>

namespace reptile {

/// Identifies an attribute by its hierarchy index and level within the
/// hierarchy (level 0 = least specific).
struct AttrId {
  int hierarchy = 0;
  int level = 0;

  bool operator==(const AttrId& other) const = default;
};

/// A named hierarchy: ordered attribute (column) names, least specific first.
struct HierarchySchema {
  std::string name;
  std::vector<std::string> attributes;

  int depth() const { return static_cast<int>(attributes.size()); }
};

}  // namespace reptile

#endif  // REPTILE_DATA_HIERARCHY_H_
