#include "data/table.h"

#include "common/check.h"

namespace reptile {

int Table::AddDimensionColumn(const std::string& name) {
  REPTILE_CHECK_EQ(num_rows_, 0u) << "add columns before rows";
  int column = num_columns();
  names_.push_back(name);
  is_dimension_.push_back(true);
  storage_index_.push_back(static_cast<int>(dims_.size()));
  dims_.emplace_back();
  row_set_.push_back(false);
  return column;
}

int Table::AddMeasureColumn(const std::string& name) {
  REPTILE_CHECK_EQ(num_rows_, 0u) << "add columns before rows";
  int column = num_columns();
  names_.push_back(name);
  is_dimension_.push_back(false);
  storage_index_.push_back(static_cast<int>(measures_.size()));
  measures_.emplace_back();
  row_set_.push_back(false);
  return column;
}

int Table::ColumnIndex(const std::string& name) const {
  std::optional<int> column = FindColumn(name);
  REPTILE_CHECK(column.has_value()) << "no column named " << name;
  return *column;
}

std::optional<int> Table::FindColumn(const std::string& name) const {
  for (int c = 0; c < num_columns(); ++c) {
    if (names_[c] == name) return c;
  }
  return std::nullopt;
}

const ValueDict& Table::dict(int column) const {
  REPTILE_CHECK(is_dimension_[column]) << names_[column] << " is not a dimension";
  return dims_[storage_index_[column]].dict;
}

ValueDict& Table::mutable_dict(int column) {
  REPTILE_CHECK(is_dimension_[column]) << names_[column] << " is not a dimension";
  return dims_[storage_index_[column]].dict;
}

const std::vector<int32_t>& Table::dim_codes(int column) const {
  REPTILE_CHECK(is_dimension_[column]) << names_[column] << " is not a dimension";
  return dims_[storage_index_[column]].codes;
}

const std::vector<double>& Table::measure(int column) const {
  REPTILE_CHECK(!is_dimension_[column]) << names_[column] << " is not a measure";
  return measures_[storage_index_[column]];
}

std::vector<double>& Table::mutable_measure(int column) {
  REPTILE_CHECK(!is_dimension_[column]) << names_[column] << " is not a measure";
  return measures_[storage_index_[column]];
}

void Table::SetDim(int column, const std::string& value) {
  SetDimCode(column, mutable_dict(column).GetOrAdd(value));
}

void Table::SetDimCode(int column, int32_t code) {
  DimColumn& dim = dims_[storage_index_[column]];
  REPTILE_CHECK(is_dimension_[column]);
  REPTILE_CHECK(!row_set_[column]) << "column " << names_[column] << " set twice";
  dim.codes.push_back(code);
  row_set_[column] = true;
}

void Table::SetMeasure(int column, double value) {
  REPTILE_CHECK(!is_dimension_[column]);
  REPTILE_CHECK(!row_set_[column]) << "column " << names_[column] << " set twice";
  measures_[storage_index_[column]].push_back(value);
  row_set_[column] = true;
}

void Table::CommitRow() {
  for (int c = 0; c < num_columns(); ++c) {
    REPTILE_CHECK(row_set_[c]) << "column " << names_[c] << " not set in row " << num_rows_;
    row_set_[c] = false;
  }
  ++num_rows_;
}

Status Table::SetDimensionColumnData(int column, ValueDict dict, std::vector<int32_t> codes) {
  if (column < 0 || column >= num_columns() || !is_dimension_[column]) {
    return Status::ParseError("corrupt table: bad dimension column index");
  }
  for (int32_t code : codes) {
    if (code < 0 || code >= dict.size()) {
      return Status::ParseError("corrupt table: code outside column '" +
                                names_[column] + "' dictionary");
    }
  }
  DimColumn& dim = dims_[storage_index_[column]];
  dim.dict = std::move(dict);
  dim.codes = std::move(codes);
  return Status::Ok();
}

Status Table::SetMeasureColumnData(int column, std::vector<double> values) {
  if (column < 0 || column >= num_columns() || is_dimension_[column]) {
    return Status::ParseError("corrupt table: bad measure column index");
  }
  measures_[storage_index_[column]] = std::move(values);
  return Status::Ok();
}

Status Table::FinishColumnLoad() {
  size_t rows = 0;
  bool first = true;
  for (int c = 0; c < num_columns(); ++c) {
    size_t len = is_dimension_[c] ? dims_[storage_index_[c]].codes.size()
                                  : measures_[storage_index_[c]].size();
    if (first) {
      rows = len;
      first = false;
    } else if (len != rows) {
      return Status::ParseError("corrupt table: column '" + names_[c] +
                                "' length disagrees with the other columns");
    }
  }
  num_rows_ = rows;
  return Status::Ok();
}

Status Table::AppendRows(const Table& delta) {
  // Validate the full schema up front so a failed append leaves the table
  // untouched — the serving tier maps these errors to HTTP 400.
  std::vector<int> delta_column(names_.size(), -1);
  for (int c = 0; c < num_columns(); ++c) {
    std::optional<int> dc = delta.FindColumn(names_[c]);
    if (!dc.has_value()) {
      return Status::InvalidArgument("appended rows are missing column '" + names_[c] + "'");
    }
    if (delta.is_dimension(*dc) != is_dimension_[c]) {
      return Status::InvalidArgument(
          std::string("appended column '") + names_[c] + "' is a " +
          (delta.is_dimension(*dc) ? "dimension" : "measure") +
          " but the dataset column is a " + (is_dimension_[c] ? "dimension" : "measure"));
    }
    delta_column[c] = *dc;
  }
  for (int dc = 0; dc < delta.num_columns(); ++dc) {
    if (!FindColumn(delta.column_name(dc)).has_value()) {
      return Status::InvalidArgument("appended rows carry unknown column '" +
                                     delta.column_name(dc) + "'");
    }
  }
  for (size_t row = 0; row < delta.num_rows(); ++row) {
    for (int c = 0; c < num_columns(); ++c) {
      int dc = delta_column[c];
      if (is_dimension_[c]) {
        DimColumn& dim = dims_[storage_index_[c]];
        dim.codes.push_back(dim.dict.GetOrAdd(delta.dict(dc).name(delta.dim_codes(dc)[row])));
      } else {
        measures_[storage_index_[c]].push_back(delta.measure(dc)[row]);
      }
    }
  }
  num_rows_ += delta.num_rows();
  return Status::Ok();
}

bool Table::Matches(const RowFilter& filter, size_t row) const {
  for (const auto& [column, code] : filter.equals) {
    if (dim_codes(column)[row] != code) return false;
  }
  return true;
}

Table Table::FilteredCopy(const std::vector<bool>& keep) const {
  REPTILE_CHECK_EQ(keep.size(), num_rows_);
  Table out;
  out.names_ = names_;
  out.is_dimension_ = is_dimension_;
  out.storage_index_ = storage_index_;
  out.row_set_.assign(names_.size(), false);
  out.dims_.resize(dims_.size());
  out.measures_.resize(measures_.size());
  for (size_t d = 0; d < dims_.size(); ++d) out.dims_[d].dict = dims_[d].dict;
  for (size_t row = 0; row < num_rows_; ++row) {
    if (!keep[row]) continue;
    for (size_t d = 0; d < dims_.size(); ++d) {
      out.dims_[d].codes.push_back(dims_[d].codes[row]);
    }
    for (size_t m = 0; m < measures_.size(); ++m) {
      out.measures_[m].push_back(measures_[m][row]);
    }
    ++out.num_rows_;
  }
  return out;
}

}  // namespace reptile
