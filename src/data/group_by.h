// Hash group-by over a Table producing distributive aggregate sketches
// (count / sum / sum-of-squares) per group. This is the substrate behind
// aggregate views, featurization, the y-vector builder, and the baselines.

#ifndef REPTILE_DATA_GROUP_BY_H_
#define REPTILE_DATA_GROUP_BY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "agg/aggregates.h"
#include "data/table.h"

namespace reptile {

/// Result of a group-by: one entry per distinct key combination, in first-seen
/// order, with per-group moment sketches over one measure column (or counts
/// only when no measure was given).
class GroupByResult {
 public:
  size_t num_groups() const { return stats_.size(); }

  /// Key code of group `g` for the k-th key column.
  int32_t key(size_t g, size_t k) const { return keys_[g][k]; }
  const std::vector<int32_t>& key_tuple(size_t g) const { return keys_[g]; }

  const Moments& stats(size_t g) const { return stats_[g]; }
  Moments& mutable_stats(size_t g) { return stats_[g]; }

  /// Index of the group with the given key tuple, or std::nullopt.
  std::optional<size_t> Find(const std::vector<int32_t>& key_tuple) const;

  /// Internal: appends or finds a group for the key tuple.
  size_t GetOrAddGroup(const std::vector<int32_t>& key_tuple);

 private:
  struct TupleHash {
    size_t operator()(const std::vector<int32_t>& key) const {
      size_t h = 1469598103934665603ull;
      for (int32_t v : key) {
        h ^= static_cast<size_t>(static_cast<uint32_t>(v));
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  std::vector<std::vector<int32_t>> keys_;
  std::vector<Moments> stats_;
  std::unordered_map<std::vector<int32_t>, size_t, TupleHash> index_;
};

/// Groups the rows of `table` matching `filter` by the given dimension
/// columns, aggregating `measure_column` (pass -1 to aggregate counts only;
/// sum/sumsq then accumulate the constant 0).
GroupByResult GroupBy(const Table& table, const std::vector<int>& key_columns,
                      int measure_column, const RowFilter& filter = RowFilter());

}  // namespace reptile

#endif  // REPTILE_DATA_GROUP_BY_H_
