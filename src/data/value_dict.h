// Dictionary encoding for categorical (dimension) attribute values.
// Every dimension column in a Table owns a ValueDict mapping strings to dense
// int32 codes; all downstream structures (f-trees, feature maps) operate on
// codes only.

#ifndef REPTILE_DATA_VALUE_DICT_H_
#define REPTILE_DATA_VALUE_DICT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/status.h"

namespace reptile {

/// Bidirectional string <-> dense code dictionary. Codes are assigned in
/// insertion order starting at 0.
class ValueDict {
 public:
  /// Rebuilds a dictionary from its insertion-ordered name list (the
  /// snapshot wire form). kParseError on duplicate names — a valid
  /// dictionary cannot contain them.
  static Result<ValueDict> FromNames(std::vector<std::string> names);

  /// Returns the code for `value`, inserting it if absent.
  int32_t GetOrAdd(const std::string& value);

  /// Returns the code for `value` or std::nullopt when absent.
  std::optional<int32_t> Find(const std::string& value) const;

  /// The string for a code; the code must be valid.
  const std::string& name(int32_t code) const;

  /// Number of distinct values.
  int32_t size() const { return static_cast<int32_t>(names_.size()); }

 private:
  std::unordered_map<std::string, int32_t> codes_;
  std::vector<std::string> names_;
};

}  // namespace reptile

#endif  // REPTILE_DATA_VALUE_DICT_H_
