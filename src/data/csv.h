// Minimal CSV I/O for Tables, used by the examples to persist generated
// datasets and by users loading their own data. Dimension/measure typing is
// declared by the caller; no quoting or embedded-separator support (values
// must not contain the separator).

#ifndef REPTILE_DATA_CSV_H_
#define REPTILE_DATA_CSV_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "data/table.h"

namespace reptile {

/// Column typing for CSV loading.
struct CsvSpec {
  std::vector<std::string> dimension_columns;
  std::vector<std::string> measure_columns;
  char separator = ',';
};

/// Incremental CSV parser: feed byte chunks as they arrive (from a socket,
/// a file, anywhere), split at any point — mid-line, mid-UTF-8 byte, it
/// doesn't matter — and collect the Table at the end. This is the single
/// parse implementation: LoadCsv / LoadCsvText are thin drivers over it, and
/// the server's streaming upload path feeds it straight from the connection,
/// so a multi-GB CSV is never materialized as one string.
///
/// Errors are sticky: after the first failure Feed() returns false and
/// further chunks are ignored; Finish() reports the failure. Messages are
/// identical to the historical whole-buffer parser (tests pin them):
/// kIoError/kParseError/kNotFound with 1-based data row numbers prefixed by
/// `origin` ("'data.csv'" for files, "inline csv" for uploads).
class CsvStreamParser {
 public:
  CsvStreamParser(CsvSpec spec, std::string origin);

  /// Consumes the next chunk. Returns false once the parse has failed —
  /// callers may stop feeding (further chunks are ignored either way).
  bool Feed(std::string_view chunk);

  /// Flushes a trailing unterminated line and returns the parsed Table, or
  /// the first error encountered.
  Result<Table> Finish();

  /// The first failure, or OK while the parse is healthy.
  const Status& status() const { return status_; }

  /// Data rows committed so far (header excluded).
  size_t rows_parsed() const { return row_number_; }

 private:
  bool ProcessLine(std::string line);
  bool ProcessHeader(const std::string& line);
  bool ProcessDataRow(const std::string& line);
  bool Fail(Status status);

  CsvSpec spec_;
  std::string origin_;
  Status status_ = Status::Ok();
  std::string pending_;  // bytes after the last newline seen
  bool header_done_ = false;
  bool saw_any_line_ = false;

  Table table_;
  std::vector<std::string> header_;
  std::vector<int> field_to_column_;  // CSV field index -> table column; -1 = skip
  std::vector<bool> field_is_dim_;
  size_t row_number_ = 0;  // 1-based data row (header excluded)
};

/// Loads a CSV file with a header row, reading in fixed-size chunks through
/// CsvStreamParser. Columns named in `spec` are loaded (in header order);
/// other columns are ignored. Failures are reported precisely: kIoError when
/// the file cannot be opened, kParseError with the 1-based data row number
/// and offending column for malformed rows (wrong field count, non-numeric
/// measure), kNotFound when a spec column is missing from the header.
Result<Table> LoadCsv(const std::string& path, const CsvSpec& spec);

/// Parses CSV from an in-memory string (same contract as LoadCsv) — the
/// server's inline dataset-upload path. Parse errors carry the 1-based data
/// row prefixed "inline csv" instead of a file path.
Result<Table> LoadCsvText(const std::string& text, const CsvSpec& spec);

/// Writes all columns of `table` to `path`; kIoError on failure.
Status SaveCsv(const Table& table, const std::string& path, char separator = ',');

}  // namespace reptile

#endif  // REPTILE_DATA_CSV_H_
