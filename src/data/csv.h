// Minimal CSV I/O for Tables, used by the examples to persist generated
// datasets and by users loading their own data. Dimension/measure typing is
// declared by the caller; no quoting or embedded-separator support (values
// must not contain the separator).

#ifndef REPTILE_DATA_CSV_H_
#define REPTILE_DATA_CSV_H_

#include <string>
#include <vector>

#include "api/status.h"
#include "data/table.h"

namespace reptile {

/// Column typing for CSV loading.
struct CsvSpec {
  std::vector<std::string> dimension_columns;
  std::vector<std::string> measure_columns;
  char separator = ',';
};

/// Loads a CSV file with a header row. Columns named in `spec` are loaded (in
/// header order); other columns are ignored. Failures are reported precisely:
/// kIoError when the file cannot be opened, kParseError with the 1-based data
/// row number and offending column for malformed rows (wrong field count,
/// non-numeric measure), kNotFound when a spec column is missing from the
/// header.
Result<Table> LoadCsv(const std::string& path, const CsvSpec& spec);

/// Parses CSV from an in-memory string (same contract as LoadCsv) — the
/// server's inline dataset-upload path. Parse errors carry the 1-based data
/// row prefixed "inline csv" instead of a file path.
Result<Table> LoadCsvText(const std::string& text, const CsvSpec& spec);

/// Writes all columns of `table` to `path`; kIoError on failure.
Status SaveCsv(const Table& table, const std::string& path, char separator = ',');

}  // namespace reptile

#endif  // REPTILE_DATA_CSV_H_
