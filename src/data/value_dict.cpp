#include "data/value_dict.h"

#include "common/check.h"

namespace reptile {

Result<ValueDict> ValueDict::FromNames(std::vector<std::string> names) {
  ValueDict dict;
  dict.codes_.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    auto [it, inserted] = dict.codes_.emplace(names[i], static_cast<int32_t>(i));
    if (!inserted) {
      return Status::ParseError("corrupt dictionary: duplicate value '" + names[i] + "'");
    }
  }
  dict.names_ = std::move(names);
  return dict;
}

int32_t ValueDict::GetOrAdd(const std::string& value) {
  auto it = codes_.find(value);
  if (it != codes_.end()) return it->second;
  int32_t code = static_cast<int32_t>(names_.size());
  codes_.emplace(value, code);
  names_.push_back(value);
  return code;
}

std::optional<int32_t> ValueDict::Find(const std::string& value) const {
  auto it = codes_.find(value);
  if (it == codes_.end()) return std::nullopt;
  return it->second;
}

const std::string& ValueDict::name(int32_t code) const {
  REPTILE_CHECK(code >= 0 && code < size()) << "bad dictionary code " << code;
  return names_[static_cast<size_t>(code)];
}

}  // namespace reptile
