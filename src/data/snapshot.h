// Portable binary snapshot container: versioned, checksummed, little-endian,
// made of labeled seekable sections.
//
// Layout (all integers little-endian regardless of host):
//
//   +--------------------------------------------------------------+
//   | magic "RPTLSNAP" (8 bytes) | u32 format version              |
//   +--------------------------------------------------------------+
//   | section payloads, back to back, in write order               |
//   +--------------------------------------------------------------+
//   | index: u32 section count, then per section                   |
//   |   u32 label length, label bytes, u64 offset, u64 length,     |
//   |   u32 CRC-32 of the payload                                  |
//   +--------------------------------------------------------------+
//   | trailer: u64 index offset | u32 index CRC-32 |               |
//   |          magic "RPTLEND." (8 bytes)                          |
//   +--------------------------------------------------------------+
//
// The index lives at the END so a writer streams payloads without knowing
// their sizes upfront, and the fixed-size trailer lets a reader seek straight
// to it. Each section is independently checksummed and addressable by label,
// so a reader can open one section without touching the others and corruption
// is pinned to the section it hit. Section payloads are free-form byte
// strings; ByteWriter/ByteReader provide the bounds-checked little-endian
// primitives the payload codecs (api/dataset_snapshot.cpp) are built from.
//
// Error model: everything file-derived returns Status (kIoError for
// open/short-file problems, kParseError for bad magic/version/checksum/
// structure) — a corrupt or truncated snapshot must never abort or read out
// of bounds. Version bumps are strict: a reader rejects any version it does
// not know (format version 1 is the only one so far); unknown section labels
// are ignored, which is the forward-compatible extension point.

#ifndef REPTILE_DATA_SNAPSHOT_H_
#define REPTILE_DATA_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/status.h"

namespace reptile {

inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) over a byte range.
uint32_t Crc32(const void* data, size_t size);

/// Appends little-endian primitives to a growing byte buffer. Strings and
/// numeric vectors are length-prefixed (u64 count) so payloads decode
/// unambiguously.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Str(const std::string& s);
  void VecI32(const std::vector<int32_t>& v);
  void VecI64(const std::vector<int64_t>& v);
  void VecF64(const std::vector<double>& v);

  const std::string& bytes() const { return buf_; }
  std::string TakeBytes() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over one section payload. Errors are sticky: the
/// first out-of-bounds read latches a kParseError, every later read returns
/// zero values, and the caller checks status() once after decoding (or
/// mid-way, before trusting a count). Vector reads validate the count
/// against the bytes actually remaining BEFORE allocating, so a corrupt
/// count cannot trigger a huge allocation.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size, std::string section_label)
      : data_(data), size_(size), label_(std::move(section_label)) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();
  std::vector<int32_t> VecI32();
  std::vector<int64_t> VecI64();
  std::vector<double> VecF64();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// OK until a read ran past the section end (or Fail() was called).
  const Status& status() const { return status_; }

  /// Latches a section-labeled parse error (for semantic checks the caller
  /// makes on decoded values).
  void Fail(const std::string& what);

 private:
  bool Take(void* out, size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  std::string label_;
  Status status_;
};

/// Accumulates labeled sections and writes the container to a file.
class SnapshotWriter {
 public:
  /// Adds a section; labels must be unique (aborts on reuse — a programmer
  /// error, not a file error).
  void AddSection(const std::string& label, std::string payload);

  /// Writes the whole container. kIoError when the file cannot be created or
  /// fully written.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Opens a container, validating magic, version, trailer, and the index
/// checksum up front; individual section payloads are checksum-verified on
/// access.
class SnapshotReader {
 public:
  /// Reads and validates `path`. The whole file is held in memory.
  static Result<SnapshotReader> Open(const std::string& path);

  /// Section labels in file order.
  std::vector<std::string> sections() const;

  bool Contains(const std::string& label) const;

  /// A cursor over one section's payload, after verifying its CRC. The
  /// cursor borrows this reader's buffer — the reader must outlive it.
  Result<ByteReader> Find(const std::string& label) const;

 private:
  struct SectionEntry {
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
    size_t order = 0;
  };

  SnapshotReader() = default;

  std::string file_;
  std::map<std::string, SectionEntry> index_;
};

}  // namespace reptile

#endif  // REPTILE_DATA_SNAPSHOT_H_
