// Dataset = base relation (Table) + hierarchy metadata + measure columns.
// This is what Reptile is initialized with ("Reptile is initialized with the
// database as well as metadata about the attribute hierarchies", Section 2.1).

#ifndef REPTILE_DATA_DATASET_H_
#define REPTILE_DATA_DATASET_H_

#include <optional>
#include <string>
#include <vector>

#include "api/status.h"
#include "data/hierarchy.h"
#include "data/table.h"

namespace reptile {

/// A base relation with its hierarchy structure. All hierarchy attribute
/// names must resolve to dimension columns in the table.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Table table, std::vector<HierarchySchema> hierarchies);

  /// Non-aborting factory: validates the hierarchy metadata against the table
  /// (every attribute must name an existing dimension column, hierarchies and
  /// attributes must not repeat) and returns a Status instead of aborting.
  static Result<Dataset> Make(Table table, std::vector<HierarchySchema> hierarchies);

  const Table& table() const { return table_; }
  Table& mutable_table() { return table_; }

  int num_hierarchies() const { return static_cast<int>(hierarchies_.size()); }
  const HierarchySchema& hierarchy(int h) const { return hierarchies_[h]; }

  /// Table column index of the attribute at (hierarchy, level).
  int AttrColumn(AttrId attr) const;

  /// Column indices of a hierarchy's attributes for levels [0, depth).
  std::vector<int> HierarchyColumns(int hierarchy, int depth) const;

  /// Attribute name at (hierarchy, level).
  const std::string& AttrName(AttrId attr) const;

  /// Resolves an attribute name to its AttrId; aborts when the name does not
  /// belong to any hierarchy.
  AttrId ResolveAttr(const std::string& name) const;

  /// Resolves an attribute name to its AttrId, or std::nullopt (non-aborting
  /// counterpart of ResolveAttr, for user-input paths).
  std::optional<AttrId> FindAttr(const std::string& name) const;

  /// Index of the hierarchy with the given schema name, or std::nullopt.
  std::optional<int> FindHierarchy(const std::string& name) const;

  /// Verifies that every hierarchy attribute exists as a dimension column;
  /// called by the constructor.
  void Validate() const;

 private:
  Table table_;
  std::vector<HierarchySchema> hierarchies_;
  std::vector<std::vector<int>> attr_columns_;  // [hierarchy][level] -> column
};

}  // namespace reptile

#endif  // REPTILE_DATA_DATASET_H_
