#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace reptile {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char separator) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, separator)) fields.push_back(field);
  if (!line.empty() && line.back() == separator) fields.emplace_back();
  return fields;
}

}  // namespace

std::optional<Table> LoadCsv(const std::string& path, const CsvSpec& spec) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> header = SplitLine(line, spec.separator);

  // Map CSV field index -> (table column, is_dimension); -1 = skip.
  Table table;
  std::vector<int> field_to_column(header.size(), -1);
  std::vector<bool> field_is_dim(header.size(), false);
  for (size_t f = 0; f < header.size(); ++f) {
    for (const std::string& name : spec.dimension_columns) {
      if (header[f] == name) {
        field_to_column[f] = table.AddDimensionColumn(name);
        field_is_dim[f] = true;
      }
    }
    for (const std::string& name : spec.measure_columns) {
      if (header[f] == name) {
        field_to_column[f] = table.AddMeasureColumn(name);
        field_is_dim[f] = false;
      }
    }
  }
  size_t wanted = spec.dimension_columns.size() + spec.measure_columns.size();
  size_t found = 0;
  for (int c : field_to_column) {
    if (c >= 0) ++found;
  }
  if (found != wanted) return std::nullopt;

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line, spec.separator);
    if (fields.size() != header.size()) return std::nullopt;
    for (size_t f = 0; f < fields.size(); ++f) {
      int column = field_to_column[f];
      if (column < 0) continue;
      if (field_is_dim[f]) {
        table.SetDim(column, fields[f]);
      } else {
        char* end = nullptr;
        double value = std::strtod(fields[f].c_str(), &end);
        if (end == fields[f].c_str()) return std::nullopt;
        table.SetMeasure(column, value);
      }
    }
    table.CommitRow();
  }
  return table;
}

bool SaveCsv(const Table& table, const std::string& path, char separator) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << separator;
    out << table.column_name(c);
  }
  out << '\n';
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << separator;
      if (table.is_dimension(c)) {
        out << table.dict(c).name(table.dim_codes(c)[row]);
      } else {
        out << table.measure(c)[row];
      }
    }
    out << '\n';
  }
  return out.good();
}

}  // namespace reptile
