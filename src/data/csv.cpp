#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace reptile {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char separator) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, separator)) fields.push_back(field);
  if (!line.empty() && line.back() == separator) fields.emplace_back();
  return fields;
}

}  // namespace

CsvStreamParser::CsvStreamParser(CsvSpec spec, std::string origin)
    : spec_(std::move(spec)), origin_(std::move(origin)) {}

bool CsvStreamParser::Fail(Status status) {
  status_ = std::move(status);
  pending_.clear();
  return false;
}

bool CsvStreamParser::Feed(std::string_view chunk) {
  if (!status_.ok()) return false;
  size_t begin = 0;
  while (begin < chunk.size()) {
    size_t newline = chunk.find('\n', begin);
    if (newline == std::string_view::npos) {
      pending_.append(chunk, begin, chunk.size() - begin);
      break;
    }
    std::string line = std::move(pending_);
    pending_.clear();
    line.append(chunk, begin, newline - begin);
    begin = newline + 1;
    if (!ProcessLine(std::move(line))) return false;
  }
  return true;
}

Result<Table> CsvStreamParser::Finish() {
  if (status_.ok() && !pending_.empty()) {
    std::string line = std::move(pending_);
    pending_.clear();
    ProcessLine(std::move(line));
  }
  if (status_.ok() && !saw_any_line_) {
    status_ = Status::ParseError(origin_ + " is empty (expected a header row)");
  }
  if (!status_.ok()) return status_;
  return std::move(table_);
}

bool CsvStreamParser::ProcessLine(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (!header_done_) {
    // Exporters (Excel, PowerShell) prefix UTF-8 files with a byte-order
    // mark; without this strip it would glue onto the first header name.
    // Lines are assembled in pending_ before reaching here, so the strip is
    // chunk-boundary safe.
    if (line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
    saw_any_line_ = true;
    header_done_ = true;
    return ProcessHeader(line);
  }
  if (line.empty()) return true;  // blank data lines are skipped
  return ProcessDataRow(line);
}

bool CsvStreamParser::ProcessHeader(const std::string& line) {
  header_ = SplitLine(line, spec_.separator);

  // Map CSV field index -> (table column, is_dimension); -1 = skip. Columns
  // are added in header order (the documented contract); spec names that
  // match no header field or more than one are reported precisely.
  field_to_column_.assign(header_.size(), -1);
  field_is_dim_.assign(header_.size(), false);
  std::vector<int> dim_matches(spec_.dimension_columns.size(), 0);
  std::vector<int> measure_matches(spec_.measure_columns.size(), 0);
  for (size_t f = 0; f < header_.size(); ++f) {
    for (size_t n = 0; n < spec_.dimension_columns.size(); ++n) {
      if (header_[f] != spec_.dimension_columns[n]) continue;
      if (++dim_matches[n] > 1 || field_to_column_[f] >= 0) {
        return Fail(Status::ParseError(
            origin_ + ": header names column '" + header_[f] +
            "' more than once or in both dimension and measure specs"));
      }
      field_to_column_[f] = table_.AddDimensionColumn(header_[f]);
      field_is_dim_[f] = true;
    }
    for (size_t n = 0; n < spec_.measure_columns.size(); ++n) {
      if (header_[f] != spec_.measure_columns[n]) continue;
      if (++measure_matches[n] > 1 || field_to_column_[f] >= 0) {
        return Fail(Status::ParseError(
            origin_ + ": header names column '" + header_[f] +
            "' more than once or in both dimension and measure specs"));
      }
      field_to_column_[f] = table_.AddMeasureColumn(header_[f]);
      field_is_dim_[f] = false;
    }
  }
  for (size_t n = 0; n < spec_.dimension_columns.size(); ++n) {
    if (dim_matches[n] == 0) {
      return Fail(Status::NotFound(origin_ + ": dimension column '" +
                                   spec_.dimension_columns[n] +
                                   "' is missing from the header"));
    }
  }
  for (size_t n = 0; n < spec_.measure_columns.size(); ++n) {
    if (measure_matches[n] == 0) {
      return Fail(Status::NotFound(origin_ + ": measure column '" +
                                   spec_.measure_columns[n] +
                                   "' is missing from the header"));
    }
  }
  return true;
}

bool CsvStreamParser::ProcessDataRow(const std::string& line) {
  ++row_number_;
  std::vector<std::string> fields = SplitLine(line, spec_.separator);
  if (fields.size() != header_.size()) {
    return Fail(Status::ParseError(origin_ + " row " + std::to_string(row_number_) +
                                   ": expected " + std::to_string(header_.size()) +
                                   " fields, got " + std::to_string(fields.size())));
  }
  for (size_t f = 0; f < fields.size(); ++f) {
    int column = field_to_column_[f];
    if (column < 0) continue;
    if (field_is_dim_[f]) {
      table_.SetDim(column, fields[f]);
    } else {
      char* end = nullptr;
      double value = std::strtod(fields[f].c_str(), &end);
      while (*end == ' ' || *end == '\t') ++end;  // permit trailing padding
      if (end == fields[f].c_str() || *end != '\0') {
        return Fail(Status::ParseError(origin_ + " row " + std::to_string(row_number_) +
                                       ", column '" + header_[f] + "': cannot parse '" +
                                       fields[f] + "' as a number"));
      }
      table_.SetMeasure(column, value);
    }
  }
  table_.CommitRow();
  return true;
}

Result<Table> LoadCsv(const std::string& path, const CsvSpec& spec) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open '" + path + "' for reading");
  CsvStreamParser parser(spec, "'" + path + "'");
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    if (!parser.Feed(std::string_view(chunk, static_cast<size_t>(in.gcount())))) break;
  }
  return parser.Finish();
}

Result<Table> LoadCsvText(const std::string& text, const CsvSpec& spec) {
  CsvStreamParser parser(spec, "inline csv");
  parser.Feed(text);
  return parser.Finish();
}

Status SaveCsv(const Table& table, const std::string& path, char separator) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open '" + path + "' for writing");
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << separator;
    out << table.column_name(c);
  }
  out << '\n';
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << separator;
      if (table.is_dimension(c)) {
        out << table.dict(c).name(table.dim_codes(c)[row]);
      } else {
        out << table.measure(c)[row];
      }
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("error while writing '" + path + "'");
  return Status::Ok();
}

}  // namespace reptile
