#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace reptile {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char separator) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, separator)) fields.push_back(field);
  if (!line.empty() && line.back() == separator) fields.emplace_back();
  return fields;
}

// Shared parse body of LoadCsv / LoadCsvText. `origin` labels error messages
// ("'data.csv'" for files, "inline csv" for in-memory uploads).
Result<Table> ParseCsvStream(std::istream& in, const CsvSpec& spec,
                             const std::string& origin) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError(origin + " is empty (expected a header row)");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> header = SplitLine(line, spec.separator);

  // Map CSV field index -> (table column, is_dimension); -1 = skip. Columns
  // are added in header order (the documented contract); spec names that
  // match no header field or more than one are reported precisely.
  Table table;
  std::vector<int> field_to_column(header.size(), -1);
  std::vector<bool> field_is_dim(header.size(), false);
  std::vector<int> dim_matches(spec.dimension_columns.size(), 0);
  std::vector<int> measure_matches(spec.measure_columns.size(), 0);
  for (size_t f = 0; f < header.size(); ++f) {
    for (size_t n = 0; n < spec.dimension_columns.size(); ++n) {
      if (header[f] != spec.dimension_columns[n]) continue;
      if (++dim_matches[n] > 1 || field_to_column[f] >= 0) {
        return Status::ParseError(origin + ": header names column '" + header[f] +
                                  "' more than once or in both dimension and measure specs");
      }
      field_to_column[f] = table.AddDimensionColumn(header[f]);
      field_is_dim[f] = true;
    }
    for (size_t n = 0; n < spec.measure_columns.size(); ++n) {
      if (header[f] != spec.measure_columns[n]) continue;
      if (++measure_matches[n] > 1 || field_to_column[f] >= 0) {
        return Status::ParseError(origin + ": header names column '" + header[f] +
                                  "' more than once or in both dimension and measure specs");
      }
      field_to_column[f] = table.AddMeasureColumn(header[f]);
      field_is_dim[f] = false;
    }
  }
  for (size_t n = 0; n < spec.dimension_columns.size(); ++n) {
    if (dim_matches[n] == 0) {
      return Status::NotFound(origin + ": dimension column '" +
                              spec.dimension_columns[n] + "' is missing from the header");
    }
  }
  for (size_t n = 0; n < spec.measure_columns.size(); ++n) {
    if (measure_matches[n] == 0) {
      return Status::NotFound(origin + ": measure column '" + spec.measure_columns[n] +
                              "' is missing from the header");
    }
  }

  size_t row_number = 0;  // 1-based data row (header excluded)
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++row_number;
    std::vector<std::string> fields = SplitLine(line, spec.separator);
    if (fields.size() != header.size()) {
      return Status::ParseError(origin + " row " + std::to_string(row_number) +
                                ": expected " + std::to_string(header.size()) +
                                " fields, got " + std::to_string(fields.size()));
    }
    for (size_t f = 0; f < fields.size(); ++f) {
      int column = field_to_column[f];
      if (column < 0) continue;
      if (field_is_dim[f]) {
        table.SetDim(column, fields[f]);
      } else {
        char* end = nullptr;
        double value = std::strtod(fields[f].c_str(), &end);
        while (*end == ' ' || *end == '\t') ++end;  // permit trailing padding
        if (end == fields[f].c_str() || *end != '\0') {
          return Status::ParseError(origin + " row " + std::to_string(row_number) +
                                    ", column '" + header[f] + "': cannot parse '" +
                                    fields[f] + "' as a number");
        }
        table.SetMeasure(column, value);
      }
    }
    table.CommitRow();
  }
  return table;
}

}  // namespace

Result<Table> LoadCsv(const std::string& path, const CsvSpec& spec) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open '" + path + "' for reading");
  return ParseCsvStream(in, spec, "'" + path + "'");
}

Result<Table> LoadCsvText(const std::string& text, const CsvSpec& spec) {
  std::istringstream in(text);
  return ParseCsvStream(in, spec, "inline csv");
}

Status SaveCsv(const Table& table, const std::string& path, char separator) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open '" + path + "' for writing");
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << separator;
    out << table.column_name(c);
  }
  out << '\n';
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << separator;
      if (table.is_dimension(c)) {
        out << table.dict(c).name(table.dim_codes(c)[row]);
      } else {
        out << table.measure(c)[row];
      }
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("error while writing '" + path + "'");
  return Status::Ok();
}

}  // namespace reptile
