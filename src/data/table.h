// Column-store table substrate.
//
// A Table is a set of named columns of equal length: dimension columns are
// dictionary-encoded int32 codes (each with its own ValueDict) and measure
// columns are doubles. Reptile's inputs — the base relation and auxiliary
// datasets — are Tables; hierarchy metadata lives in data/hierarchy.h.

#ifndef REPTILE_DATA_TABLE_H_
#define REPTILE_DATA_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/status.h"
#include "data/value_dict.h"

namespace reptile {

/// Conjunctive equality filter over dimension columns: row matches when every
/// (column, code) pair matches. An empty filter matches all rows.
struct RowFilter {
  std::vector<std::pair<int, int32_t>> equals;  // (dimension column index, code)

  bool empty() const { return equals.empty(); }
  void Add(int column, int32_t code) { equals.emplace_back(column, code); }
};

/// Column-store table. Columns are identified by dense indices in a single
/// namespace; each index is either a dimension or a measure column.
class Table {
 public:
  /// Adds a dimension (categorical) column; returns its column index.
  int AddDimensionColumn(const std::string& name);

  /// Adds a measure (double) column; returns its column index.
  int AddMeasureColumn(const std::string& name);

  /// Column index by name; aborts when absent (use FindColumn to probe).
  int ColumnIndex(const std::string& name) const;

  /// Column index by name or std::nullopt.
  std::optional<int> FindColumn(const std::string& name) const;

  int num_columns() const { return static_cast<int>(names_.size()); }
  size_t num_rows() const { return num_rows_; }
  const std::string& column_name(int column) const { return names_[column]; }
  bool is_dimension(int column) const { return is_dimension_[column]; }

  /// Dictionary of a dimension column.
  const ValueDict& dict(int column) const;
  ValueDict& mutable_dict(int column);

  /// Code vector of a dimension column.
  const std::vector<int32_t>& dim_codes(int column) const;

  /// Value vector of a measure column.
  const std::vector<double>& measure(int column) const;
  std::vector<double>& mutable_measure(int column);

  /// Row-building API: call the three setters for every column, then
  /// CommitRow(). Aborts if a column was not set.
  void SetDim(int column, const std::string& value);
  void SetDimCode(int column, int32_t code);
  void SetMeasure(int column, double value);
  void CommitRow();

  /// Column-building API (snapshot restore): after adding all columns,
  /// install each column's full data in one call, then FinishColumnLoad()
  /// once. Status (not abort) because the data comes from a file: codes must
  /// be in-dictionary and every column must have the same length.
  Status SetDimensionColumnData(int column, ValueDict dict, std::vector<int32_t> codes);
  Status SetMeasureColumnData(int column, std::vector<double> values);
  Status FinishColumnLoad();

  /// Appends every row of `delta` to this table, matching columns BY NAME —
  /// the delta's column order may differ (CSV loads columns in header
  /// order). Dimension values are re-encoded through this table's
  /// dictionaries (GetOrAdd), so existing values keep their codes and new
  /// values take the next codes in first-appearance order — exactly the
  /// assignment a from-scratch load of the concatenated data would produce.
  /// InvalidArgument naming the offending column when the delta's schema
  /// differs (missing column, extra column, dimension/measure kind
  /// mismatch); a failed append leaves this table untouched.
  Status AppendRows(const Table& delta);

  /// True when the row passes the filter.
  bool Matches(const RowFilter& filter, size_t row) const;

  /// Returns a copy containing only rows for which `keep` is true.
  Table FilteredCopy(const std::vector<bool>& keep) const;

 private:
  struct DimColumn {
    ValueDict dict;
    std::vector<int32_t> codes;
  };

  size_t num_rows_ = 0;
  std::vector<std::string> names_;
  std::vector<bool> is_dimension_;
  std::vector<int> storage_index_;  // index into dims_ or measures_
  std::vector<DimColumn> dims_;
  std::vector<std::vector<double>> measures_;
  std::vector<bool> row_set_;  // per column: set since last CommitRow
};

}  // namespace reptile

#endif  // REPTILE_DATA_TABLE_H_
