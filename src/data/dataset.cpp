#include "data/dataset.h"

#include "common/check.h"

namespace reptile {

Dataset::Dataset(Table table, std::vector<HierarchySchema> hierarchies)
    : table_(std::move(table)), hierarchies_(std::move(hierarchies)) {
  attr_columns_.resize(hierarchies_.size());
  for (size_t h = 0; h < hierarchies_.size(); ++h) {
    for (const std::string& attr : hierarchies_[h].attributes) {
      attr_columns_[h].push_back(table_.ColumnIndex(attr));
    }
  }
  Validate();
}

int Dataset::AttrColumn(AttrId attr) const {
  REPTILE_CHECK(attr.hierarchy >= 0 && attr.hierarchy < num_hierarchies());
  const auto& columns = attr_columns_[attr.hierarchy];
  REPTILE_CHECK(attr.level >= 0 && attr.level < static_cast<int>(columns.size()));
  return columns[attr.level];
}

std::vector<int> Dataset::HierarchyColumns(int hierarchy, int depth) const {
  REPTILE_CHECK(hierarchy >= 0 && hierarchy < num_hierarchies());
  REPTILE_CHECK_LE(depth, hierarchies_[hierarchy].depth());
  const auto& columns = attr_columns_[hierarchy];
  return std::vector<int>(columns.begin(), columns.begin() + depth);
}

const std::string& Dataset::AttrName(AttrId attr) const {
  return hierarchies_[attr.hierarchy].attributes[attr.level];
}

AttrId Dataset::ResolveAttr(const std::string& name) const {
  for (int h = 0; h < num_hierarchies(); ++h) {
    for (int l = 0; l < hierarchies_[h].depth(); ++l) {
      if (hierarchies_[h].attributes[l] == name) return AttrId{h, l};
    }
  }
  REPTILE_CHECK(false) << "attribute " << name << " is not in any hierarchy";
  return AttrId{};
}

void Dataset::Validate() const {
  for (const HierarchySchema& h : hierarchies_) {
    REPTILE_CHECK(!h.attributes.empty()) << "hierarchy " << h.name << " has no attributes";
    for (const std::string& attr : h.attributes) {
      int column = table_.ColumnIndex(attr);
      REPTILE_CHECK(table_.is_dimension(column))
          << "hierarchy attribute " << attr << " must be a dimension column";
    }
  }
}

}  // namespace reptile
