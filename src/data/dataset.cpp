#include "data/dataset.h"

#include "common/check.h"

namespace reptile {

Dataset::Dataset(Table table, std::vector<HierarchySchema> hierarchies)
    : table_(std::move(table)), hierarchies_(std::move(hierarchies)) {
  attr_columns_.resize(hierarchies_.size());
  for (size_t h = 0; h < hierarchies_.size(); ++h) {
    for (const std::string& attr : hierarchies_[h].attributes) {
      attr_columns_[h].push_back(table_.ColumnIndex(attr));
    }
  }
  Validate();
}

namespace {

// Shared schema checks behind Dataset::Make (Status) and Dataset::Validate
// (aborting): one rule set, two reporting modes.
Status ValidateSchema(const Table& table, const std::vector<HierarchySchema>& hierarchies) {
  std::vector<std::string> seen_attrs;
  std::vector<std::string> seen_names;
  for (const HierarchySchema& h : hierarchies) {
    if (h.attributes.empty()) {
      return Status::InvalidArgument("hierarchy '" + h.name + "' has no attributes");
    }
    for (const std::string& name : seen_names) {
      if (name == h.name) {
        return Status::InvalidArgument("hierarchy '" + h.name + "' is declared twice");
      }
    }
    seen_names.push_back(h.name);
    for (const std::string& attr : h.attributes) {
      std::optional<int> column = table.FindColumn(attr);
      if (!column.has_value()) {
        return Status::NotFound("hierarchy '" + h.name + "' attribute '" + attr +
                                "' does not exist in the table");
      }
      if (!table.is_dimension(*column)) {
        return Status::InvalidArgument("hierarchy '" + h.name + "' attribute '" + attr +
                                       "' must be a dimension column, not a measure");
      }
      for (const std::string& seen : seen_attrs) {
        if (seen == attr) {
          return Status::InvalidArgument("attribute '" + attr +
                                         "' appears in more than one hierarchy position");
        }
      }
      seen_attrs.push_back(attr);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Dataset> Dataset::Make(Table table, std::vector<HierarchySchema> hierarchies) {
  if (hierarchies.empty()) {
    return Status::InvalidArgument("a dataset needs at least one hierarchy");
  }
  REPTILE_RETURN_IF_ERROR(ValidateSchema(table, hierarchies));
  return Dataset(std::move(table), std::move(hierarchies));
}

int Dataset::AttrColumn(AttrId attr) const {
  REPTILE_CHECK(attr.hierarchy >= 0 && attr.hierarchy < num_hierarchies());
  const auto& columns = attr_columns_[attr.hierarchy];
  REPTILE_CHECK(attr.level >= 0 && attr.level < static_cast<int>(columns.size()));
  return columns[attr.level];
}

std::vector<int> Dataset::HierarchyColumns(int hierarchy, int depth) const {
  REPTILE_CHECK(hierarchy >= 0 && hierarchy < num_hierarchies());
  REPTILE_CHECK_LE(depth, hierarchies_[hierarchy].depth());
  const auto& columns = attr_columns_[hierarchy];
  return std::vector<int>(columns.begin(), columns.begin() + depth);
}

const std::string& Dataset::AttrName(AttrId attr) const {
  return hierarchies_[attr.hierarchy].attributes[attr.level];
}

AttrId Dataset::ResolveAttr(const std::string& name) const {
  std::optional<AttrId> attr = FindAttr(name);
  REPTILE_CHECK(attr.has_value()) << "attribute " << name << " is not in any hierarchy";
  return *attr;
}

std::optional<AttrId> Dataset::FindAttr(const std::string& name) const {
  for (int h = 0; h < num_hierarchies(); ++h) {
    for (int l = 0; l < hierarchies_[h].depth(); ++l) {
      if (hierarchies_[h].attributes[l] == name) return AttrId{h, l};
    }
  }
  return std::nullopt;
}

std::optional<int> Dataset::FindHierarchy(const std::string& name) const {
  for (int h = 0; h < num_hierarchies(); ++h) {
    if (hierarchies_[h].name == name) return h;
  }
  return std::nullopt;
}

void Dataset::Validate() const {
  Status status = ValidateSchema(table_, hierarchies_);
  REPTILE_CHECK(status.ok()) << status.message();
}

}  // namespace reptile
