// Declarative, name-based request model of the public API.
//
// Clients describe what they want — a complaint over column *names*, a view,
// an auxiliary dataset, session-level exploration options — with fluent
// builders; the session validates every name and value and resolves the
// request to the internal Complaint / EngineOptions types. Nothing here
// aborts: all invalid input comes back as a non-OK Status.

#ifndef REPTILE_API_REQUEST_H_
#define REPTILE_API_REQUEST_H_

#include <optional>
#include <string>
#include <vector>

#include "api/model_spec.h"
#include "api/status.h"
#include "core/complaint.h"
#include "data/table.h"

namespace reptile {

struct EngineOptions;  // core/engine.h; resolved type, completed in request.cpp
class TraceContext;    // obs/trace.h; per-request stage-span recorder

/// A complaint built from names: "the MEAN of severity where district=Ofla
/// and year=1986 is too high". Resolved and validated against the session's
/// dataset by Resolve().
struct ComplaintSpec {
  std::string aggregate;               // "count" | "sum" | "mean" | "std" | "var"
  std::string measure;                 // measure column name; empty for pure COUNT
  std::vector<NamedPredicate> where;   // complaint tuple coordinates, by name
  std::string direction = "too_high";  // "too_high" | "too_low" | "equals"
  double target = 0.0;                 // expected value, for "equals"

  static ComplaintSpec TooHigh(std::string aggregate, std::string measure = std::string());
  static ComplaintSpec TooLow(std::string aggregate, std::string measure = std::string());
  static ComplaintSpec Equals(std::string aggregate, std::string measure, double target);

  /// Adds an equality predicate; returns *this for chaining.
  ComplaintSpec& Where(std::string column, std::string value);

  /// Validates every name/value against the dataset and resolves to the
  /// internal complaint. Unknown columns or values, mistyped columns, an
  /// unknown aggregate or direction, and a non-finite EQUALS target all
  /// return a non-OK Status.
  Result<Complaint> Resolve(const Dataset& dataset) const;

  /// One-line human-readable description, e.g.
  /// "MEAN(severity) where district=Ofla, year=1986 is too high".
  std::string Describe() const;
};

/// An aggregate view request: group-by columns, an optional measure, and a
/// conjunctive filter, all by name.
struct ViewRequest {
  std::vector<std::string> group_by;
  std::string measure;                // empty = COUNT only
  std::vector<NamedPredicate> where;

  ViewRequest& GroupBy(std::string column);
  ViewRequest& Measure(std::string column);
  ViewRequest& Where(std::string column, std::string value);
};

/// Registration of an auxiliary dataset (paper §3.3.2): the session copies
/// the table in and keeps it alive, exposing `measure` as a feature once
/// every join attribute is part of the drill-down.
struct AuxiliaryRequest {
  std::string name;
  Table table;
  std::vector<std::string> join_attributes;  // hierarchy attribute names
  std::string measure;                       // measure column in `table`
  bool normalize = true;
};

/// Session-level exploration options, by name; resolved to the internal
/// EngineOptions when the session is created.
///
/// Model configuration: prefer Model(ModelSpec) — one value holding the
/// family, backend, EM caps, extra repair primitives and the fit-cache
/// opt-out. The string fields model/backend/em_iterations and the
/// extra_repair_stats list below are the DEPRECATED pre-ModelSpec spelling;
/// they keep working, but an explicit ModelSpec wins over all of them.
struct ExploreRequest {
  int top_k = 5;
  // Preferred model surface: engaged via Model(ModelSpec) (or assignment);
  // when set, the four deprecated fields below are ignored.
  std::optional<ModelSpec> model_spec;
  std::string model = "multilevel";           // deprecated: "multilevel" | "linear"
  std::string backend = "auto";               // deprecated: "auto" | "factorized" | "dense"
  std::string random_effects = "intercepts";  // "intercepts" | "all"
  std::string drill_cache = "cache_dynamic";  // "static" | "dynamic" | "cache_dynamic"
  int em_iterations = 20;                     // deprecated: ModelSpec::EmIterations
  std::vector<std::string> extra_repair_stats;  // deprecated: e.g. {"count"} (Appendix N)
  // Worker threads for each Recommend/RecommendAll call: 0 = hardware
  // concurrency, 1 = sequential. Recommendations are identical at every
  // setting; only timings change.
  int num_threads = 0;
  // Fan compute out over the process-wide shared worker pool when the
  // resolved width is the machine default (true, the default), so many
  // concurrent sessions in one server share one set of workers. false keeps
  // every pool session-owned.
  bool shared_pool = true;

  ExploreRequest& TopK(int k);
  /// Sets the complete model configuration (preferred).
  ExploreRequest& Model(ModelSpec spec);
  ExploreRequest& Model(std::string name);  // deprecated string spelling
  ExploreRequest& Backend(std::string name);
  ExploreRequest& RandomEffects(std::string name);
  ExploreRequest& DrillCache(std::string name);
  ExploreRequest& EmIterations(int iters);
  ExploreRequest& RepairAlso(std::string aggregate);
  ExploreRequest& Threads(int n);
  ExploreRequest& SharedPool(bool share);

  /// Validates every knob and resolves to the internal engine options.
  Result<EngineOptions> Resolve() const;
};

/// Per-call overrides for one Recommend/RecommendAll invocation, distinct
/// from the session-construction ExploreRequest: zero-valued fields inherit
/// the session's options. Overrides apply to that call only and never alter
/// the session state.
struct BatchOptions {
  int num_threads = 0;  // 0 = session option; 1 = force sequential
  int top_k = 0;        // 0 = session option
  // Complete per-call model configuration (the wire's `options.model`):
  // disengaged inherits the session's; engaged REPLACES it wholesale for
  // this call — including extra_repair_stats, so combining it with the
  // deprecated list below is rejected as InvalidArgument.
  std::optional<ModelSpec> model;
  // Deprecated (subsumed by ModelSpec::extra_repair_stats): extra repair
  // statistics for this call only (Appendix N), by aggregate name ("count",
  // "sum", ...): disengaged inherits the session's extra_repair_stats;
  // engaged-and-empty toggles extras off for the call.
  std::optional<std::vector<std::string>> extra_repair_stats;
  // Per-request trace (obs/trace.h): when set, this call records
  // validate/plan/fit/rank stage spans onto it — the HTTP layer threads the
  // request's TraceContext through here. Borrowed for the call; nullptr
  // (the default) records nothing.
  TraceContext* trace = nullptr;

  BatchOptions& Threads(int n);
  BatchOptions& TopK(int k);
  /// Sets the complete per-call model configuration (preferred).
  BatchOptions& Model(ModelSpec spec);
  /// Adds one per-call extra repair statistic (engages the override).
  BatchOptions& RepairAlso(std::string aggregate);
  /// Forces the call to repair only the complaint's own primitives, even
  /// when the session was built with extra_repair_stats.
  BatchOptions& NoExtraRepairStats();
  /// Attaches the per-request trace context (see the field comment).
  BatchOptions& WithTrace(TraceContext* t);
};

}  // namespace reptile

#endif  // REPTILE_API_REQUEST_H_
