#include "api/registry.h"

#include <mutex>
#include <utility>

#include "factor/agg_cache.h"
#include "factor/model_cache.h"
#include "version/version.h"

namespace reptile {
namespace {

std::shared_ptr<const AggregateEpochs> UniformEpochsFor(const Dataset& dataset,
                                                        int64_t epoch) {
  std::vector<int> depths;
  depths.reserve(static_cast<size_t>(dataset.num_hierarchies()));
  for (int h = 0; h < dataset.num_hierarchies(); ++h) {
    depths.push_back(dataset.hierarchy(h).depth());
  }
  return std::make_shared<const AggregateEpochs>(MakeUniformEpochs(depths, epoch));
}

Status ValidatePreparable(const Dataset& dataset) {
  if (dataset.num_hierarchies() == 0) {
    return Status::InvalidArgument("a session needs at least one hierarchy to drill into");
  }
  if (dataset.table().num_rows() == 0) {
    return Status::InvalidArgument("the session dataset has no rows");
  }
  return Status::Ok();
}

}  // namespace

PreparedDataset::PreparedDataset(Dataset dataset)
    : dataset_(std::move(dataset)),
      cache_(std::make_shared<SharedAggregateCache>()),
      model_cache_(std::make_shared<SharedFittedModelCache>()),
      version_(1),
      epochs_(UniformEpochsFor(dataset_, 1)) {}

PreparedDataset::PreparedDataset(Dataset dataset, const PreparedDataset& parent,
                                 int64_t version, AggregateEpochs epochs)
    : dataset_(std::move(dataset)),
      cache_(parent.cache_),
      model_cache_(parent.model_cache_),
      version_(version),
      epochs_(std::make_shared<const AggregateEpochs>(std::move(epochs))) {}

PreparedDataset::~PreparedDataset() = default;

Result<DatasetHandle> PreparedDataset::Prepare(Dataset dataset) {
  REPTILE_RETURN_IF_ERROR(ValidatePreparable(dataset));
  // make_shared needs a public constructor; the struct-inheritance detour
  // keeps the constructor private without a custom allocator dance.
  struct Access : PreparedDataset {
    explicit Access(Dataset d) : PreparedDataset(std::move(d)) {}
  };
  return DatasetHandle(std::make_shared<const Access>(std::move(dataset)));
}

Result<DatasetHandle> PreparedDataset::PrepareVersion(const DatasetHandle& parent,
                                                      Dataset dataset, int64_t version,
                                                      AggregateEpochs epochs) {
  if (parent == nullptr) {
    return Status::InvalidArgument("a dataset version needs a parent to share caches with");
  }
  if (version != parent->version() + 1) {
    return Status::FailedPrecondition(
        "dataset version " + std::to_string(version) + " does not succeed parent version " +
        std::to_string(parent->version()));
  }
  REPTILE_RETURN_IF_ERROR(ValidatePreparable(dataset));
  if (epochs.dirtied.size() != static_cast<size_t>(dataset.num_hierarchies())) {
    return Status::Internal("dirty-epoch table does not cover every hierarchy");
  }
  struct Access : PreparedDataset {
    Access(Dataset d, const PreparedDataset& p, int64_t v, AggregateEpochs e)
        : PreparedDataset(std::move(d), p, v, std::move(e)) {}
  };
  return DatasetHandle(
      std::make_shared<const Access>(std::move(dataset), *parent, version, std::move(epochs)));
}

const AggregateEpochs& PreparedDataset::epochs() const { return *epochs_; }

std::string PreparedDataset::version_token() const {
  return version_ == 1 ? std::string() : std::to_string(version_);
}

int64_t PreparedDataset::cache_entries() const { return cache_->entries(); }
int64_t PreparedDataset::cache_hits() const { return cache_->hits(); }
int64_t PreparedDataset::cache_misses() const { return cache_->misses(); }
int64_t PreparedDataset::cache_bytes() const {
  return static_cast<int64_t>(cache_->bytes());
}
int64_t PreparedDataset::cache_evictions() const { return cache_->evictions(); }
int64_t PreparedDataset::model_cache_entries() const { return model_cache_->entries(); }
int64_t PreparedDataset::model_cache_hits() const { return model_cache_->hits(); }
int64_t PreparedDataset::model_cache_misses() const { return model_cache_->misses(); }
int64_t PreparedDataset::model_cache_bytes() const {
  return static_cast<int64_t>(model_cache_->bytes());
}
int64_t PreparedDataset::model_cache_evictions() const { return model_cache_->evictions(); }
int64_t PreparedDataset::model_cache_fits() const { return model_cache_->fits(); }

void PreparedDataset::SetCacheBudgetBytes(size_t total_bytes) const {
  size_t half = total_bytes / 2;
  cache_->set_budget_bytes(half);
  model_cache_->set_budget_bytes(total_bytes == 0 ? 0 : total_bytes - half);
}

Result<DatasetHandle> DatasetRegistry::Add(std::string name, Dataset dataset) {
  Result<DatasetHandle> prepared = PreparedDataset::Prepare(std::move(dataset));
  if (!prepared.ok()) return prepared.status();
  return AddPrepared(std::move(name), std::move(prepared).value());
}

Result<DatasetHandle> DatasetRegistry::AddPrepared(std::string name, DatasetHandle dataset) {
  if (name.empty()) return Status::InvalidArgument("dataset name must be non-empty");
  if (dataset == nullptr) return Status::InvalidArgument("dataset handle must be non-null");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = chains_.emplace(std::move(name), Chain());
  if (!inserted) {
    return Status::InvalidArgument("dataset '" + it->first + "' is already registered");
  }
  it->second.head = dataset->version();
  return it->second.versions.emplace(dataset->version(), std::move(dataset)).first->second;
}

Result<DatasetHandle> DatasetRegistry::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = chains_.find(name);
  if (it != chains_.end()) {
    return it->second.versions.at(it->second.head);
  }
  std::string base;
  int64_t version = 0;
  if (ParseVersionedName(name, &base, &version)) {
    it = chains_.find(base);
    if (it != chains_.end()) {
      auto vit = it->second.versions.find(version);
      if (vit != it->second.versions.end()) return vit->second;
      return Status::NotFound("dataset '" + base + "' has no live version v" +
                              std::to_string(version) +
                              " (it may have been garbage-collected)");
    }
  }
  return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
}

Result<int64_t> DatasetRegistry::AppendVersion(const std::string& name, DatasetHandle child,
                                               int64_t invalidated_entries) {
  if (child == nullptr) return Status::InvalidArgument("dataset handle must be non-null");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = chains_.find(name);
  if (it == chains_.end()) {
    return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
  }
  Chain& chain = it->second;
  if (child->version() != chain.head + 1) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' is at version " + std::to_string(chain.head) +
        ", not " + std::to_string(child->version() - 1) +
        " (a concurrent append committed first)");
  }
  chain.versions.emplace(child->version(), std::move(child));
  chain.head = it->second.versions.rbegin()->first;
  int64_t retired = GcChainLocked(chain);
  cache_invalidations_.fetch_add(invalidated_entries, std::memory_order_relaxed);
  return retired;
}

int64_t DatasetRegistry::GcChainLocked(Chain& chain) {
  // GC: a non-head version whose only reference is this chain (use_count 1
  // — new references are only handed out under mu_) has no session pinned
  // to it and can never be opened again cheaper than the head, so retire it.
  int64_t retired = 0;
  for (auto vit = chain.versions.begin(); vit != chain.versions.end();) {
    if (vit->first != chain.head && vit->second.use_count() == 1) {
      vit = chain.versions.erase(vit);
      ++retired;
    } else {
      ++vit;
    }
  }
  versions_gc_.fetch_add(retired, std::memory_order_relaxed);
  return retired;
}

Result<int64_t> DatasetRegistry::CollectGarbage(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = chains_.find(name);
  if (it == chains_.end()) {
    return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
  }
  return GcChainLocked(it->second);
}

Status DatasetRegistry::Remove(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (chains_.erase(name) == 0) {
    return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
  }
  return Status::Ok();
}

bool DatasetRegistry::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return chains_.find(name) != chains_.end();
}

std::vector<std::string> DatasetRegistry::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(chains_.size());
  for (const auto& [name, chain] : chains_) out.push_back(name);
  return out;
}

std::vector<DatasetVersionSummary> DatasetRegistry::VersionSummaries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<DatasetVersionSummary> out;
  out.reserve(chains_.size());
  for (const auto& [name, chain] : chains_) {
    DatasetVersionSummary summary;
    summary.name = name;
    summary.head = chain.head;
    summary.live.reserve(chain.versions.size());
    for (const auto& [version, handle] : chain.versions) summary.live.push_back(version);
    out.push_back(std::move(summary));
  }
  return out;
}

int64_t DatasetRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(chains_.size());
}

}  // namespace reptile
