#include "api/registry.h"

#include <mutex>
#include <utility>

#include "factor/agg_cache.h"
#include "factor/model_cache.h"

namespace reptile {

PreparedDataset::PreparedDataset(Dataset dataset)
    : dataset_(std::move(dataset)),
      cache_(std::make_shared<SharedAggregateCache>()),
      model_cache_(std::make_shared<SharedFittedModelCache>()) {}

PreparedDataset::~PreparedDataset() = default;

Result<DatasetHandle> PreparedDataset::Prepare(Dataset dataset) {
  if (dataset.num_hierarchies() == 0) {
    return Status::InvalidArgument("a session needs at least one hierarchy to drill into");
  }
  if (dataset.table().num_rows() == 0) {
    return Status::InvalidArgument("the session dataset has no rows");
  }
  // make_shared needs a public constructor; the struct-inheritance detour
  // keeps the constructor private without a custom allocator dance.
  struct Access : PreparedDataset {
    explicit Access(Dataset d) : PreparedDataset(std::move(d)) {}
  };
  return DatasetHandle(std::make_shared<const Access>(std::move(dataset)));
}

int64_t PreparedDataset::cache_entries() const { return cache_->entries(); }
int64_t PreparedDataset::cache_hits() const { return cache_->hits(); }
int64_t PreparedDataset::cache_misses() const { return cache_->misses(); }
int64_t PreparedDataset::cache_bytes() const {
  return static_cast<int64_t>(cache_->bytes());
}
int64_t PreparedDataset::cache_evictions() const { return cache_->evictions(); }
int64_t PreparedDataset::model_cache_entries() const { return model_cache_->entries(); }
int64_t PreparedDataset::model_cache_hits() const { return model_cache_->hits(); }
int64_t PreparedDataset::model_cache_misses() const { return model_cache_->misses(); }
int64_t PreparedDataset::model_cache_bytes() const {
  return static_cast<int64_t>(model_cache_->bytes());
}
int64_t PreparedDataset::model_cache_evictions() const { return model_cache_->evictions(); }
int64_t PreparedDataset::model_cache_fits() const { return model_cache_->fits(); }

void PreparedDataset::SetCacheBudgetBytes(size_t total_bytes) const {
  size_t half = total_bytes / 2;
  cache_->set_budget_bytes(half);
  model_cache_->set_budget_bytes(total_bytes == 0 ? 0 : total_bytes - half);
}

Result<DatasetHandle> DatasetRegistry::Add(std::string name, Dataset dataset) {
  Result<DatasetHandle> prepared = PreparedDataset::Prepare(std::move(dataset));
  if (!prepared.ok()) return prepared.status();
  return AddPrepared(std::move(name), std::move(prepared).value());
}

Result<DatasetHandle> DatasetRegistry::AddPrepared(std::string name, DatasetHandle dataset) {
  if (name.empty()) return Status::InvalidArgument("dataset name must be non-empty");
  if (dataset == nullptr) return Status::InvalidArgument("dataset handle must be non-null");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = datasets_.emplace(std::move(name), std::move(dataset));
  if (!inserted) {
    return Status::InvalidArgument("dataset '" + it->first + "' is already registered");
  }
  return it->second;
}

Result<DatasetHandle> DatasetRegistry::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
  }
  return it->second;
}

Status DatasetRegistry::Remove(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
  }
  return Status::Ok();
}

bool DatasetRegistry::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return datasets_.find(name) != datasets_.end();
}

std::vector<std::string> DatasetRegistry::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [name, handle] : datasets_) out.push_back(name);
  return out;
}

int64_t DatasetRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(datasets_.size());
}

}  // namespace reptile
