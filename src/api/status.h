// Status-based error model for the public API (no exceptions, no aborts).
//
// Every user-input failure path of the facade — CSV parse errors, unknown
// column or attribute names, invalid complaints, drilling an exhausted
// hierarchy — is reported through Status / Result<T>. REPTILE_CHECK remains
// reserved for internal invariants that indicate programmer error.
//
// This header is a dependency leaf: it may be included from any layer
// (data/, core/, api/) without creating cycles.

#ifndef REPTILE_API_STATUS_H_
#define REPTILE_API_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace reptile {

/// Canonical error space of the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // request is malformed (bad aggregate, bad target, ...)
  kNotFound,            // a named column / value / hierarchy does not exist
  kFailedPrecondition,  // valid request, wrong session state (e.g. exhausted drill)
  kIoError,             // file could not be opened / written
  kParseError,          // file opened but its contents are malformed
  kInternal,            // invariant violation surfaced as an error
  kDeadlineExceeded,    // the operation ran past its caller-imposed time budget
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

/// An error code plus a human-readable message; default-constructed is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status. Implicitly constructible from both so
/// functions can `return Status::NotFound(...)` or `return value` directly.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from an OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The value; must only be called when ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace reptile

/// Propagates a non-OK Status from an expression of type Status.
#define REPTILE_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::reptile::Status reptile_status_ = (expr);        \
    if (!reptile_status_.ok()) return reptile_status_; \
  } while (false)

#endif  // REPTILE_API_STATUS_H_
