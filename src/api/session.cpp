#include "api/session.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <utility>

#include "agg/aggregates.h"
#include "core/engine.h"
#include "core/view.h"
#include "obs/trace.h"

namespace reptile {
namespace {

// Lowercase statistic name used as the key of response stat maps.
std::string StatName(AggFn fn) {
  std::string name = AggFnName(fn);
  for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return name;
}

std::map<std::string, double> StatsOf(const Moments& m) {
  return {{"count", m.count}, {"sum", m.sum}, {"mean", m.Mean()}, {"std", m.SampleStd()}};
}

}  // namespace

struct Session::Impl {
  DatasetHandle handle;  // shared immutable dataset + cross-session cache
  std::unique_ptr<Engine> engine;
  std::deque<Table> aux_tables;  // stable addresses; the engine borrows them
  std::vector<std::string> aux_names;

  const Dataset& data() const { return handle->data(); }
};

Session::Session() : impl_(std::make_unique<Impl>()) {}
Session::Session(Session&& other) noexcept = default;
Session& Session::operator=(Session&& other) noexcept = default;
Session::~Session() = default;

Result<Session> Session::Open(DatasetHandle dataset, const ExploreRequest& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("cannot open a session over a null dataset handle");
  }
  Result<EngineOptions> engine_options = options.Resolve();
  if (!engine_options.ok()) return engine_options.status();
  Session session;
  session.impl_->handle = std::move(dataset);
  const DatasetHandle& handle = session.impl_->handle;
  session.impl_->engine =
      std::make_unique<Engine>(&handle->data(), &handle->cache(), &handle->model_cache(),
                               handle, *engine_options, &handle->epochs(),
                               handle->version_token());
  return session;
}

Result<Session> Session::Create(Dataset dataset, const ExploreRequest& options) {
  Result<DatasetHandle> prepared = PreparedDataset::Prepare(std::move(dataset));
  if (!prepared.ok()) return prepared.status();
  return Open(std::move(prepared).value(), options);
}

Result<Session> Session::Create(Table table, std::vector<HierarchySchema> hierarchies,
                                const ExploreRequest& options) {
  Result<Dataset> dataset = Dataset::Make(std::move(table), std::move(hierarchies));
  if (!dataset.ok()) return dataset.status();
  return Create(std::move(dataset).value(), options);
}

Result<Session> Session::FromCsv(const CsvDatasetRequest& request,
                                 const ExploreRequest& options) {
  Result<Table> table = LoadCsv(request.path, request.csv);
  if (!table.ok()) return table.status();
  return Create(std::move(table).value(), request.hierarchies, options);
}

Status Session::RegisterAuxiliary(AuxiliaryRequest request) {
  const Table& base = impl_->data().table();
  if (request.name.empty()) {
    return Status::InvalidArgument("auxiliary dataset needs a non-empty name");
  }
  for (const std::string& existing : impl_->aux_names) {
    if (existing == request.name) {
      return Status::InvalidArgument("auxiliary '" + request.name + "' is already registered");
    }
  }
  if (request.join_attributes.empty()) {
    return Status::InvalidArgument("auxiliary '" + request.name +
                                   "' needs at least one join attribute");
  }
  for (const std::string& attr : request.join_attributes) {
    if (!impl_->data().FindAttr(attr).has_value()) {
      return Status::NotFound("auxiliary '" + request.name + "' join attribute '" + attr +
                              "' is not a hierarchy attribute of the dataset");
    }
    std::optional<int> aux_column = request.table.FindColumn(attr);
    if (!aux_column.has_value()) {
      return Status::NotFound("auxiliary '" + request.name + "' table has no column '" + attr +
                              "'");
    }
    if (!request.table.is_dimension(*aux_column)) {
      return Status::InvalidArgument("auxiliary '" + request.name + "' join column '" + attr +
                                     "' must be a dimension column");
    }
    // The base column exists because hierarchy attributes are table columns.
    (void)base;
  }
  std::optional<int> measure = request.table.FindColumn(request.measure);
  if (!measure.has_value()) {
    return Status::NotFound("auxiliary '" + request.name + "' table has no measure column '" +
                            request.measure + "'");
  }
  if (request.table.is_dimension(*measure)) {
    return Status::InvalidArgument("auxiliary '" + request.name + "' measure '" +
                                   request.measure + "' is a dimension column");
  }

  impl_->aux_tables.push_back(std::move(request.table));
  AuxiliarySpec spec;
  spec.name = request.name;
  spec.table = &impl_->aux_tables.back();
  spec.join_attrs = request.join_attributes;
  spec.measure = request.measure;
  spec.normalize = request.normalize;
  impl_->engine->RegisterAuxiliary(std::move(spec));
  impl_->aux_names.push_back(request.name);
  return Status::Ok();
}

Status Session::ExcludeFromRandomEffects(const std::string& feature_name) {
  // Feature names are the intercept, dimension (attribute) columns, or
  // registered auxiliary names; a measure column can never name a feature.
  const Table& table = impl_->data().table();
  std::optional<int> column = table.FindColumn(feature_name);
  bool known = feature_name == "intercept" ||
               (column.has_value() && table.is_dimension(*column));
  if (!known) {
    for (const std::string& aux : impl_->aux_names) {
      if (aux == feature_name) known = true;
    }
  }
  if (!known) {
    return Status::NotFound("no feature named '" + feature_name +
                            "' (expected an attribute column or a registered auxiliary)");
  }
  impl_->engine->ExcludeFromRandomEffects(feature_name);
  return Status::Ok();
}

Result<ViewResponse> Session::View(const ViewRequest& request) const {
  const Table& table = impl_->data().table();
  if (request.group_by.empty()) {
    return Status::InvalidArgument("a view needs at least one group-by column");
  }
  ViewSpec spec;
  for (const std::string& column : request.group_by) {
    std::optional<int> index = table.FindColumn(column);
    if (!index.has_value()) {
      return Status::NotFound("group-by column '" + column + "' does not exist");
    }
    if (!table.is_dimension(*index)) {
      return Status::InvalidArgument("group-by column '" + column +
                                     "' is a measure column, not a dimension");
    }
    spec.key_columns.push_back(*index);
  }
  if (!request.measure.empty()) {
    std::optional<int> index = table.FindColumn(request.measure);
    if (!index.has_value()) {
      return Status::NotFound("measure column '" + request.measure + "' does not exist");
    }
    if (table.is_dimension(*index)) {
      return Status::InvalidArgument("column '" + request.measure +
                                     "' is a dimension column, not a measure");
    }
    spec.measure_column = *index;
  }
  for (const NamedPredicate& pred : request.where) {
    std::optional<int> index = table.FindColumn(pred.column);
    if (!index.has_value()) {
      return Status::NotFound("filter column '" + pred.column + "' does not exist");
    }
    if (!table.is_dimension(*index)) {
      return Status::InvalidArgument("filter column '" + pred.column +
                                     "' is a measure column; filters apply to dimensions");
    }
    std::optional<int32_t> code = table.dict(*index).Find(pred.value);
    if (!code.has_value()) {
      return Status::NotFound("value '" + pred.value + "' does not occur in column '" +
                              pred.column + "'");
    }
    spec.filter.Add(*index, *code);
  }

  ViewResult view = ComputeView(table, spec);
  ViewResponse response;
  response.group_by = request.group_by;
  response.rows.reserve(view.groups.num_groups());
  for (size_t g = 0; g < view.groups.num_groups(); ++g) {
    ViewRow row;
    for (size_t k = 0; k < spec.key_columns.size(); ++k) {
      int column = spec.key_columns[k];
      row.key.emplace_back(table.column_name(column),
                           table.dict(column).name(view.groups.key(g, k)));
    }
    row.stats = StatsOf(view.groups.stats(g));
    response.rows.push_back(std::move(row));
  }
  response.total = StatsOf(view.total);
  return response;
}

Result<ExploreResponse> Session::Recommend(const ComplaintSpec& complaint,
                                           const BatchOptions& options) {
  Result<BatchExploreResponse> batch =
      RecommendAll(std::span<const ComplaintSpec>(&complaint, 1), options);
  if (!batch.ok()) return batch.status();
  return std::move(batch->responses.front());
}

Result<BatchExploreResponse> Session::RecommendAll(
    std::initializer_list<ComplaintSpec> complaints, const BatchOptions& options) {
  return RecommendAll(std::span<const ComplaintSpec>(complaints.begin(), complaints.size()),
                      options);
}

Result<BatchExploreResponse> Session::RecommendAll(std::span<const ComplaintSpec> complaints,
                                                   const BatchOptions& options) {
  if (options.num_threads < 0) {
    return Status::InvalidArgument("per-call num_threads must be >= 0 (0 = session option), got " +
                                   std::to_string(options.num_threads));
  }
  if (options.top_k < 0) {
    return Status::InvalidArgument("per-call top_k must be >= 0 (0 = session option), got " +
                                   std::to_string(options.top_k));
  }
  if (options.model.has_value() && options.extra_repair_stats.has_value()) {
    return Status::InvalidArgument(
        "per-call options engage both \"model\" and the deprecated "
        "\"extra_repair_stats\"; a ModelSpec carries its own extra_repair_stats — set "
        "them there");
  }
  std::optional<std::vector<AggFn>> extra_stats;
  if (options.extra_repair_stats.has_value()) {
    extra_stats.emplace();
    for (const std::string& name : *options.extra_repair_stats) {
      std::optional<AggFn> fn = ParseAggFn(name);
      if (!fn.has_value()) {
        return Status::InvalidArgument("unknown extra repair statistic '" + name +
                                       "' (expected one of count, sum, mean, std, var)");
      }
      extra_stats->push_back(*fn);
    }
  }
  const Dataset& dataset = impl_->data();
  Engine& engine = *impl_->engine;

  // Plan-stage model validation: the per-call spec (or the session's, which
  // feature registrations since Open may have invalidated — e.g. a forced
  // factorised backend vs a newly registered multi-attribute auxiliary).
  REPTILE_RETURN_IF_ERROR(engine.ValidateModelSpec(
      options.model.has_value() ? *options.model : engine.options().model));

  bool any_drillable = false;
  for (int h = 0; h < dataset.num_hierarchies(); ++h) {
    if (engine.CanDrill(h)) any_drillable = true;
  }
  if (!any_drillable) {
    return Status::FailedPrecondition(
        "every hierarchy is fully drilled; the drill-down is exhausted");
  }

  // Validate stage: resolve every complaint (name resolution + the shared
  // ValidateComplaint checks) before any work happens, so a bad complaint in
  // the middle of a batch cannot leave partial effects.
  std::vector<Complaint> resolved;
  resolved.reserve(complaints.size());
  {
    ScopedSpan validate_span(options.trace, "validate");
    for (size_t i = 0; i < complaints.size(); ++i) {
      Result<Complaint> complaint = complaints[i].Resolve(dataset);
      if (!complaint.ok()) {
        const Status& status = complaint.status();
        if (complaints.size() == 1) return status;  // no batch-index prefix for Recommend()
        return Status(status.code(),
                      "complaints[" + std::to_string(i) + "]: " + status.message());
      }
      resolved.push_back(std::move(complaint).value());
    }
  }

  int64_t trained_before = engine.stats().models_trained;
  int64_t cache_hits_before = engine.stats().fit_cache_hits;
  BatchOverrides overrides;
  overrides.num_threads = options.num_threads;
  overrides.top_k = options.top_k;
  overrides.trace = options.trace;
  if (options.model.has_value()) overrides.model = &*options.model;
  if (extra_stats.has_value()) overrides.extra_repair_stats = &*extra_stats;

  // The echo every response carries: the spec the fit stage will run, with
  // "auto" canonicalized to the backend it picks when statically known.
  // Engine::EffectiveModelSpec(overrides) is the ONE resolution point — the
  // engine calls it again with these same overrides for the cache key and
  // the fits, so echo, key and execution cannot drift apart.
  const ModelSpec effective = engine.EffectiveModelSpec(overrides);
  ModelResponse model_echo;
  model_echo.kind = ModelSpec::KindName(effective.kind);
  model_echo.backend = ModelSpec::BackendName(effective.backend);
  model_echo.random_effects = ModelSpec::RandomPolicyName(effective.random_effects);
  model_echo.em_iterations = effective.em_iterations;
  model_echo.em_tolerance = effective.em_tolerance;
  model_echo.fit_cache = effective.fit_cache;
  for (AggFn fn : effective.extra_repair_stats) {
    model_echo.extra_repair_stats.push_back(StatName(fn));
  }

  BatchTiming timing;
  std::vector<Recommendation> recommendations = engine.RecommendBatch(
      std::span<const Complaint>(resolved.data(), resolved.size()), overrides, &timing);
  // Known only after the fits ran (or were found in the cache, which stores
  // the realized count): how many EM iterations the training loop executed.
  model_echo.em_iterations_run = timing.em_iterations_run;

  BatchExploreResponse batch;
  batch.models_trained = engine.stats().models_trained - trained_before;
  batch.fit_cache_hits = engine.stats().fit_cache_hits - cache_hits_before;
  batch.train_seconds = timing.train_seconds;
  batch.wall_seconds = timing.wall_seconds;
  batch.responses.reserve(recommendations.size());
  const Table& table = dataset.table();
  for (size_t i = 0; i < recommendations.size(); ++i) {
    const Recommendation& rec = recommendations[i];
    ExploreResponse response;
    response.complaint = complaints[i].Describe();
    response.model = model_echo;
    response.best_index = rec.best_index;
    response.candidates.reserve(rec.candidates.size());
    for (const HierarchyRecommendation& cand : rec.candidates) {
      HierarchyResponse hr;
      hr.hierarchy = dataset.hierarchy(cand.hierarchy).name;
      hr.attribute = cand.attribute;
      hr.best_score = cand.best_score;
      hr.model_rows = cand.model_rows;
      hr.model_clusters = cand.model_clusters;
      hr.train_seconds = cand.train_seconds;
      hr.total_seconds = cand.total_seconds;
      hr.groups.reserve(cand.top_groups.size());
      for (const GroupRecommendation& g : cand.top_groups) {
        GroupResponse gr;
        gr.description = g.description;
        for (size_t k = 0; k < cand.key_columns.size() && k < g.key.size(); ++k) {
          int column = cand.key_columns[k];
          gr.key.emplace_back(table.column_name(column), table.dict(column).name(g.key[k]));
        }
        gr.observed = StatsOf(g.observed);
        gr.repaired = StatsOf(g.repaired);
        for (const auto& [fn, value] : g.predicted) gr.predicted[StatName(fn)] = value;
        gr.repaired_complaint_value = g.repaired_complaint_value;
        gr.score = g.score;
        hr.groups.push_back(std::move(gr));
      }
      response.candidates.push_back(std::move(hr));
    }
    batch.responses.push_back(std::move(response));
  }
  return batch;
}

namespace {

// Resolves a hierarchy by schema name or by any of its attribute names.
Result<int> ResolveHierarchy(const Dataset& dataset, const std::string& name) {
  std::optional<int> hierarchy = dataset.FindHierarchy(name);
  if (hierarchy.has_value()) return *hierarchy;
  std::optional<AttrId> attr = dataset.FindAttr(name);
  if (attr.has_value()) return attr->hierarchy;
  return Status::NotFound("no hierarchy or hierarchy attribute named '" + name + "'");
}

}  // namespace

Status Session::Commit(const std::string& hierarchy) {
  Result<int> index = ResolveHierarchy(impl_->data(), hierarchy);
  if (!index.ok()) return index.status();
  if (!impl_->engine->CanDrill(*index)) {
    const HierarchySchema& schema = impl_->data().hierarchy(*index);
    return Status::FailedPrecondition(
        "hierarchy '" + schema.name + "' is already fully drilled (depth " +
        std::to_string(impl_->engine->drill_depth(*index)) + " of " +
        std::to_string(schema.depth()) + ")");
  }
  impl_->engine->CommitDrillDown(*index);
  return Status::Ok();
}

Result<int> Session::DrillDepth(const std::string& hierarchy) const {
  Result<int> index = ResolveHierarchy(impl_->data(), hierarchy);
  if (!index.ok()) return index.status();
  return impl_->engine->drill_depth(*index);
}

Result<bool> Session::CanDrill(const std::string& hierarchy) const {
  Result<int> index = ResolveHierarchy(impl_->data(), hierarchy);
  if (!index.ok()) return index.status();
  return impl_->engine->CanDrill(*index);
}

std::map<std::string, int> Session::CommittedDepths() const {
  const Dataset& dataset = impl_->data();
  std::map<std::string, int> committed;
  for (int h = 0; h < dataset.num_hierarchies(); ++h) {
    committed[dataset.hierarchy(h).name] = impl_->engine->drill_depth(h);
  }
  return committed;
}

Status Session::RestoreCommitted(const std::map<std::string, int>& committed) {
  const Dataset& dataset = impl_->data();
  // Validate the whole map first so a bad entry cannot leave the session
  // half-restored.
  for (const auto& [name, depth] : committed) {
    std::optional<int> hierarchy = dataset.FindHierarchy(name);
    if (!hierarchy.has_value()) {
      return Status::NotFound("no hierarchy named '" + name + "'");
    }
    const HierarchySchema& schema = dataset.hierarchy(*hierarchy);
    if (depth < 0 || depth > schema.depth()) {
      return Status::InvalidArgument(
          "committed depth for hierarchy '" + name + "' must be in [0, " +
          std::to_string(schema.depth()) + "], got " + std::to_string(depth));
    }
    if (impl_->engine->drill_depth(*hierarchy) > depth) {
      return Status::FailedPrecondition(
          "hierarchy '" + name + "' is already at depth " +
          std::to_string(impl_->engine->drill_depth(*hierarchy)) +
          "; drill-downs cannot be undone to depth " + std::to_string(depth));
    }
  }
  for (const auto& [name, depth] : committed) {
    int hierarchy = *dataset.FindHierarchy(name);
    while (impl_->engine->drill_depth(hierarchy) < depth) {
      impl_->engine->CommitDrillDown(hierarchy);
    }
  }
  return Status::Ok();
}

DatasetHandle Session::dataset() const { return impl_->handle; }

int64_t Session::models_trained() const { return impl_->engine->stats().models_trained; }

int64_t Session::fit_cache_hits() const { return impl_->engine->stats().fit_cache_hits; }

int64_t Session::aggregate_builds() const { return impl_->engine->aggregate_builds(); }

}  // namespace reptile
