#include "api/request.h"

#include <sstream>
#include <utility>

#include "core/engine.h"

namespace reptile {
namespace {

Status UnknownOption(const std::string& knob, const std::string& value,
                     const std::string& expected) {
  return Status::InvalidArgument("unknown " + knob + " '" + value + "' (expected one of " +
                                 expected + ")");
}

}  // namespace

ComplaintSpec ComplaintSpec::TooHigh(std::string aggregate, std::string measure) {
  ComplaintSpec spec;
  spec.aggregate = std::move(aggregate);
  spec.measure = std::move(measure);
  spec.direction = "too_high";
  return spec;
}

ComplaintSpec ComplaintSpec::TooLow(std::string aggregate, std::string measure) {
  ComplaintSpec spec = TooHigh(std::move(aggregate), std::move(measure));
  spec.direction = "too_low";
  return spec;
}

ComplaintSpec ComplaintSpec::Equals(std::string aggregate, std::string measure, double target) {
  ComplaintSpec spec = TooHigh(std::move(aggregate), std::move(measure));
  spec.direction = "equals";
  spec.target = target;
  return spec;
}

ComplaintSpec& ComplaintSpec::Where(std::string column, std::string value) {
  where.push_back(NamedPredicate{std::move(column), std::move(value)});
  return *this;
}

Result<Complaint> ComplaintSpec::Resolve(const Dataset& dataset) const {
  ComplaintDirection dir;
  if (direction == "too_high") {
    dir = ComplaintDirection::kTooHigh;
  } else if (direction == "too_low") {
    dir = ComplaintDirection::kTooLow;
  } else if (direction == "equals") {
    dir = ComplaintDirection::kEquals;
  } else {
    return UnknownOption("complaint direction", direction, "too_high, too_low, equals");
  }
  return ResolveComplaint(dataset, aggregate, measure, where, dir, target);
}

std::string ComplaintSpec::Describe() const {
  std::ostringstream os;
  os << aggregate;
  if (!measure.empty()) os << "(" << measure << ")";
  if (!where.empty()) {
    os << " where ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) os << ", ";
      os << where[i].column << "=" << where[i].value;
    }
  }
  if (direction == "too_high") {
    os << " is too high";
  } else if (direction == "too_low") {
    os << " is too low";
  } else if (direction == "equals") {
    os << " should be " << target;
  } else {
    os << " (invalid direction '" << direction << "')";
  }
  return os.str();
}

ViewRequest& ViewRequest::GroupBy(std::string column) {
  group_by.push_back(std::move(column));
  return *this;
}

ViewRequest& ViewRequest::Measure(std::string column) {
  measure = std::move(column);
  return *this;
}

ViewRequest& ViewRequest::Where(std::string column, std::string value) {
  where.push_back(NamedPredicate{std::move(column), std::move(value)});
  return *this;
}

ExploreRequest& ExploreRequest::TopK(int k) {
  top_k = k;
  return *this;
}

ExploreRequest& ExploreRequest::Model(ModelSpec spec) {
  model_spec = std::move(spec);
  return *this;
}

ExploreRequest& ExploreRequest::Model(std::string name) {
  model = std::move(name);
  return *this;
}

ExploreRequest& ExploreRequest::Backend(std::string name) {
  backend = std::move(name);
  return *this;
}

ExploreRequest& ExploreRequest::RandomEffects(std::string name) {
  random_effects = std::move(name);
  return *this;
}

ExploreRequest& ExploreRequest::DrillCache(std::string name) {
  drill_cache = std::move(name);
  return *this;
}

ExploreRequest& ExploreRequest::EmIterations(int iters) {
  em_iterations = iters;
  return *this;
}

ExploreRequest& ExploreRequest::RepairAlso(std::string aggregate) {
  extra_repair_stats.push_back(std::move(aggregate));
  return *this;
}

ExploreRequest& ExploreRequest::Threads(int n) {
  num_threads = n;
  return *this;
}

ExploreRequest& ExploreRequest::SharedPool(bool share) {
  shared_pool = share;
  return *this;
}

BatchOptions& BatchOptions::Threads(int n) {
  num_threads = n;
  return *this;
}

BatchOptions& BatchOptions::TopK(int k) {
  top_k = k;
  return *this;
}

BatchOptions& BatchOptions::Model(ModelSpec spec) {
  model = std::move(spec);
  return *this;
}

BatchOptions& BatchOptions::RepairAlso(std::string aggregate) {
  if (!extra_repair_stats.has_value()) extra_repair_stats.emplace();
  extra_repair_stats->push_back(std::move(aggregate));
  return *this;
}

BatchOptions& BatchOptions::WithTrace(TraceContext* t) {
  trace = t;
  return *this;
}

BatchOptions& BatchOptions::NoExtraRepairStats() {
  extra_repair_stats.emplace();  // engaged and empty: override to none
  return *this;
}

Result<EngineOptions> ExploreRequest::Resolve() const {
  EngineOptions options;
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive, got " + std::to_string(top_k));
  }
  options.top_k = top_k;

  if (model_spec.has_value()) {
    // The first-class spec wins over the deprecated string knobs wholesale.
    REPTILE_RETURN_IF_ERROR(model_spec->Validate());
    options.model = *model_spec;
  } else {
    std::optional<ModelSpec::Kind> kind = ModelSpec::ParseKind(model);
    if (!kind.has_value()) return UnknownOption("model", model, "multilevel, linear");
    options.model.kind = *kind;

    std::optional<ModelSpec::Backend> parsed_backend = ModelSpec::ParseBackend(backend);
    if (!parsed_backend.has_value()) {
      return UnknownOption("backend", backend, "auto, factorized, dense");
    }
    options.model.backend = *parsed_backend;

    if (em_iterations <= 0) {
      return Status::InvalidArgument("em_iterations must be positive, got " +
                                     std::to_string(em_iterations));
    }
    options.model.em_iterations = em_iterations;

    options.model.extra_repair_stats.clear();
    for (const std::string& name : extra_repair_stats) {
      std::optional<AggFn> fn = ParseAggFn(name);
      if (!fn.has_value()) {
        return Status::InvalidArgument("unknown extra repair statistic '" + name +
                                       "' (expected one of count, sum, mean, std, var)");
      }
      options.model.extra_repair_stats.push_back(*fn);
    }
  }

  if (random_effects == "intercepts") {
    options.random_effects = RandomEffects::kInterceptOnly;
  } else if (random_effects == "all") {
    options.random_effects = RandomEffects::kAllFeatures;
  } else {
    return UnknownOption("random_effects", random_effects, "intercepts, all");
  }

  if (drill_cache == "static") {
    options.drill_mode = DrillDownState::Mode::kStatic;
  } else if (drill_cache == "dynamic") {
    options.drill_mode = DrillDownState::Mode::kDynamic;
  } else if (drill_cache == "cache_dynamic") {
    options.drill_mode = DrillDownState::Mode::kCacheDynamic;
  } else {
    return UnknownOption("drill_cache", drill_cache, "static, dynamic, cache_dynamic");
  }

  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = hardware concurrency), got " +
                                   std::to_string(num_threads));
  }
  options.num_threads = num_threads;
  options.share_pool = shared_pool;
  return options;
}

}  // namespace reptile
