#include "api/response.h"

#include <sstream>

#include "common/json_util.h"

namespace reptile {
namespace {

// Minimal JSON writer: enough for the flat response structures here. String
// escaping and number formatting are shared with the server's parser/writer
// (common/json_util.h), which keeps every dataset/attribute name — quotes,
// backslashes, control characters included — parseable on the wire; the
// round-trip tests in tests/json_test.cpp hold the two sides together.
void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"' << JsonEscape(s) << '"';
}

void AppendJsonNumber(std::ostringstream& os, double value) { os << JsonNumber(value); }

void AppendStatMap(std::ostringstream& os, const std::map<std::string, double>& stats) {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : stats) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, name);
    os << ':';
    AppendJsonNumber(os, value);
  }
  os << '}';
}

void AppendKeyPairs(std::ostringstream& os,
                    const std::vector<std::pair<std::string, std::string>>& key) {
  os << '{';
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) os << ',';
    AppendJsonString(os, key[i].first);
    os << ':';
    AppendJsonString(os, key[i].second);
  }
  os << '}';
}

void AppendGroup(std::ostringstream& os, const GroupResponse& group) {
  os << "{\"description\":";
  AppendJsonString(os, group.description);
  os << ",\"key\":";
  AppendKeyPairs(os, group.key);
  os << ",\"observed\":";
  AppendStatMap(os, group.observed);
  os << ",\"predicted\":";
  AppendStatMap(os, group.predicted);
  os << ",\"repaired\":";
  AppendStatMap(os, group.repaired);
  os << ",\"repaired_complaint_value\":";
  AppendJsonNumber(os, group.repaired_complaint_value);
  os << ",\"score\":";
  AppendJsonNumber(os, group.score);
  os << '}';
}

void AppendHierarchy(std::ostringstream& os, const HierarchyResponse& candidate) {
  os << "{\"hierarchy\":";
  AppendJsonString(os, candidate.hierarchy);
  os << ",\"attribute\":";
  AppendJsonString(os, candidate.attribute);
  os << ",\"best_score\":";
  AppendJsonNumber(os, candidate.best_score);
  os << ",\"model_rows\":" << candidate.model_rows
     << ",\"model_clusters\":" << candidate.model_clusters << ",\"train_seconds\":";
  AppendJsonNumber(os, candidate.train_seconds);
  os << ",\"total_seconds\":";
  AppendJsonNumber(os, candidate.total_seconds);
  os << ",\"groups\":[";
  for (size_t i = 0; i < candidate.groups.size(); ++i) {
    if (i > 0) os << ',';
    AppendGroup(os, candidate.groups[i]);
  }
  os << "]}";
}

void AppendModel(std::ostringstream& os, const ModelResponse& model) {
  os << "{\"kind\":";
  AppendJsonString(os, model.kind);
  os << ",\"backend\":";
  AppendJsonString(os, model.backend);
  os << ",\"random_effects\":";
  AppendJsonString(os, model.random_effects);
  os << ",\"em_iterations\":" << model.em_iterations
     << ",\"em_iterations_run\":" << model.em_iterations_run << ",\"em_tolerance\":";
  AppendJsonNumber(os, model.em_tolerance);
  os << ",\"fit_cache\":" << (model.fit_cache ? "true" : "false")
     << ",\"extra_repair_stats\":[";
  for (size_t i = 0; i < model.extra_repair_stats.size(); ++i) {
    if (i > 0) os << ',';
    AppendJsonString(os, model.extra_repair_stats[i]);
  }
  os << "]}";
}

void AppendExplore(std::ostringstream& os, const ExploreResponse& response) {
  os << "{\"complaint\":";
  AppendJsonString(os, response.complaint);
  os << ",\"model\":";
  AppendModel(os, response.model);
  os << ",\"best_index\":" << response.best_index << ",\"candidates\":[";
  for (size_t i = 0; i < response.candidates.size(); ++i) {
    if (i > 0) os << ',';
    AppendHierarchy(os, response.candidates[i]);
  }
  os << "]}";
}

}  // namespace

const HierarchyResponse* ExploreResponse::best() const {
  if (best_index < 0 || best_index >= static_cast<int>(candidates.size())) return nullptr;
  return &candidates[static_cast<size_t>(best_index)];
}

std::string ExploreResponse::ToJson() const {
  std::ostringstream os;
  AppendExplore(os, *this);
  return os.str();
}

std::string BatchExploreResponse::ToJson() const {
  std::ostringstream os;
  os << "{\"models_trained\":" << models_trained
     << ",\"fit_cache_hits\":" << fit_cache_hits << ",\"train_seconds\":";
  AppendJsonNumber(os, train_seconds);
  os << ",\"wall_seconds\":";
  AppendJsonNumber(os, wall_seconds);
  os << ",\"responses\":[";
  for (size_t i = 0; i < responses.size(); ++i) {
    if (i > 0) os << ',';
    AppendExplore(os, responses[i]);
  }
  os << "]}";
  return os.str();
}

std::vector<std::string> BatchExploreResponse::ToJsonPieces() const {
  // Must serialize exactly like ToJson() above — tests/server_test.cpp and
  // the reactor differential suite compare the two byte-for-byte.
  std::vector<std::string> pieces;
  pieces.reserve(responses.size() + 2);
  {
    std::ostringstream os;
    os << "{\"models_trained\":" << models_trained
       << ",\"fit_cache_hits\":" << fit_cache_hits << ",\"train_seconds\":";
    AppendJsonNumber(os, train_seconds);
    os << ",\"wall_seconds\":";
    AppendJsonNumber(os, wall_seconds);
    os << ",\"responses\":[";
    pieces.push_back(os.str());
  }
  for (size_t i = 0; i < responses.size(); ++i) {
    std::ostringstream os;
    if (i > 0) os << ',';
    AppendExplore(os, responses[i]);
    pieces.push_back(os.str());
  }
  pieces.push_back("]}");
  return pieces;
}

std::string ViewResponse::ToJson() const {
  std::ostringstream os;
  os << "{\"group_by\":[";
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (i > 0) os << ',';
    AppendJsonString(os, group_by[i]);
  }
  os << "],\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"key\":";
    AppendKeyPairs(os, rows[i].key);
    os << ",\"stats\":";
    AppendStatMap(os, rows[i].stats);
    os << '}';
  }
  os << "],\"total\":";
  AppendStatMap(os, total);
  os << '}';
  return os.str();
}

}  // namespace reptile
