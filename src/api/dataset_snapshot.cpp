#include "api/dataset_snapshot.h"

#include <memory>
#include <utility>
#include <vector>

#include "data/snapshot.h"
#include "factor/agg_cache.h"
#include "factor/model_cache.h"

namespace reptile {
namespace {

std::string SchemaSection(const PreparedDataset& dataset) {
  const Dataset& data = dataset.data();
  const Table& table = data.table();
  ByteWriter w;
  w.U32(static_cast<uint32_t>(data.num_hierarchies()));
  for (int h = 0; h < data.num_hierarchies(); ++h) {
    const HierarchySchema& schema = data.hierarchy(h);
    w.Str(schema.name);
    w.U32(static_cast<uint32_t>(schema.attributes.size()));
    for (const std::string& attr : schema.attributes) w.Str(attr);
  }
  w.U32(static_cast<uint32_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    w.Str(table.column_name(c));
    w.U8(table.is_dimension(c) ? 1 : 0);
  }
  w.U64(table.num_rows());
  return w.TakeBytes();
}

std::string DictSection(const ValueDict& dict) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(dict.size()));
  for (int32_t code = 0; code < dict.size(); ++code) w.Str(dict.name(code));
  return w.TakeBytes();
}

std::string FTreesSection(const PreparedDataset& dataset) {
  // Version chains share one cache object, so the walk filters to the keys
  // THIS version reads: entries whose epoch matches the dataset's epoch
  // table. The wire form stays (hierarchy, depth) — a restore re-prepares
  // the dataset as version 1 of a fresh chain (all-1 epochs; lineage is NOT
  // persisted), so the epoch component would be meaningless on disk.
  ByteWriter w;
  std::vector<std::pair<SharedAggregateCache::Key, HierarchyAggregatesPtr>> persisted;
  for (auto& item : dataset.cache().Items()) {
    const auto& [epoch, hierarchy, depth] = item.first;
    if (epoch != dataset.epochs().at(hierarchy, depth)) continue;
    persisted.push_back(std::move(item));
  }
  w.U32(static_cast<uint32_t>(persisted.size()));
  for (const auto& [key, entry] : persisted) {
    w.I32(std::get<1>(key));
    w.I32(std::get<2>(key));
    const FTree& tree = *entry->tree;
    w.U32(static_cast<uint32_t>(tree.depth()));
    for (int l = 0; l < tree.depth(); ++l) {
      w.VecI32(tree.level(l).value);
      w.VecI64(tree.level(l).parent);
    }
  }
  return w.TakeBytes();
}

std::string ModelsSection(const PreparedDataset& dataset) {
  // Same filter for fitted models: keep only this version's keys. Version 1
  // keys have no "|v:" component; an appended head's keys end in
  // "|v:<version>", which is STRIPPED on write so the restored dataset —
  // version 1 again — finds them warm under its own spelling.
  const std::string version_suffix =
      dataset.version_token().empty() ? std::string() : "|v:" + dataset.version_token();
  ByteWriter w;
  std::vector<std::pair<std::string, FittedModelPtr>> persisted;
  for (auto& [key, model] : dataset.model_cache().CompletedEntries()) {
    // '#'-prefixed feature partitions are process-unique (custom features
    // have no content identity): no future process can ever compute such a
    // key, so persisting the entry would be dead weight.
    if (!key.empty() && key[0] == '#') continue;
    size_t v = key.rfind("|v:");
    if (version_suffix.empty()) {
      if (v != std::string::npos) continue;  // another version's fits
      persisted.emplace_back(key, std::move(model));
    } else {
      if (v == std::string::npos || key.compare(v, std::string::npos, version_suffix) != 0) {
        continue;
      }
      persisted.emplace_back(key.substr(0, v), std::move(model));
    }
  }
  w.U32(static_cast<uint32_t>(persisted.size()));
  for (const auto& [key, model] : persisted) {
    w.Str(key);
    w.VecF64(model->fitted);
    w.F64(model->fit_seconds);
    w.I32(model->em_iterations_run);
  }
  return w.TakeBytes();
}

Status LoadCaches(const SnapshotReader& reader, const PreparedDataset& dataset) {
  const Dataset& data = dataset.data();
  {
    Result<ByteReader> section = reader.Find("ftrees");
    if (!section.ok()) return section.status();
    ByteReader& r = *section;
    uint32_t count = r.U32();
    for (uint32_t i = 0; i < count && r.status().ok(); ++i) {
      int32_t hierarchy = r.I32();
      int32_t depth = r.I32();
      if (!r.status().ok()) break;
      if (hierarchy < 0 || hierarchy >= data.num_hierarchies() || depth < 1 ||
          depth > data.hierarchy(hierarchy).depth()) {
        r.Fail("aggregate key (" + std::to_string(hierarchy) + ", " +
               std::to_string(depth) + ") does not fit the dataset's hierarchies");
        break;
      }
      uint32_t tree_depth = r.U32();
      if (tree_depth != static_cast<uint32_t>(depth)) {
        r.Fail("f-tree depth disagrees with its cache key");
        break;
      }
      std::vector<FTree::Level> levels(tree_depth);
      for (uint32_t l = 0; l < tree_depth; ++l) {
        levels[l].value = r.VecI32();
        levels[l].parent = r.VecI64();
      }
      if (!r.status().ok()) break;
      // Values must be codes of the hierarchy's columns — downstream key
      // formatting indexes the dictionaries with them.
      std::vector<int> columns = data.HierarchyColumns(hierarchy, depth);
      for (uint32_t l = 0; l < tree_depth && r.status().ok(); ++l) {
        int32_t cardinality = data.table().dict(columns[l]).size();
        for (int32_t value : levels[l].value) {
          if (value < 0 || value >= cardinality) {
            r.Fail("f-tree value outside its column's dictionary");
            break;
          }
        }
      }
      if (!r.status().ok()) break;
      Result<FTree> tree = FTree::FromLevels(std::move(levels));
      if (!tree.ok()) return tree.status();
      HierarchyAggregates built;
      built.tree = std::make_unique<FTree>(std::move(tree).value());
      built.locals = std::make_unique<LocalAggregates>(built.tree.get());
      dataset.cache().Insert(hierarchy, depth, std::move(built));
    }
    if (!r.status().ok()) return r.status();
    if (!r.AtEnd()) return Status::ParseError("corrupt snapshot: trailing bytes in 'ftrees'");
  }
  {
    Result<ByteReader> section = reader.Find("models");
    if (!section.ok()) return section.status();
    ByteReader& r = *section;
    uint32_t count = r.U32();
    for (uint32_t i = 0; i < count && r.status().ok(); ++i) {
      std::string key = r.Str();
      FittedModel model;
      model.fitted = r.VecF64();
      model.fit_seconds = r.F64();
      model.em_iterations_run = r.I32();
      if (!r.status().ok()) break;
      if (key.empty() || key[0] == '#') {
        r.Fail("fitted-model entry with an unpersistable key");
        break;
      }
      dataset.model_cache().Put(key, std::make_shared<const FittedModel>(std::move(model)));
    }
    if (!r.status().ok()) return r.status();
    if (!r.AtEnd()) return Status::ParseError("corrupt snapshot: trailing bytes in 'models'");
  }
  return Status::Ok();
}

}  // namespace

Status SavePreparedDataset(const PreparedDataset& dataset, const std::string& path) {
  const Table& table = dataset.table();
  SnapshotWriter writer;
  writer.AddSection("schema", SchemaSection(dataset));
  for (int c = 0; c < table.num_columns(); ++c) {
    if (table.is_dimension(c)) {
      writer.AddSection("dict:" + std::to_string(c), DictSection(table.dict(c)));
    }
    ByteWriter w;
    if (table.is_dimension(c)) {
      w.VecI32(table.dim_codes(c));
    } else {
      w.VecF64(table.measure(c));
    }
    writer.AddSection("col:" + std::to_string(c), w.TakeBytes());
  }
  writer.AddSection("ftrees", FTreesSection(dataset));
  writer.AddSection("models", ModelsSection(dataset));
  return writer.WriteFile(path);
}

Result<DatasetHandle> LoadPreparedDataset(const std::string& path) {
  Result<SnapshotReader> opened = SnapshotReader::Open(path);
  if (!opened.ok()) return opened.status();
  const SnapshotReader& reader = *opened;

  Result<ByteReader> schema_section = reader.Find("schema");
  if (!schema_section.ok()) return schema_section.status();
  ByteReader& schema = *schema_section;

  std::vector<HierarchySchema> hierarchies(schema.U32());
  for (HierarchySchema& h : hierarchies) {
    h.name = schema.Str();
    h.attributes.resize(schema.U32());
    for (std::string& attr : h.attributes) attr = schema.Str();
    if (!schema.status().ok()) return schema.status();
  }
  uint32_t num_columns = schema.U32();
  Table table;
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name = schema.Str();
    bool is_dimension = schema.U8() != 0;
    if (!schema.status().ok()) return schema.status();
    if (is_dimension) {
      table.AddDimensionColumn(name);
    } else {
      table.AddMeasureColumn(name);
    }
  }
  uint64_t num_rows = schema.U64();
  if (!schema.status().ok()) return schema.status();
  if (!schema.AtEnd()) return Status::ParseError("corrupt snapshot: trailing bytes in 'schema'");

  for (uint32_t c = 0; c < num_columns; ++c) {
    Result<ByteReader> column_section = reader.Find("col:" + std::to_string(c));
    if (!column_section.ok()) return column_section.status();
    ByteReader& col = *column_section;
    if (table.is_dimension(static_cast<int>(c))) {
      Result<ByteReader> dict_section = reader.Find("dict:" + std::to_string(c));
      if (!dict_section.ok()) return dict_section.status();
      ByteReader& d = *dict_section;
      std::vector<std::string> names(d.U32());
      for (std::string& name : names) name = d.Str();
      if (!d.status().ok()) return d.status();
      Result<ValueDict> dict = ValueDict::FromNames(std::move(names));
      if (!dict.ok()) return dict.status();
      std::vector<int32_t> codes = col.VecI32();
      if (!col.status().ok()) return col.status();
      REPTILE_RETURN_IF_ERROR(table.SetDimensionColumnData(
          static_cast<int>(c), std::move(dict).value(), std::move(codes)));
    } else {
      std::vector<double> values = col.VecF64();
      if (!col.status().ok()) return col.status();
      REPTILE_RETURN_IF_ERROR(table.SetMeasureColumnData(static_cast<int>(c),
                                                         std::move(values)));
    }
  }
  REPTILE_RETURN_IF_ERROR(table.FinishColumnLoad());
  if (table.num_rows() != num_rows) {
    return Status::ParseError("corrupt snapshot: row count disagrees with the schema");
  }

  Result<Dataset> dataset = Dataset::Make(std::move(table), std::move(hierarchies));
  if (!dataset.ok()) return dataset.status();
  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset).value());
  if (!handle.ok()) return handle.status();
  REPTILE_RETURN_IF_ERROR(LoadCaches(reader, **handle));
  return handle;
}

}  // namespace reptile
