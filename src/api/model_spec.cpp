#include "api/model_spec.h"

#include <cmath>
#include <sstream>

namespace reptile {

ModelSpec& ModelSpec::With(Kind k) {
  kind = k;
  return *this;
}

ModelSpec& ModelSpec::With(Backend b) {
  backend = b;
  return *this;
}

ModelSpec& ModelSpec::With(RandomPolicy p) {
  random_effects = p;
  return *this;
}

ModelSpec& ModelSpec::EmIterations(int iters) {
  em_iterations = iters;
  return *this;
}

ModelSpec& ModelSpec::EmTolerance(double tolerance) {
  em_tolerance = tolerance;
  return *this;
}

ModelSpec& ModelSpec::FitCache(bool use) {
  fit_cache = use;
  return *this;
}

ModelSpec& ModelSpec::RepairAlso(AggFn statistic) {
  extra_repair_stats.push_back(statistic);
  return *this;
}

Status ModelSpec::Validate() const {
  if (em_iterations <= 0) {
    return Status::InvalidArgument("model em_iterations must be positive, got " +
                                   std::to_string(em_iterations));
  }
  if (!(em_tolerance >= 0.0) || !std::isfinite(em_tolerance)) {
    return Status::InvalidArgument("model em_tolerance must be finite and >= 0");
  }
  return Status::Ok();
}

std::string ModelSpec::CacheKey() const {
  // hexfloat is an exact (lossless) double encoding: two tolerances collide
  // on a key only when they are the same value. The format only has to be
  // deterministic, not pretty — keys never leave the process.
  std::ostringstream os;
  os << KindName(kind) << ',' << BackendName(backend) << ",re"
     << RandomPolicyName(random_effects) << ",it" << em_iterations << ",tol"
     << std::hexfloat << em_tolerance;
  return os.str();
}

const char* ModelSpec::KindName(Kind kind) {
  switch (kind) {
    case Kind::kMultiLevel:
      return "multilevel";
    case Kind::kLinear:
      return "linear";
  }
  return "multilevel";
}

const char* ModelSpec::BackendName(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kFactorized:
      return "factorized";
    case Backend::kDense:
      return "dense";
  }
  return "auto";
}

const char* ModelSpec::RandomPolicyName(RandomPolicy policy) {
  switch (policy) {
    case RandomPolicy::kDefault:
      return "default";
    case RandomPolicy::kIntercepts:
      return "intercepts";
    case RandomPolicy::kAll:
      return "all";
  }
  return "default";
}

std::optional<ModelSpec::Kind> ModelSpec::ParseKind(const std::string& name) {
  if (name == "multilevel") return Kind::kMultiLevel;
  if (name == "linear") return Kind::kLinear;
  return std::nullopt;
}

std::optional<ModelSpec::Backend> ModelSpec::ParseBackend(const std::string& name) {
  if (name == "auto") return Backend::kAuto;
  if (name == "factorized") return Backend::kFactorized;
  if (name == "dense") return Backend::kDense;
  return std::nullopt;
}

std::optional<ModelSpec::RandomPolicy> ModelSpec::ParseRandomPolicy(const std::string& name) {
  if (name == "intercepts") return RandomPolicy::kIntercepts;
  if (name == "all") return RandomPolicy::kAll;
  return std::nullopt;
}

}  // namespace reptile
