// Serializable response model of the public API.
//
// Responses are plain data — strings, doubles, name-keyed maps — fully
// decoupled from engine internals (no Moments, no AggFn, no column indices),
// so clients and a future server layer can consume them directly; every
// response serialises itself with ToJson().

#ifndef REPTILE_API_RESPONSE_H_
#define REPTILE_API_RESPONSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace reptile {

/// One recommended drill-down group. Statistic maps are keyed by lowercase
/// statistic names ("count", "sum", "mean", "std"); `predicted` holds one
/// entry per primitive model the repair used.
struct GroupResponse {
  std::string description;                              // "year=1986, village=Zata"
  std::vector<std::pair<std::string, std::string>> key;  // (column, value) pairs
  std::map<std::string, double> observed;
  std::map<std::string, double> predicted;
  std::map<std::string, double> repaired;
  double repaired_complaint_value = 0.0;
  double score = 0.0;  // lower is better
};

/// Result of evaluating one candidate hierarchy.
struct HierarchyResponse {
  std::string hierarchy;  // hierarchy schema name ("geo")
  std::string attribute;  // the newly added (drilled) attribute ("village")
  std::vector<GroupResponse> groups;
  double best_score = 0.0;
  int64_t model_rows = 0;
  int64_t model_clusters = 0;
  double train_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Echo of the ModelSpec a call actually ran — the session's configuration
/// or the per-call override, with "auto" resolved to the backend the fit
/// stage picked when that is statically known. Serialized into every
/// ExploreResponse so wire clients can see (and assert) what trained their
/// models. Deterministic: identical for cold and cache-warm calls.
struct ModelResponse {
  std::string kind = "multilevel";   // "multilevel" | "linear"
  std::string backend = "factorized";  // "auto" | "factorized" | "dense"
  std::string random_effects = "intercepts";  // "intercepts" | "all"
  int em_iterations = 20;
  double em_tolerance = 0.0;
  // EM iterations the training loop actually executed — em_iterations when
  // it ran to the cap, fewer when em_tolerance stopped it early, the max
  // over the call's fits when they differ, 0 for linear models. The knob
  // users watch to tune em_tolerance. Identical for cold and cache-warm
  // calls: the realized count is stored with the cached model.
  int em_iterations_run = 0;
  bool fit_cache = true;
  std::vector<std::string> extra_repair_stats;  // lowercase statistic names
};

/// The full answer to one complaint: all candidate hierarchies plus the
/// arg-min recommendation.
struct ExploreResponse {
  std::string complaint;  // description of the complaint this answers
  ModelResponse model;    // what actually trained the candidates' models
  std::vector<HierarchyResponse> candidates;
  int best_index = -1;

  bool has_recommendation() const { return best_index >= 0; }

  /// The recommended hierarchy, or nullptr when no candidate produced groups.
  const HierarchyResponse* best() const;

  std::string ToJson() const;
};

/// Answer to a batched RecommendAll call: one response per complaint, in
/// request order, plus how many primitive models the batch actually trained
/// (shared hierarchy extensions train each model once).
///
/// Timing is reported two ways because the batch may run on several worker
/// threads: `train_seconds` sums each model fit's own duration (total CPU
/// work, stable under concurrency), while `wall_seconds` is the end-to-end
/// elapsed time of the call (what a client waited; less than train_seconds
/// when fits overlapped).
/// `models_trained` counts fits THIS call actually performed;
/// `fit_cache_hits` counts the fits it skipped because the process-shared
/// fitted-model cache already held the model (trained by an earlier call of
/// this session or by another session over the same dataset). A fully warm
/// call reports models_trained == 0.
struct BatchExploreResponse {
  std::vector<ExploreResponse> responses;
  int64_t models_trained = 0;
  int64_t fit_cache_hits = 0;
  double train_seconds = 0.0;
  double wall_seconds = 0.0;

  std::string ToJson() const;

  /// The exact ToJson() bytes split at streaming-friendly boundaries: one
  /// piece for the batch header, one per response (separator included), one
  /// for the closing bracket. Concatenating the pieces reproduces ToJson()
  /// byte-for-byte — the server's chunked recommend_batch path streams these
  /// one at a time instead of joining them into a single string.
  std::vector<std::string> ToJsonPieces() const;
};

/// One row of an aggregate view.
struct ViewRow {
  std::vector<std::pair<std::string, std::string>> key;  // (column, value) pairs
  std::map<std::string, double> stats;                   // count / sum / mean / std
};

/// A computed aggregate view plus the merged total.
struct ViewResponse {
  std::vector<std::string> group_by;
  std::vector<ViewRow> rows;
  std::map<std::string, double> total;

  std::string ToJson() const;
};

}  // namespace reptile

#endif  // REPTILE_API_RESPONSE_H_
