// The dataset half of the dataset/session split: shared, immutable, built
// once.
//
// Reptile's interactive loop (paper Section 2.1) is per-analyst, but the
// data every analyst explores is the same: N sessions over one hierarchical
// dataset should pay 1x — not Nx — for the table, the hierarchy metadata,
// and the (hierarchy, depth)-keyed f-tree / decomposed-aggregate entries.
//
//   PreparedDataset  — an immutable Dataset plus its process-shared
//                      aggregate cache (factor/agg_cache.h). Built once;
//                      every Session opened over it shares both.
//   DatasetHandle    — std::shared_ptr<const PreparedDataset>. Sessions and
//                      callers hold handles, so a dataset stays alive while
//                      anyone uses it even after the registry drops it.
//   DatasetRegistry  — a thread-safe, name-keyed table of handles: the
//                      server's POST /v1/datasets target.
//
// Per-session state stays in Session (api/session.h): committed drill
// depths, registered auxiliaries, random-effect exclusions. Committing a
// drill-down copies nothing — it bumps the session's depth vector while the
// aggregates stay shared ("copy-on-drill").
//
// Incremental versions (version/append.h): appending rows produces a NEW
// immutable PreparedDataset — version K+1, parent-linked by construction —
// that shares the parent's two cache objects and carries an AggregateEpochs
// table marking which (hierarchy, depth) subtrees the delta dirtied. The
// registry keys each name to a VERSION CHAIN: "name" resolves to the head,
// "name@vK" pins a specific live version, and AppendVersion() retires
// unpinned non-head ancestors (their handles' only reference is the chain
// itself) so the byte budget pays only for versions someone can still read.

#ifndef REPTILE_API_REGISTRY_H_
#define REPTILE_API_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/status.h"
#include "data/dataset.h"

namespace reptile {

class SharedAggregateCache;    // factor/agg_cache.h (internal)
class SharedFittedModelCache;  // factor/model_cache.h (internal)
struct AggregateEpochs;        // factor/agg_cache.h (internal)

class PreparedDataset;
using DatasetHandle = std::shared_ptr<const PreparedDataset>;

/// An immutable dataset prepared for sharing: the base relation, hierarchy
/// metadata, and the cross-session aggregate cache. Thread-safe: everything
/// reachable from a const PreparedDataset is either immutable or internally
/// synchronized (the cache).
class PreparedDataset {
 public:
  /// Validates and wraps `dataset` as version 1 of a fresh chain (own caches,
  /// all-1 epochs). InvalidArgument when the dataset has no hierarchy to
  /// drill into or no rows.
  static Result<DatasetHandle> Prepare(Dataset dataset);

  /// Wraps `dataset` as version `version` == parent->version() + 1 of the
  /// parent's chain. The child SHARES the parent's aggregate and model cache
  /// objects; `epochs` says, per (hierarchy, depth), which entries it reads
  /// at the parent's epoch (structurally shared) versus its own version id
  /// (dirtied by the append — see AggregateEpochs). Same validation as
  /// Prepare, plus the version-succession check.
  static Result<DatasetHandle> PrepareVersion(const DatasetHandle& parent, Dataset dataset,
                                              int64_t version, AggregateEpochs epochs);

  ~PreparedDataset();

  PreparedDataset(const PreparedDataset&) = delete;
  PreparedDataset& operator=(const PreparedDataset&) = delete;

  const Dataset& data() const { return dataset_; }
  const Table& table() const { return dataset_.table(); }

  /// The shared aggregate cache (internally synchronized; mutable through a
  /// const handle by design — caching is not a logical mutation).
  SharedAggregateCache& cache() const { return *cache_; }

  /// The shared fitted-model cache (factor/model_cache.h): every session
  /// opened over this dataset consults it before training, so warm sessions
  /// perform zero fits. Internally synchronized, like cache().
  SharedFittedModelCache& model_cache() const { return *model_cache_; }

  /// This dataset's version within its chain (1 for a fresh Prepare).
  int64_t version() const { return version_; }

  /// Per-(hierarchy, depth) dirty epochs for the shared aggregate cache.
  const AggregateEpochs& epochs() const;

  /// Fitted-model cache-key component: "" for version 1 (so v1 keys keep the
  /// historical spelling snapshots persist), the decimal version otherwise.
  std::string version_token() const;

  /// Cache observability for tests, benchmarks and capacity monitoring.
  int64_t cache_entries() const;
  int64_t cache_hits() const;
  int64_t cache_misses() const;
  int64_t cache_bytes() const;
  int64_t cache_evictions() const;
  int64_t model_cache_entries() const;
  int64_t model_cache_hits() const;
  int64_t model_cache_misses() const;
  int64_t model_cache_bytes() const;
  int64_t model_cache_evictions() const;
  /// Model fits actually performed through the cache — across every session
  /// over this dataset; the single-flight contract makes this "one per
  /// distinct key", however many sessions raced.
  int64_t model_cache_fits() const;

  /// Splits `total_bytes` evenly between the aggregate and model caches
  /// (0 = unlimited for both). Const for the same reason cache() is: a
  /// budget changes retention, not the logical dataset.
  void SetCacheBudgetBytes(size_t total_bytes) const;

 private:
  explicit PreparedDataset(Dataset dataset);
  PreparedDataset(Dataset dataset, const PreparedDataset& parent, int64_t version,
                  AggregateEpochs epochs);

  Dataset dataset_;
  std::shared_ptr<SharedAggregateCache> cache_;
  std::shared_ptr<SharedFittedModelCache> model_cache_;
  int64_t version_ = 1;
  std::shared_ptr<const AggregateEpochs> epochs_;
};

/// One registered name's version state, for /healthz.
struct DatasetVersionSummary {
  std::string name;
  int64_t head = 1;
  std::vector<int64_t> live;  // ascending version ids still resolvable
};

/// A thread-safe, name-keyed table of prepared dataset version chains.
/// Handles returned by Add/Find are independent of the registry's lifetime:
/// Remove() only drops the name — sessions holding a handle keep their
/// version alive.
class DatasetRegistry {
 public:
  DatasetRegistry() = default;

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Prepares `dataset` and registers it under `name`. InvalidArgument on an
  /// empty or duplicate name or an undrillable/empty dataset.
  Result<DatasetHandle> Add(std::string name, Dataset dataset);

  /// Registers an already prepared dataset under `name` (for sharing one
  /// PreparedDataset across registries or with direct sessions).
  Result<DatasetHandle> AddPrepared(std::string name, DatasetHandle dataset);

  /// Resolves a name to a handle. A plain name resolves to its chain's HEAD
  /// version; "name@vK" pins live version K exactly (a dataset literally
  /// registered under a name containing "@v" still wins — exact match is
  /// tried first). NotFound for unknown names and for versions already
  /// retired by GC.
  Result<DatasetHandle> Find(const std::string& name) const;

  /// Registers `child` (built by PreparedDataset::PrepareVersion /
  /// version/append.h) as the new head of `name`'s chain, then retires every
  /// non-head ancestor no session pins any more. `invalidated_entries` — the
  /// count of (hierarchy, depth) cache entries the append dirtied — feeds the
  /// cache_invalidations() counter. Returns the number of versions retired.
  /// NotFound for an unknown name; FailedPrecondition when `child` does not
  /// succeed the current head (a concurrent append won the race).
  Result<int64_t> AppendVersion(const std::string& name, DatasetHandle child,
                                int64_t invalidated_entries);

  /// Re-runs the unpinned-ancestor sweep for `name` and returns how many
  /// versions it retired (0 when nothing is collectible; idempotent). Needed
  /// because AppendVersion's inline GC runs while the caller still holds
  /// handles it is about to drop — e.g. the serving tier swaps its default
  /// session off the parent only AFTER publishing the child, so the parent
  /// only becomes collectible once that swap completes. NotFound for an
  /// unknown name.
  Result<int64_t> CollectGarbage(const std::string& name);

  /// Drops the name — the WHOLE version chain — from the registry; live
  /// handles are unaffected. NotFound when the name is not registered.
  Status Remove(const std::string& name);

  bool Contains(const std::string& name) const;

  /// Registered names (base names, not "@vK" forms), sorted.
  std::vector<std::string> names() const;

  /// Per-name version-chain state, sorted by name — /healthz's "versions".
  std::vector<DatasetVersionSummary> VersionSummaries() const;

  /// Monotonic counters: versions retired by AppendVersion's GC, and cache
  /// entries invalidated (dirtied) across every append.
  int64_t versions_gc() const { return versions_gc_.load(std::memory_order_relaxed); }
  int64_t cache_invalidations() const {
    return cache_invalidations_.load(std::memory_order_relaxed);
  }

  int64_t size() const;

 private:
  /// One name's live versions. Invariant: non-empty; head is the largest key.
  struct Chain {
    std::map<int64_t, DatasetHandle> versions;
    int64_t head = 1;
  };

  /// Retires unpinned non-head versions of `chain` (caller holds mu_
  /// exclusively) and bumps versions_gc_. Returns the count retired.
  int64_t GcChainLocked(Chain& chain);

  mutable std::shared_mutex mu_;
  std::map<std::string, Chain> chains_;
  std::atomic<int64_t> versions_gc_{0};
  std::atomic<int64_t> cache_invalidations_{0};
};

}  // namespace reptile

#endif  // REPTILE_API_REGISTRY_H_
