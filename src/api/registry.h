// The dataset half of the dataset/session split: shared, immutable, built
// once.
//
// Reptile's interactive loop (paper Section 2.1) is per-analyst, but the
// data every analyst explores is the same: N sessions over one hierarchical
// dataset should pay 1x — not Nx — for the table, the hierarchy metadata,
// and the (hierarchy, depth)-keyed f-tree / decomposed-aggregate entries.
//
//   PreparedDataset  — an immutable Dataset plus its process-shared
//                      aggregate cache (factor/agg_cache.h). Built once;
//                      every Session opened over it shares both.
//   DatasetHandle    — std::shared_ptr<const PreparedDataset>. Sessions and
//                      callers hold handles, so a dataset stays alive while
//                      anyone uses it even after the registry drops it.
//   DatasetRegistry  — a thread-safe, name-keyed table of handles: the
//                      server's POST /v1/datasets target.
//
// Per-session state stays in Session (api/session.h): committed drill
// depths, registered auxiliaries, random-effect exclusions. Committing a
// drill-down copies nothing — it bumps the session's depth vector while the
// aggregates stay shared ("copy-on-drill").

#ifndef REPTILE_API_REGISTRY_H_
#define REPTILE_API_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/status.h"
#include "data/dataset.h"

namespace reptile {

class SharedAggregateCache;    // factor/agg_cache.h (internal)
class SharedFittedModelCache;  // factor/model_cache.h (internal)

class PreparedDataset;
using DatasetHandle = std::shared_ptr<const PreparedDataset>;

/// An immutable dataset prepared for sharing: the base relation, hierarchy
/// metadata, and the cross-session aggregate cache. Thread-safe: everything
/// reachable from a const PreparedDataset is either immutable or internally
/// synchronized (the cache).
class PreparedDataset {
 public:
  /// Validates and wraps `dataset`. InvalidArgument when the dataset has no
  /// hierarchy to drill into or no rows.
  static Result<DatasetHandle> Prepare(Dataset dataset);

  ~PreparedDataset();

  PreparedDataset(const PreparedDataset&) = delete;
  PreparedDataset& operator=(const PreparedDataset&) = delete;

  const Dataset& data() const { return dataset_; }
  const Table& table() const { return dataset_.table(); }

  /// The shared aggregate cache (internally synchronized; mutable through a
  /// const handle by design — caching is not a logical mutation).
  SharedAggregateCache& cache() const { return *cache_; }

  /// The shared fitted-model cache (factor/model_cache.h): every session
  /// opened over this dataset consults it before training, so warm sessions
  /// perform zero fits. Internally synchronized, like cache().
  SharedFittedModelCache& model_cache() const { return *model_cache_; }

  /// Cache observability for tests, benchmarks and capacity monitoring.
  int64_t cache_entries() const;
  int64_t cache_hits() const;
  int64_t cache_misses() const;
  int64_t cache_bytes() const;
  int64_t cache_evictions() const;
  int64_t model_cache_entries() const;
  int64_t model_cache_hits() const;
  int64_t model_cache_misses() const;
  int64_t model_cache_bytes() const;
  int64_t model_cache_evictions() const;
  /// Model fits actually performed through the cache — across every session
  /// over this dataset; the single-flight contract makes this "one per
  /// distinct key", however many sessions raced.
  int64_t model_cache_fits() const;

  /// Splits `total_bytes` evenly between the aggregate and model caches
  /// (0 = unlimited for both). Const for the same reason cache() is: a
  /// budget changes retention, not the logical dataset.
  void SetCacheBudgetBytes(size_t total_bytes) const;

 private:
  explicit PreparedDataset(Dataset dataset);

  Dataset dataset_;
  std::shared_ptr<SharedAggregateCache> cache_;
  std::shared_ptr<SharedFittedModelCache> model_cache_;
};

/// A thread-safe, name-keyed table of prepared datasets. Handles returned by
/// Add/Find are independent of the registry's lifetime: Remove() only drops
/// the name — sessions holding the handle keep the dataset alive.
class DatasetRegistry {
 public:
  DatasetRegistry() = default;

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Prepares `dataset` and registers it under `name`. InvalidArgument on an
  /// empty or duplicate name or an undrillable/empty dataset.
  Result<DatasetHandle> Add(std::string name, Dataset dataset);

  /// Registers an already prepared dataset under `name` (for sharing one
  /// PreparedDataset across registries or with direct sessions).
  Result<DatasetHandle> AddPrepared(std::string name, DatasetHandle dataset);

  /// NotFound when no dataset carries the name.
  Result<DatasetHandle> Find(const std::string& name) const;

  /// Drops the name from the registry; live handles are unaffected.
  /// NotFound when the name is not registered.
  Status Remove(const std::string& name);

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  int64_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, DatasetHandle> datasets_;
};

}  // namespace reptile

#endif  // REPTILE_API_REGISTRY_H_
