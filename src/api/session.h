// reptile::Session — the public facade over the engine (paper Section 2.1's
// interactive loop): load a hierarchical dataset, file complaints by column
// name, receive ranked drill-down recommendations, commit one, repeat.
//
// Contract:
//  * All user-input failure paths return Status / Result<T>; the session
//    never aborts on bad input (internal invariants still REPTILE_CHECK).
//  * Requests are name-based (api/request.h) and responses are plain
//    serializable data (api/response.h); engine internals never cross the
//    boundary.
//  * RecommendAll batches many complaints over one pass of the drill-down
//    caches: complaints sharing a hierarchy extension reuse the extended
//    feature matrix and each trained primitive model. Results are identical
//    to issuing the complaints one at a time.
//
// Ownership (the dataset/session split, api/registry.h): a Session is a
// LIGHTWEIGHT VIEW over a shared immutable PreparedDataset. It owns only the
// per-analyst state — committed drill depths, registered auxiliaries,
// random-effect exclusions — while the table, hierarchies, f-trees and
// (hierarchy, depth) aggregate entries live in the handle and are shared by
// every session opened over it. Committing a drill-down copies nothing; two
// sessions at the same drill state read the very same cached aggregates.
// Session::Create remains as a convenience that prepares a private dataset
// and opens the one session over it.

#ifndef REPTILE_API_SESSION_H_
#define REPTILE_API_SESSION_H_

#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/request.h"
#include "api/response.h"
#include "api/status.h"
#include "data/csv.h"
#include "data/dataset.h"

namespace reptile {

/// How to load a session dataset straight from a CSV file.
struct CsvDatasetRequest {
  std::string path;
  CsvSpec csv;                              // column typing
  std::vector<HierarchySchema> hierarchies;  // hierarchy metadata
};

class Session {
 public:
  /// Opens a per-analyst session over a shared prepared dataset (from a
  /// DatasetRegistry or PreparedDataset::Prepare). The session holds the
  /// handle, so the dataset outlives any registry eviction.
  static Result<Session> Open(DatasetHandle dataset, const ExploreRequest& options = {});

  /// Creates a session over an exclusively owned dataset: prepares the
  /// dataset privately and opens the one session over it.
  static Result<Session> Create(Dataset dataset, const ExploreRequest& options = {});

  /// Validates the hierarchy metadata against the table, then creates the
  /// session. All metadata errors come back as Status.
  static Result<Session> Create(Table table, std::vector<HierarchySchema> hierarchies,
                                const ExploreRequest& options = {});

  /// Loads the base relation from CSV (precise parse errors, see
  /// data/csv.h), then creates the session.
  static Result<Session> FromCsv(const CsvDatasetRequest& request,
                                 const ExploreRequest& options = {});

  Session(Session&& other) noexcept;
  Session& operator=(Session&& other) noexcept;
  ~Session();

  /// Registers an auxiliary dataset (the session copies and owns the table).
  Status RegisterAuxiliary(AuxiliaryRequest request);

  /// Excludes a feature (attribute or auxiliary name) from the random-effect
  /// matrix Z (paper §3.3.4); only meaningful with random_effects = "all".
  Status ExcludeFromRandomEffects(const std::string& feature_name);

  /// Computes an aggregate view — the object the user inspects before
  /// complaining (paper §3.1).
  Result<ViewResponse> View(const ViewRequest& request) const;

  /// Evaluates one complaint against every drillable hierarchy and returns
  /// the ranked drill-down groups. FailedPrecondition when every hierarchy
  /// is exhausted. `options` holds per-call overrides (thread count, top-k)
  /// that apply to this invocation only.
  Result<ExploreResponse> Recommend(const ComplaintSpec& complaint,
                                    const BatchOptions& options = {});

  /// Batched entry point: plans all complaints over one pass of the
  /// drill-down caches, training each shared (hierarchy, measure, primitive)
  /// model at most once, with plan assembly, model fits, and per-complaint
  /// ranking fanned out across the session's worker threads
  /// (ExploreRequest::Threads at construction, BatchOptions::Threads per
  /// call). responses[i] answers complaints[i] exactly as a sequential
  /// Recommend(complaints[i]) would, at any thread count.
  ///
  /// Sessions are not thread-safe: issue one call at a time per session;
  /// parallelism happens inside the call. DIFFERENT sessions over one shared
  /// dataset may call concurrently — the shared cache is internally
  /// synchronized.
  Result<BatchExploreResponse> RecommendAll(std::span<const ComplaintSpec> complaints,
                                            const BatchOptions& options = {});
  Result<BatchExploreResponse> RecommendAll(std::initializer_list<ComplaintSpec> complaints,
                                            const BatchOptions& options = {});

  /// Commits a drill-down on the named hierarchy (schema name, e.g. "geo",
  /// or any of its attribute names, e.g. "village"). NotFound for unknown
  /// names, FailedPrecondition when the hierarchy is already fully drilled.
  /// Per-session: other sessions over the same dataset are unaffected.
  Status Commit(const std::string& hierarchy);

  /// Current drill depth of the named hierarchy.
  Result<int> DrillDepth(const std::string& hierarchy) const;

  /// True when the named hierarchy has at least one undrilled attribute.
  Result<bool> CanDrill(const std::string& hierarchy) const;

  /// Committed drill depth per hierarchy (schema name -> depth): the
  /// session's persistable drill state, restorable via RestoreCommitted —
  /// the snapshot the server's GET /v1/sessions/{id} serves.
  std::map<std::string, int> CommittedDepths() const;

  /// Re-commits drill-downs until every named hierarchy reaches its target
  /// depth (session persist/restore and POST /v1/sessions {"committed"}).
  /// NotFound for unknown hierarchy names, InvalidArgument for a negative or
  /// too-deep target, FailedPrecondition when a hierarchy is already past
  /// the target (drill-downs cannot be undone).
  Status RestoreCommitted(const std::map<std::string, int>& committed);

  /// The shared prepared dataset this session reads. Returning the handle
  /// (not a reference into the session) means the result stays valid across
  /// session moves and after the session is destroyed or the registry drops
  /// the dataset.
  DatasetHandle dataset() const;

  /// Total primitive-model fits THIS session actually performed so far. A
  /// session warmed by the shared fitted-model cache — its own earlier calls
  /// or other sessions over the same dataset trained the models — performs
  /// zero: the zero-fit warm-session counter.
  int64_t models_trained() const;

  /// Fits this session skipped because the shared fitted-model cache already
  /// held the model.
  int64_t fit_cache_hits() const;

  /// Aggregate (f-tree + local aggregates) builds this session performed.
  /// A session whose shared cache was already warmed by another session
  /// performs zero — the cross-session sharing counter.
  int64_t aggregate_builds() const;

 private:
  Session();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace reptile

#endif  // REPTILE_API_SESSION_H_
