// reptile::Session — the public facade over the engine (paper Section 2.1's
// interactive loop): load a hierarchical dataset, file complaints by column
// name, receive ranked drill-down recommendations, commit one, repeat.
//
// Contract:
//  * All user-input failure paths return Status / Result<T>; the session
//    never aborts on bad input (internal invariants still REPTILE_CHECK).
//  * Requests are name-based (api/request.h) and responses are plain
//    serializable data (api/response.h); engine internals never cross the
//    boundary.
//  * RecommendAll batches many complaints over one pass of the drill-down
//    caches: complaints sharing a hierarchy extension reuse the extended
//    feature matrix and each trained primitive model. Results are identical
//    to issuing the complaints one at a time.

#ifndef REPTILE_API_SESSION_H_
#define REPTILE_API_SESSION_H_

#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/request.h"
#include "api/response.h"
#include "api/status.h"
#include "data/csv.h"
#include "data/dataset.h"

namespace reptile {

/// How to load a session dataset straight from a CSV file.
struct CsvDatasetRequest {
  std::string path;
  CsvSpec csv;                              // column typing
  std::vector<HierarchySchema> hierarchies;  // hierarchy metadata
};

class Session {
 public:
  /// Creates a session over an already-constructed dataset.
  static Result<Session> Create(Dataset dataset, const ExploreRequest& options = {});

  /// Validates the hierarchy metadata against the table, then creates the
  /// session. All metadata errors come back as Status.
  static Result<Session> Create(Table table, std::vector<HierarchySchema> hierarchies,
                                const ExploreRequest& options = {});

  /// Loads the base relation from CSV (precise parse errors, see
  /// data/csv.h), then creates the session.
  static Result<Session> FromCsv(const CsvDatasetRequest& request,
                                 const ExploreRequest& options = {});

  Session(Session&& other) noexcept;
  Session& operator=(Session&& other) noexcept;
  ~Session();

  /// Registers an auxiliary dataset (the session copies and owns the table).
  Status RegisterAuxiliary(AuxiliaryRequest request);

  /// Excludes a feature (attribute or auxiliary name) from the random-effect
  /// matrix Z (paper §3.3.4); only meaningful with random_effects = "all".
  Status ExcludeFromRandomEffects(const std::string& feature_name);

  /// Computes an aggregate view — the object the user inspects before
  /// complaining (paper §3.1).
  Result<ViewResponse> View(const ViewRequest& request) const;

  /// Evaluates one complaint against every drillable hierarchy and returns
  /// the ranked drill-down groups. FailedPrecondition when every hierarchy
  /// is exhausted. `options` holds per-call overrides (thread count, top-k)
  /// that apply to this invocation only.
  Result<ExploreResponse> Recommend(const ComplaintSpec& complaint,
                                    const BatchOptions& options = {});

  /// Batched entry point: plans all complaints over one pass of the
  /// drill-down caches, training each shared (hierarchy, measure, primitive)
  /// model at most once, with plan assembly, model fits, and per-complaint
  /// ranking fanned out across the session's worker threads
  /// (ExploreRequest::Threads at construction, BatchOptions::Threads per
  /// call). responses[i] answers complaints[i] exactly as a sequential
  /// Recommend(complaints[i]) would, at any thread count.
  ///
  /// Sessions are not thread-safe: issue one call at a time per session;
  /// parallelism happens inside the call.
  Result<BatchExploreResponse> RecommendAll(std::span<const ComplaintSpec> complaints,
                                            const BatchOptions& options = {});
  Result<BatchExploreResponse> RecommendAll(std::initializer_list<ComplaintSpec> complaints,
                                            const BatchOptions& options = {});

  /// Commits a drill-down on the named hierarchy (schema name, e.g. "geo",
  /// or any of its attribute names, e.g. "village"). NotFound for unknown
  /// names, FailedPrecondition when the hierarchy is already fully drilled.
  Status Commit(const std::string& hierarchy);

  /// Current drill depth of the named hierarchy.
  Result<int> DrillDepth(const std::string& hierarchy) const;

  /// True when the named hierarchy has at least one undrilled attribute.
  Result<bool> CanDrill(const std::string& hierarchy) const;

  const Dataset& dataset() const;

  /// Total primitive-model fits performed so far (for tests and benchmarks
  /// of the batched path).
  int64_t models_trained() const;

 private:
  Session();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace reptile

#endif  // REPTILE_API_SESSION_H_
