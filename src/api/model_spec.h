// reptile::ModelSpec — the one per-call description of HOW a recommendation's
// models are trained.
//
// Before this type, model configuration was smeared across ad-hoc knobs:
// EngineOptions::backend / ::model / ::em, ExploreRequest's string fields,
// and BatchOptions::RepairAlso. A ModelSpec gathers the whole surface —
// model family, training backend, EM iteration/tolerance caps, the extra
// primitive statistics frepair restores, and the fitted-model-cache opt-out
// — into a single value that
//
//   * configures a session (ExploreRequest::Model(ModelSpec)),
//   * overrides one call (BatchOptions::Model(ModelSpec)) — a per-call spec
//     REPLACES the session's model configuration wholesale; omitted fields
//     take the documented defaults below, not the session's values,
//   * travels the wire as the request JSON `options.model` object,
//   * is echoed back in every ExploreResponse, so clients see what ran, and
//   * canonicalizes into the shared fitted-model cache key
//     (factor/model_cache.h), so two sessions asking for the same model of
//     the same data share one fit.
//
// Validation is deferred to the plan stage (Session::RecommendAll /
// Engine::ValidateModelSpec) and reported as Status — constructing an
// invalid spec never aborts.

#ifndef REPTILE_API_MODEL_SPEC_H_
#define REPTILE_API_MODEL_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "api/status.h"

namespace reptile {

struct ModelSpec {
  /// Model family used for frepair (paper Section 3.2): the multi-level
  /// mixed-effects model, or the plain linear baseline.
  enum class Kind { kMultiLevel, kLinear };

  /// Training backend (Section 5.1.4): factorised EM when every feature is
  /// single-attribute (the paper's contribution), dense materialisation (the
  /// Matlab/LAPACK-style baseline), or pick automatically.
  enum class Backend { kAuto, kFactorized, kDense };

  /// Which columns get random effects (paper Section 3.2's Z design matrix):
  /// only the intercept (the default), or every non-excluded feature column.
  /// kDefault inherits the session's engine-level policy
  /// (EngineOptions::random_effects / ExploreRequest::RandomEffects) — the
  /// one ModelSpec field that does NOT reset to a fixed default on a
  /// per-call override, because the policy predates ModelSpec and sessions
  /// configure it separately. The engine canonicalizes kDefault away in
  /// EffectiveModelSpec(), so echoed/cached specs always carry a concrete
  /// policy.
  enum class RandomPolicy { kDefault, kIntercepts, kAll };

  Kind kind = Kind::kMultiLevel;
  Backend backend = Backend::kAuto;
  RandomPolicy random_effects = RandomPolicy::kDefault;
  // EM caps: at most `em_iterations` iterations (the paper's default 20),
  // stopping early once the max |Δbeta| of an iteration falls below
  // `em_tolerance` (0 = run every iteration, the bit-reproducible default).
  int em_iterations = 20;
  double em_tolerance = 0.0;
  // Consult/fill the process-shared fitted-model cache hanging off the
  // session's PreparedDataset. Opting out forces every call to retrain.
  bool fit_cache = true;
  // Extra statistics frepair restores besides the complaint's own primitives
  // (Appendix N), e.g. repairing total votes alongside the vote percentage.
  std::vector<AggFn> extra_repair_stats;

  // Fluent builders, chainable: ModelSpec().Dense().EmIterations(40).
  ModelSpec& With(Kind k);
  ModelSpec& With(Backend b);
  ModelSpec& MultiLevel() { return With(Kind::kMultiLevel); }
  ModelSpec& Linear() { return With(Kind::kLinear); }
  ModelSpec& Auto() { return With(Backend::kAuto); }
  ModelSpec& Factorized() { return With(Backend::kFactorized); }
  ModelSpec& Dense() { return With(Backend::kDense); }
  ModelSpec& With(RandomPolicy p);
  ModelSpec& InterceptRandomEffects() { return With(RandomPolicy::kIntercepts); }
  ModelSpec& AllRandomEffects() { return With(RandomPolicy::kAll); }
  ModelSpec& EmIterations(int iters);
  ModelSpec& EmTolerance(double tolerance);
  ModelSpec& FitCache(bool use);
  ModelSpec& RepairAlso(AggFn statistic);

  /// Range/finiteness checks as Status (never aborts): em_iterations must be
  /// positive, em_tolerance finite and non-negative.
  Status Validate() const;

  /// Canonical fragment of the shared fitted-model cache key: every field
  /// that changes a single primitive's fit (kind, backend, random-effect
  /// policy, EM caps). extra_repair_stats only widens WHICH primitives are
  /// fitted — each primitive's model is identical either way — and fit_cache
  /// only gates cache use, so neither partitions the key. The engine always
  /// keys on the canonicalized (EffectiveModelSpec) spec, so the policy
  /// token is concrete, never "default".
  std::string CacheKey() const;

  bool operator==(const ModelSpec&) const = default;

  static const char* KindName(Kind kind);
  static const char* BackendName(Backend backend);
  static const char* RandomPolicyName(RandomPolicy policy);
  /// Inverse of the Name functions ("multilevel"/"linear",
  /// "auto"/"factorized"/"dense", "intercepts"/"all"); nullopt for unknown
  /// names. RandomPolicy has no wire spelling for kDefault — omitting the
  /// field is how a request inherits the session policy.
  static std::optional<Kind> ParseKind(const std::string& name);
  static std::optional<Backend> ParseBackend(const std::string& name);
  static std::optional<RandomPolicy> ParseRandomPolicy(const std::string& name);
};

}  // namespace reptile

#endif  // REPTILE_API_MODEL_SPEC_H_
