// Binary snapshots of a PreparedDataset (warm restarts).
//
// A PreparedDataset is expensive to assemble: CSV parsing and dictionary
// encoding, per-(hierarchy, depth) f-tree and local-aggregate builds, and EM
// model training. All of it is a pure function of immutable inputs, so it
// can be persisted once and reloaded in milliseconds — a restarted server
// answers its first request byte-identically to the process that wrote the
// snapshot, with zero aggregate builds and zero fits.
//
// Serialized sections (data/snapshot.h container, format version 1):
//
//   "schema"   — hierarchy schemas + table column metadata + row count.
//   "dict:<c>" — the value dictionary of dimension column c.
//   "col:<c>"  — column c's data: dictionary codes or measure doubles.
//   "ftrees"   — the aggregate cache's (hierarchy, depth) entries, each as
//                its f-tree's per-level value/parent vectors only; the
//                derived vectors and the LocalAggregates tables are
//                deterministically recomputed at load (and validated —
//                FTree::FromLevels rejects corrupt structure as Status).
//   "models"   — completed fitted-model cache entries: cache key, fitted
//                vector, realized fit metadata. Keys beginning with '#'
//                (process-unique feature partitions minted for un-hashable
//                custom features) are skipped; content-hashed partitions
//                ("h:<hash>", from auxiliary registrations and random-effect
//                exclusions) persist and warm equal registrations in future
//                processes.
//
// Loading never trusts the file: the container layer checks magic, version
// and per-section CRCs; this layer re-validates structure (dictionary code
// ranges, column lengths, f-tree invariants, key coordinates) and returns
// kParseError instead of undefined behavior on anything inconsistent.
//
// Version chains (version/append.h): snapshotting an appended head persists
// the FLATTENED dataset — its table already contains every ancestor's rows,
// and the cache walks filter to the head's own entries (its epoch view of
// the aggregate cache; its "|v:"-suffixed model keys, suffix stripped on
// write). Version LINEAGE is deliberately not persisted: a restore
// re-prepares the data as version 1 of a fresh chain, byte-identical in
// every response, with retired ancestors unrecoverable by design.

#ifndef REPTILE_API_DATASET_SNAPSHOT_H_
#define REPTILE_API_DATASET_SNAPSHOT_H_

#include <string>

#include "api/registry.h"
#include "api/status.h"

namespace reptile {

/// Writes `dataset` — table, hierarchies, and the current contents of its
/// aggregate and fitted-model caches — to `path`. kIoError when the file
/// cannot be written.
Status SavePreparedDataset(const PreparedDataset& dataset, const std::string& path);

/// Reads a snapshot back into a fresh PreparedDataset whose caches are
/// pre-warmed with the persisted aggregates and models. kIoError when the
/// file cannot be read, kParseError when its contents are corrupt or
/// version-incompatible.
Result<DatasetHandle> LoadPreparedDataset(const std::string& path);

}  // namespace reptile

#endif  // REPTILE_API_DATASET_SNAPSHOT_H_
