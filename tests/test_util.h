// Shared helpers for the reptile test suite: random factorised matrices with
// feature columns, and naive reference implementations to compare against.

#ifndef REPTILE_TESTS_TEST_UTIL_H_
#define REPTILE_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "factor/decomposed.h"
#include "factor/frep.h"
#include "factor/ftree.h"

namespace reptile {
namespace testutil {

/// Owns trees + locals + the matrix view over them.
struct RandomMatrix {
  std::vector<std::unique_ptr<FTree>> trees;
  std::vector<std::unique_ptr<LocalAggregates>> locals;
  FactorizedMatrix fm;

  std::vector<const LocalAggregates*> LocalPtrs() const {
    std::vector<const LocalAggregates*> out;
    for (const auto& l : locals) out.push_back(l.get());
    return out;
  }
};

/// Builds a random forest (intercept first) with random single-attribute
/// feature columns on every attribute (including the intercept), optionally
/// plus `num_multi` random multi-attribute columns.
inline RandomMatrix MakeRandomMatrix(Rng* rng, int num_hierarchies, int max_depth = 3,
                                     int max_card = 4, int num_multi = 0) {
  RandomMatrix out;
  out.trees.push_back(std::make_unique<FTree>(FTree::Singleton()));
  for (int h = 0; h < num_hierarchies; ++h) {
    int depth = static_cast<int>(rng->UniformInt(1, max_depth));
    int paths = static_cast<int>(rng->UniformInt(1, 2 * max_card));
    std::vector<std::vector<int32_t>> ps;
    for (int p = 0; p < paths; ++p) {
      std::vector<int32_t> path(depth);
      for (int l = 0; l < depth; ++l) {
        path[l] = static_cast<int32_t>(rng->UniformInt(0, max_card - 1));
      }
      ps.push_back(path);
    }
    out.trees.push_back(std::make_unique<FTree>(FTree::FromPaths(ps, depth)));
  }
  for (const auto& t : out.trees) out.fm.AddTree(t.get());
  for (const auto& t : out.trees) {
    out.locals.push_back(std::make_unique<LocalAggregates>(t.get()));
  }

  // One feature column per attribute with random value maps.
  for (int flat = 0; flat < out.fm.num_attrs(); ++flat) {
    AttrId attr = out.fm.FlatAttr(flat);
    FeatureColumn col;
    col.name = "f" + std::to_string(flat);
    col.attr = attr;
    col.value_map.resize(static_cast<size_t>(max_card) + 2);
    for (double& v : col.value_map) v = rng->Normal(0.0, 1.0);
    out.fm.AddColumn(std::move(col));
  }
  // Multi-attribute columns over random attribute pairs.
  for (int m = 0; m < num_multi && out.fm.num_attrs() >= 2; ++m) {
    FeatureColumn col;
    col.name = "multi" + std::to_string(m);
    col.is_multi = true;
    int a = static_cast<int>(rng->UniformInt(0, out.fm.num_attrs() - 1));
    int b = static_cast<int>(rng->UniformInt(0, out.fm.num_attrs() - 1));
    if (a == b) b = (b + 1) % out.fm.num_attrs();
    if (a > b) std::swap(a, b);
    col.attrs = {out.fm.FlatAttr(a), out.fm.FlatAttr(b)};
    for (int32_t va = 0; va < max_card + 1; ++va) {
      for (int32_t vb = 0; vb < max_card + 1; ++vb) {
        if (rng->Bernoulli(0.7)) col.multi_map[{va, vb}] = rng->Normal(0.0, 1.0);
      }
    }
    col.missing_value = rng->Normal(0.0, 0.3);
    out.fm.AddColumn(std::move(col));
  }
  return out;
}

/// Random dense vector of length n.
inline std::vector<double> RandomVector(Rng* rng, int64_t n) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng->Normal(0.0, 1.0);
  return v;
}

}  // namespace testutil
}  // namespace reptile

#endif  // REPTILE_TESTS_TEST_UTIL_H_
