// Tests for model/multilevel: EM behaviour on synthetic mixed-effects data
// and the exact equivalence of the factorised and dense backends.

#include <cmath>

#include "baselines/naive_trainer.h"
#include "common/rng.h"
#include "fmatrix/materialize.h"
#include "gtest/gtest.h"
#include "model/multilevel.h"
#include "test_util.h"

namespace reptile {
namespace {

// Synthetic mixed-effects data: G clusters of size n_c, y = b0 + b1*x +
// u_g + eps with u_g ~ N(0, tau2).
struct MixedData {
  Matrix x;
  std::vector<double> y;
  std::vector<int64_t> cluster_begin;
  std::vector<double> u;  // true cluster effects
};

MixedData MakeMixedData(Rng* rng, int64_t clusters, int64_t per_cluster, double tau,
                        double noise) {
  MixedData data;
  int64_t n = clusters * per_cluster;
  data.x = Matrix(static_cast<size_t>(n), 2);
  data.y.resize(static_cast<size_t>(n));
  for (int64_t g = 0; g < clusters; ++g) {
    data.cluster_begin.push_back(g * per_cluster);
    data.u.push_back(rng->Normal(0.0, tau));
  }
  data.cluster_begin.push_back(n);
  for (int64_t g = 0; g < clusters; ++g) {
    for (int64_t i = 0; i < per_cluster; ++i) {
      int64_t row = g * per_cluster + i;
      double xv = rng->Normal(0.0, 1.0);
      data.x(static_cast<size_t>(row), 0) = 1.0;
      data.x(static_cast<size_t>(row), 1) = xv;
      data.y[static_cast<size_t>(row)] =
          1.0 + 2.0 * xv + data.u[static_cast<size_t>(g)] + rng->Normal(0.0, noise);
    }
  }
  return data;
}

TEST(MultiLevelDense, RecoversFixedEffects) {
  Rng rng(3);
  MixedData data = MakeMixedData(&rng, 40, 25, /*tau=*/1.5, /*noise=*/0.5);
  DenseEmBackend backend(&data.x, data.cluster_begin, /*z_cols=*/{0});
  MultiLevelModel model = TrainMultiLevel(&backend, data.y);
  EXPECT_NEAR(model.beta[0], 1.0, 0.5);
  EXPECT_NEAR(model.beta[1], 2.0, 0.05);
  // Residual variance close to noise^2, not inflated by the cluster effects.
  EXPECT_NEAR(model.sigma2, 0.25, 0.15);
  // Random-effect variance close to tau^2.
  EXPECT_NEAR(model.sigma_b(0, 0), 2.25, 1.2);
}

TEST(MultiLevelDense, RandomEffectsTrackClusterOffsets) {
  Rng rng(9);
  MixedData data = MakeMixedData(&rng, 30, 40, /*tau=*/2.0, /*noise=*/0.3);
  DenseEmBackend backend(&data.x, data.cluster_begin, {0});
  MultiLevelModel model = TrainMultiLevel(&backend, data.y);
  // Posterior cluster intercepts should correlate strongly with the truth.
  double corr_num = 0.0, su = 0.0, sb = 0.0;
  for (size_t g = 0; g < data.u.size(); ++g) {
    corr_num += data.u[g] * model.b(g, 0);
    su += data.u[g] * data.u[g];
    sb += model.b(g, 0) * model.b(g, 0);
  }
  double corr = corr_num / std::sqrt(su * sb);
  EXPECT_GT(corr, 0.9);
}

TEST(MultiLevelDense, ShrinksTowardPooledWithNoClusterEffect) {
  Rng rng(12);
  MixedData data = MakeMixedData(&rng, 30, 20, /*tau=*/0.0, /*noise=*/1.0);
  DenseEmBackend backend(&data.x, data.cluster_begin, {0});
  MultiLevelModel model = TrainMultiLevel(&backend, data.y);
  // With no true cluster variation the estimated random effects collapse.
  double max_b = 0.0;
  for (size_t g = 0; g + 1 < data.cluster_begin.size(); ++g) {
    max_b = std::max(max_b, std::fabs(model.b(g, 0)));
  }
  EXPECT_LT(max_b, 0.6);
  EXPECT_LT(model.sigma_b(0, 0), 0.3);
}

TEST(MultiLevelDense, FittedImprovesOverFixedOnly) {
  Rng rng(21);
  MixedData data = MakeMixedData(&rng, 25, 30, /*tau=*/2.0, /*noise=*/0.3);
  DenseEmBackend backend(&data.x, data.cluster_begin, {0});
  MultiLevelModel model = TrainMultiLevel(&backend, data.y);
  double rss_fitted = 0.0, rss_fixed = 0.0;
  std::vector<double> xb = backend.XTimes(model.beta);
  for (size_t i = 0; i < data.y.size(); ++i) {
    rss_fitted += (data.y[i] - model.fitted[i]) * (data.y[i] - model.fitted[i]);
    rss_fixed += (data.y[i] - xb[i]) * (data.y[i] - xb[i]);
  }
  EXPECT_LT(rss_fitted, 0.3 * rss_fixed);
}

// Equivalence: the factorised and dense backends run the same EM and must
// produce identical estimates on identical inputs.
class BackendEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalenceTest, FactorizedMatchesDense) {
  Rng rng(GetParam());
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  DecomposedAggregates agg(&rm.fm, rm.LocalPtrs());
  std::vector<double> y = testutil::RandomVector(&rng, rm.fm.num_rows());
  // Random-effect columns: intercept plus a random subset.
  std::vector<int> z_cols = {0};
  for (int c = 1; c < rm.fm.num_cols(); ++c) {
    if (rng.Bernoulli(0.5)) z_cols.push_back(c);
  }
  MultiLevelOptions options;
  options.em_iters = 8;

  FactorizedEmBackend fbackend(&rm.fm, &agg, z_cols);
  MultiLevelModel fmodel = TrainMultiLevel(&fbackend, y, options);

  Matrix x;
  MultiLevelModel dmodel = TrainMultiLevelDense(rm.fm, y, z_cols, options, &x);

  ASSERT_EQ(fmodel.beta.size(), dmodel.beta.size());
  for (size_t c = 0; c < fmodel.beta.size(); ++c) {
    EXPECT_NEAR(fmodel.beta[c], dmodel.beta[c], 1e-6) << "beta " << c;
  }
  EXPECT_NEAR(fmodel.sigma2, dmodel.sigma2, 1e-6);
  EXPECT_TRUE(fmodel.sigma_b.ApproxEquals(dmodel.sigma_b, 1e-6));
  ASSERT_EQ(fmodel.fitted.size(), dmodel.fitted.size());
  for (size_t i = 0; i < fmodel.fitted.size(); ++i) {
    EXPECT_NEAR(fmodel.fitted[i], dmodel.fitted[i], 1e-6) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceTest, ::testing::Range(0, 10));

TEST(ClusterBeginsOf, MatchesClusterStructure) {
  Rng rng(2);
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  std::vector<int64_t> begins = ClusterBeginsOf(rm.fm);
  ASSERT_EQ(static_cast<int64_t>(begins.size()), rm.fm.num_clusters() + 1);
  EXPECT_EQ(begins.front(), 0);
  EXPECT_EQ(begins.back(), rm.fm.num_rows());
  for (size_t g = 0; g + 1 < begins.size(); ++g) {
    for (int64_t row = begins[g]; row < begins[g + 1]; ++row) {
      EXPECT_EQ(rm.fm.ClusterOfRow(row), static_cast<int64_t>(g));
    }
  }
}

}  // namespace
}  // namespace reptile
