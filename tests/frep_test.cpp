// Tests for factor/frep: layout, row encoding/decoding, cluster structure,
// table-row mapping and the y-vector builder.

#include "factor/frep.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

// Intercept tree + time tree (2 leaves) + geo tree (3 leaves under 2
// districts): the running example of Figure 3.
struct Fixture {
  FTree intercept = FTree::Singleton();
  FTree time = FTree::FromPaths({{0}, {1}}, 1);
  FTree geo = FTree::FromPaths({{0, 0}, {0, 1}, {1, 2}}, 2);
  FactorizedMatrix fm;

  Fixture() {
    fm.AddTree(&intercept);
    fm.AddTree(&time);
    fm.AddTree(&geo);
  }
};

FeatureColumn InterceptColumn() {
  FeatureColumn col;
  col.name = "intercept";
  col.attr = AttrId{0, 0};
  col.value_map = {1.0};
  return col;
}

TEST(FactorizedMatrix, LayoutAndRowCount) {
  Fixture f;
  EXPECT_EQ(f.fm.num_trees(), 3);
  EXPECT_EQ(f.fm.num_rows(), 6);  // 1 * 2 * 3
  EXPECT_EQ(f.fm.num_attrs(), 4);  // intercept + time + district + village
  EXPECT_EQ(f.fm.FlatAttrIndex(AttrId{1, 0}), 1);
  EXPECT_EQ(f.fm.FlatAttrIndex(AttrId{2, 1}), 3);
  EXPECT_EQ(f.fm.PrefixLeaves(2), 2);
  EXPECT_EQ(f.fm.SuffixLeaves(0), 6);
  EXPECT_EQ(f.fm.SuffixLeaves(2), 1);
}

TEST(FactorizedMatrix, RowRoundTrip) {
  Fixture f;
  std::vector<int64_t> leaves;
  for (int64_t row = 0; row < f.fm.num_rows(); ++row) {
    f.fm.DecodeRowToLeaves(row, &leaves);
    EXPECT_EQ(f.fm.RowOfLeaves(leaves), row);
  }
}

TEST(FactorizedMatrix, DecodeRowToCodes) {
  Fixture f;
  std::vector<int32_t> codes;
  // Row 4 = time leaf 1, geo leaf 1 (village 1 under district 0).
  f.fm.DecodeRowToCodes(4, &codes);
  EXPECT_EQ(codes, (std::vector<int32_t>{0, 1, 0, 1}));
  // Row 5 = time leaf 1, geo leaf 2 (village 2 under district 1).
  f.fm.DecodeRowToCodes(5, &codes);
  EXPECT_EQ(codes, (std::vector<int32_t>{0, 1, 1, 2}));
}

TEST(FactorizedMatrix, ClusterStructure) {
  Fixture f;
  // Intra attribute = village; clusters = time x district = 4.
  EXPECT_EQ(f.fm.IntraAttr(), (AttrId{2, 1}));
  EXPECT_EQ(f.fm.num_clusters(), 4);
  // Rows 0,1 (t0,d0) -> cluster 0; row 2 (t0,d1) -> 1; rows 3,4 -> 2; row 5 -> 3.
  EXPECT_EQ(f.fm.ClusterOfRow(0), 0);
  EXPECT_EQ(f.fm.ClusterOfRow(1), 0);
  EXPECT_EQ(f.fm.ClusterOfRow(2), 1);
  EXPECT_EQ(f.fm.ClusterOfRow(3), 2);
  EXPECT_EQ(f.fm.ClusterOfRow(4), 2);
  EXPECT_EQ(f.fm.ClusterOfRow(5), 3);
}

TEST(FactorizedMatrix, ClusterWhenLastTreeDepthOne) {
  FTree intercept = FTree::Singleton();
  FTree flat = FTree::FromPaths({{0}, {1}, {2}}, 1);
  FactorizedMatrix fm;
  fm.AddTree(&intercept);
  fm.AddTree(&flat);
  EXPECT_EQ(fm.num_clusters(), 1);
  EXPECT_EQ(fm.ClusterOfRow(2), 0);
}

TEST(FactorizedMatrix, ColumnsAndValues) {
  Fixture f;
  f.fm.AddColumn(InterceptColumn());
  FeatureColumn village;
  village.name = "village_effect";
  village.attr = AttrId{2, 1};
  village.value_map = {10.0, 20.0, 30.0};
  f.fm.AddColumn(village);
  EXPECT_TRUE(f.fm.AllSingleAttribute());
  EXPECT_EQ(f.fm.ColumnsOnAttr(AttrId{2, 1}), (std::vector<int>{1}));
  std::vector<double> features;
  f.fm.FeatureRow(5, &features);
  EXPECT_EQ(features, (std::vector<double>{1.0, 30.0}));
}

TEST(FactorizedMatrix, MultiAttrColumn) {
  Fixture f;
  FeatureColumn lag;
  lag.name = "lag";
  lag.is_multi = true;
  lag.attrs = {AttrId{1, 0}, AttrId{2, 1}};  // (time, village)
  lag.multi_map[{1, 2}] = 7.0;
  lag.missing_value = -1.0;
  f.fm.AddColumn(lag);
  EXPECT_FALSE(f.fm.AllSingleAttribute());
  std::vector<double> features;
  f.fm.FeatureRow(5, &features);  // time 1, village 2
  EXPECT_EQ(features[0], 7.0);
  f.fm.FeatureRow(0, &features);
  EXPECT_EQ(features[0], -1.0);
}

TEST(MapTableRows, MapsAndAggregates) {
  Fixture f;
  Table t;
  int time_col = t.AddDimensionColumn("t");
  int d_col = t.AddDimensionColumn("d");
  int v_col = t.AddDimensionColumn("v");
  int m_col = t.AddMeasureColumn("m");
  auto add = [&](int32_t tv, int32_t dv, int32_t vv, double m) {
    // Preload dictionaries with matching codes.
    while (t.dict(time_col).size() <= tv) t.mutable_dict(time_col).GetOrAdd(
        "t" + std::to_string(t.dict(time_col).size()));
    while (t.dict(d_col).size() <= dv)
      t.mutable_dict(d_col).GetOrAdd("d" + std::to_string(t.dict(d_col).size()));
    while (t.dict(v_col).size() <= vv)
      t.mutable_dict(v_col).GetOrAdd("v" + std::to_string(t.dict(v_col).size()));
    t.SetDimCode(time_col, tv);
    t.SetDimCode(d_col, dv);
    t.SetDimCode(v_col, vv);
    t.SetMeasure(m_col, m);
    t.CommitRow();
  };
  add(0, 0, 0, 1.0);
  add(0, 0, 0, 2.0);
  add(1, 1, 2, 5.0);
  std::vector<std::vector<int>> tree_columns = {{}, {time_col}, {d_col, v_col}};
  std::vector<int64_t> rows = MapTableRowsToMatrixRows(f.fm, t, tree_columns);
  EXPECT_EQ(rows, (std::vector<int64_t>{0, 0, 5}));

  std::vector<Moments> y = BuildGroupMoments(f.fm, t, tree_columns, m_col);
  ASSERT_EQ(y.size(), 6u);
  EXPECT_DOUBLE_EQ(y[0].count, 2.0);
  EXPECT_DOUBLE_EQ(y[0].sum, 3.0);
  EXPECT_DOUBLE_EQ(y[5].sum, 5.0);
  EXPECT_DOUBLE_EQ(y[1].count, 0.0);  // empty parallel group retained
}

}  // namespace
}  // namespace reptile
