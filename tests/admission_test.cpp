// Tests for the admission-control layer grown for the workload simulator:
// HttpClient deadlines against a stalled server (kDeadlineExceeded, distinct
// from kIoError), token-bucket 429s with Retry-After on BOTH front ends
// (with /healthz and /metricsz exempt), queue-deadline 503 shedding on both
// front ends (per-connection threaded, per-request reactor — the reactor
// connection survives), the kDeadlineExceeded -> 504 wire mapping, and the
// /metricsz export of the new transport counters.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "net/reactor_server.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/service.h"

namespace reptile {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// A listener that accepts connections and then never writes a byte — the
// shape of a wedged server that HttpClient's deadline must cut through.
class StalledListener {
 public:
  StalledListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    accepter_ = std::thread([this] {
      for (;;) {
        int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) return;  // listener closed: test over
        accepted_.push_back(client);
      }
    });
  }

  ~StalledListener() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    accepter_.join();
    for (int client : accepted_) ::close(client);
  }

  int port() const { return port_; }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::thread accepter_;
  std::vector<int> accepted_;
};

TEST(HttpClientTimeoutTest, StalledServerSurfacesDeadlineExceeded) {
  StalledListener listener;
  HttpClient client("127.0.0.1", listener.port());
  client.SetTimeoutMs(200);
  const auto start = Clock::now();
  Result<HttpClientResponse> response = client.Get("/anything");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  // Well past the 200ms deadline but nowhere near a blocking-forever hang.
  EXPECT_LT(SecondsSince(start), 5.0);

  // The failed socket was torn down; the client recovers by reconnecting
  // (and times out again — the server is still wedged, but as a fresh,
  // correctly-classified error rather than a desynced stream).
  Result<HttpClientResponse> again = client.Get("/anything");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kDeadlineExceeded);
}

// One front end + a caller-supplied handler; admission control is purely a
// front-end concern, so these tests don't need the full service.
struct FrontEnd {
  FrontEnd(bool reactor, HttpHandler handler, double rate_limit_rps,
           double rate_limit_burst, int queue_deadline_ms, int num_threads) {
    if (reactor) {
      ReactorServerOptions options;
      options.num_threads = num_threads;
      options.rate_limit_rps = rate_limit_rps;
      options.rate_limit_burst = rate_limit_burst;
      options.queue_deadline_ms = queue_deadline_ms;
      reactor_server = std::make_unique<ReactorServer>(std::move(options),
                                                       std::move(handler));
      EXPECT_TRUE(reactor_server->Start().ok());
      port = reactor_server->port();
    } else {
      HttpServerOptions options;
      options.num_threads = num_threads;
      options.rate_limit_rps = rate_limit_rps;
      options.rate_limit_burst = rate_limit_burst;
      options.queue_deadline_ms = queue_deadline_ms;
      http_server = std::make_unique<HttpServer>(std::move(options),
                                                 std::move(handler));
      EXPECT_TRUE(http_server->Start().ok());
      port = http_server->port();
    }
  }

  ~FrontEnd() {
    if (reactor_server != nullptr) reactor_server->Stop();
    if (http_server != nullptr) http_server->Stop();
  }

  int64_t rate_limited() const {
    return reactor_server != nullptr ? reactor_server->requests_rate_limited()
                                     : http_server->requests_rate_limited();
  }
  int64_t shed() const {
    return reactor_server != nullptr ? reactor_server->requests_shed()
                                     : http_server->requests_shed();
  }

  std::unique_ptr<HttpServer> http_server;
  std::unique_ptr<ReactorServer> reactor_server;
  int port = 0;
};

HttpHandler OkHandler() {
  return [](const HttpRequest&) { return HttpResponse::Json(200, "{\"ok\":true}"); };
}

TEST(AdmissionTest, RateLimitReturns429WithRetryAfterOnBothFrontEnds) {
  for (bool reactor : {false, true}) {
    SCOPED_TRACE(reactor ? "reactor" : "threaded");
    // A refill rate of ~0 makes the test deterministic: exactly `burst`
    // requests are admitted, ever.
    FrontEnd server(reactor, OkHandler(), /*rate_limit_rps=*/0.0001,
                    /*rate_limit_burst=*/2.0, /*queue_deadline_ms=*/0,
                    /*num_threads=*/2);
    HttpClient client("127.0.0.1", server.port);

    for (int i = 0; i < 2; ++i) {
      Result<HttpClientResponse> admitted = client.Post("/api/op", "{}");
      ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
      EXPECT_EQ(admitted->status, 200);
    }
    Result<HttpClientResponse> limited = client.Post("/api/op", "{}");
    ASSERT_TRUE(limited.ok()) << limited.status().ToString();
    EXPECT_EQ(limited->status, 429);
    EXPECT_NE(limited->body.find("\"code\":\"RATE_LIMITED\""), std::string::npos)
        << limited->body;
    EXPECT_NE(limited->body.find("\"http\":429"), std::string::npos);
    const std::string* retry_after = limited->FindHeader("retry-after");
    ASSERT_NE(retry_after, nullptr);
    EXPECT_GE(std::stol(*retry_after), 1);

    // The rejection is a normal response on a healthy connection: the same
    // client keeps talking, and the health/metrics routes stay exempt no
    // matter how drained the bucket is.
    for (int i = 0; i < 3; ++i) {
      Result<HttpClientResponse> health = client.Get("/healthz");
      ASSERT_TRUE(health.ok()) << health.status().ToString();
      EXPECT_EQ(health->status, 200);
      Result<HttpClientResponse> metrics = client.Get("/metricsz");
      ASSERT_TRUE(metrics.ok());
      // The bare front end has no /metricsz handler (the service provides
      // it); exempt means "reached the handler", i.e. NOT 429.
      EXPECT_NE(metrics->status, 429);
    }
    EXPECT_EQ(server.rate_limited(), 1);
    EXPECT_EQ(server.shed(), 0);
  }
}

HttpHandler SlowPathHandler() {
  return [](const HttpRequest& request) {
    if (request.path == "/slow") {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return HttpResponse::Json(200, "{\"ok\":true}");
  };
}

TEST(AdmissionTest, QueueDeadlineShedsBehindABusyWorkerOnBothFrontEnds) {
  for (bool reactor : {false, true}) {
    SCOPED_TRACE(reactor ? "reactor" : "threaded");
    // One worker + a 1ms deadline: anything that arrives while /slow holds
    // the worker has waited too long by the time the worker frees up.
    FrontEnd server(reactor, SlowPathHandler(), /*rate_limit_rps=*/0.0,
                    /*rate_limit_burst=*/0.0, /*queue_deadline_ms=*/1,
                    /*num_threads=*/1);

    std::thread slow([port = server.port] {
      HttpClient client("127.0.0.1", port);
      Result<HttpClientResponse> response = client.Get("/slow");
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->status, 200);
    });
    // Give /slow time to occupy the worker before the victim arrives.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    HttpClient victim("127.0.0.1", server.port);
    Result<HttpClientResponse> shed = victim.Get("/fast");
    slow.join();
    ASSERT_TRUE(shed.ok()) << shed.status().ToString();
    EXPECT_EQ(shed->status, 503);
    EXPECT_NE(shed->body.find("\"code\":\"OVERLOADED\""), std::string::npos)
        << shed->body;
    EXPECT_GE(server.shed(), 1);
    EXPECT_EQ(server.rate_limited(), 0);

    // With the worker idle again the same client is served normally — on
    // the reactor the 503 never even closed the connection (per-request
    // shedding), on the threaded front end the client reconnects.
    Result<HttpClientResponse> after = victim.Get("/fast");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after->status, 200);
  }
}

TEST(AdmissionTest, DeadlineExceededMapsTo504OnTheWire) {
  ServiceOptions options;
  options.enable_debug_status_route = true;
  ReptileService service(std::move(options));
  HttpServerOptions server_options;
  server_options.num_threads = 1;
  HttpServer server(server_options, [&service](const HttpRequest& request) {
    return service.Handle(request);
  });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  Result<HttpClientResponse> response = client.Post(
      "/v1/_debug/status",
      R"({"code":"DEADLINE_EXCEEDED","message":"engine budget spent"})");
  server.Stop();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504);
  EXPECT_NE(response->body.find("\"code\":\"DEADLINE_EXCEEDED\""), std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"http\":504"), std::string::npos);
}

TEST(AdmissionTest, MetricszExportsRateLimitAndShedCounters) {
  // The serve_main wiring in miniature: the service's /metricsz pulls the
  // front end's StatsJson through the transport hook, so the new counters
  // surface as reptile_transport_* gauges.
  std::function<std::string()> transport_stats;
  ServiceOptions service_options;
  service_options.transport_stats_json = [&transport_stats] {
    return transport_stats ? transport_stats() : std::string("null");
  };
  ReptileService service(std::move(service_options));

  HttpServerOptions server_options;
  server_options.num_threads = 2;
  server_options.rate_limit_rps = 0.0001;
  server_options.rate_limit_burst = 1.0;
  HttpServer server(server_options, [&service](const HttpRequest& request) {
    return service.Handle(request);
  });
  transport_stats = [&server] { return server.StatsJson(); };
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  Result<HttpClientResponse> admitted = client.Post("/api/op", "{}");
  ASSERT_TRUE(admitted.ok());
  Result<HttpClientResponse> limited = client.Post("/api/op", "{}");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->status, 429);

  Result<HttpClientResponse> metrics = client.Get("/metricsz");
  server.Stop();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("reptile_transport_requests_rate_limited 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("reptile_transport_requests_shed 0"),
            std::string::npos);
}

}  // namespace
}  // namespace reptile
