// The ModelSpec API and the process-shared fitted-model cache
// (factor/model_cache.h): single-flight semantics, zero-fit warm sessions
// with byte-identical responses, exactly-one-fit-per-key under concurrency,
// the factorised-vs-dense backend contract under the new API (fig08 panel),
// feature-registration key partitioning (the auxiliary regression), and
// plan-stage ModelSpec validation.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "datagen/panel_gen.h"
#include "factor/model_cache.h"
#include "gtest/gtest.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

constexpr int kDistricts = 4;
constexpr int kVillages = 3;
constexpr int kYears = 4;

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = kDistricts;
  spec.villages_per_district = kVillages;
  spec.years = kYears;
  spec.rows_per_group = 3;
  return MakeSeverityPanel(spec);
}

DatasetHandle PreparePanel() {
  Result<DatasetHandle> handle = PreparedDataset::Prepare(MakePanel());
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  return std::move(handle).value();
}

Session OpenPanelSession(const DatasetHandle& handle, const ExploreRequest& options = {}) {
  Result<Session> session = Session::Open(handle, options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  Status committed = session->Commit("time");
  EXPECT_TRUE(committed.ok()) << committed.ToString();
  return std::move(session).value();
}

// The fig08 complaint panel: one STD complaint per year.
std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < kYears; ++y) {
    complaints.push_back(
        ComplaintSpec::TooHigh("std", "severity").Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

// Deterministic serialisation: timing and counter fields zeroed, mirroring
// the wire's zero_timings semantics.
std::string TimelessJson(BatchExploreResponse batch) {
  batch.train_seconds = 0.0;
  batch.wall_seconds = 0.0;
  batch.models_trained = 0;
  batch.fit_cache_hits = 0;
  for (ExploreResponse& response : batch.responses) {
    for (HierarchyResponse& candidate : response.candidates) {
      candidate.train_seconds = 0.0;
      candidate.total_seconds = 0.0;
    }
  }
  return batch.ToJson();
}

// ---- SharedFittedModelCache unit tests -------------------------------------

TEST(SharedFittedModelCache, GetOrFitCachesAndCounts) {
  SharedFittedModelCache cache;
  int fit_calls = 0;
  auto fit = [&] {
    ++fit_calls;
    return FittedModel{{1.0, 2.0, 3.0}, 0.5};
  };

  auto [first, first_performed] = cache.GetOrFit("k1", fit);
  EXPECT_TRUE(first_performed);
  EXPECT_EQ(fit_calls, 1);
  EXPECT_EQ(first->fitted, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(first->fit_seconds, 0.5);

  auto [second, second_performed] = cache.GetOrFit("k1", fit);
  EXPECT_FALSE(second_performed);
  EXPECT_EQ(fit_calls, 1);
  EXPECT_EQ(second.get(), first.get());  // the very same model object

  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.fits(), 1);
  EXPECT_EQ(cache.Keys(), std::vector<std::string>{"k1"});

  EXPECT_EQ(cache.Find("k1").get(), first.get());
  EXPECT_EQ(cache.Find("absent"), nullptr);
}

TEST(SharedFittedModelCache, SingleFlightUnderContention) {
  SharedFittedModelCache cache;
  std::atomic<int> fit_calls{0};
  std::atomic<int> performed{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<FittedModelPtr> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto [model, did_fit] = cache.GetOrFit("contended", [&] {
        fit_calls.fetch_add(1);
        // Widen the race window so waiters really block on the in-flight fit.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return FittedModel{{42.0}, 0.0};
      });
      if (did_fit) performed.fetch_add(1);
      results[static_cast<size_t>(t)] = model;
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(fit_calls.load(), 1);  // exactly one fit, process-wide
  EXPECT_EQ(performed.load(), 1);
  EXPECT_EQ(cache.fits(), 1);
  EXPECT_EQ(cache.hits(), kThreads - 1);
  for (const FittedModelPtr& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result.get(), results[0].get());
  }
}

TEST(SharedFittedModelCache, ThrowingFitIsRetriable) {
  SharedFittedModelCache cache;
  EXPECT_THROW(cache.GetOrFit("boom",
                              []() -> FittedModel { throw std::runtime_error("fit failed"); }),
               std::runtime_error);
  EXPECT_EQ(cache.entries(), 0);  // key released for retry
  auto [model, performed] = cache.GetOrFit("boom", [] { return FittedModel{{1.0}, 0.0}; });
  EXPECT_TRUE(performed);
  EXPECT_EQ(model->fitted, std::vector<double>{1.0});
}

// ---- Warm sessions: zero fits, byte-identical responses --------------------

// The acceptance criterion: a warm session — same dataset, same committed
// depths, default ModelSpec — performs ZERO model fits while its responses
// stay byte-identical to the cold session's.
TEST(ModelCache, WarmSessionPerformsZeroFits) {
  DatasetHandle handle = PreparePanel();
  std::vector<ComplaintSpec> complaints = PanelComplaints();

  Session cold = OpenPanelSession(handle);
  Result<BatchExploreResponse> cold_batch =
      cold.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(cold_batch.ok()) << cold_batch.status().ToString();
  EXPECT_GT(cold.models_trained(), 0);
  EXPECT_EQ(cold_batch->models_trained, cold.models_trained());
  const int64_t fits_after_cold = handle->model_cache_fits();
  EXPECT_EQ(fits_after_cold, cold.models_trained());

  Session warm = OpenPanelSession(handle);
  Result<BatchExploreResponse> warm_batch =
      warm.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(warm_batch.ok()) << warm_batch.status().ToString();
  EXPECT_EQ(warm.models_trained(), 0);
  EXPECT_EQ(warm_batch->models_trained, 0);
  EXPECT_EQ(warm_batch->fit_cache_hits, cold.models_trained());
  EXPECT_EQ(handle->model_cache_fits(), fits_after_cold);  // nothing retrained
  EXPECT_EQ(TimelessJson(*warm_batch), TimelessJson(*cold_batch));

  // The SAME session's second identical call is warm too.
  Result<BatchExploreResponse> again =
      cold.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->models_trained, 0);
  EXPECT_EQ(TimelessJson(*again), TimelessJson(*cold_batch));
}

// Opting out of the cache retrains every call and leaves the shared cache
// untouched.
TEST(ModelCache, FitCacheOptOutRetrains) {
  DatasetHandle handle = PreparePanel();
  Session no_cache =
      OpenPanelSession(handle, ExploreRequest().Model(ModelSpec().FitCache(false)));
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y1");
  Result<ExploreResponse> first = no_cache.Recommend(complaint);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  int64_t after_first = no_cache.models_trained();
  EXPECT_GT(after_first, 0);
  EXPECT_EQ(handle->model_cache_entries(), 0);
  EXPECT_FALSE(first->model.fit_cache);

  Result<ExploreResponse> second = no_cache.Recommend(complaint);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(no_cache.models_trained(), 2 * after_first);  // refit, not reused
  EXPECT_EQ(no_cache.fit_cache_hits(), 0);
}

// Drill state partitions keys: after committing another hierarchy the
// feature matrix changes, so nothing stale is reused and new keys appear.
TEST(ModelCache, CommittedDepthsPartitionKeys) {
  DatasetHandle handle = PreparePanel();
  Session session = OpenPanelSession(handle);
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y1");
  ASSERT_TRUE(session.Recommend(complaint).ok());
  int64_t fits_before = session.models_trained();
  EXPECT_GT(fits_before, 0);

  ASSERT_TRUE(session.Commit("geo").ok());
  ASSERT_TRUE(session.Recommend(complaint).ok());
  EXPECT_GT(session.models_trained(), fits_before);  // new drill state, new fits
}

// ---- Concurrency: one fit per key across racing sessions -------------------

// The second half of the acceptance criterion: N sessions racing on the same
// keys perform exactly one fit per key BETWEEN them (single-flight), and
// every racer's responses equal the single-threaded golden bytes.
TEST(ModelCache, ConcurrentSessionsFitOncePerKey) {
  DatasetHandle handle = PreparePanel();
  std::vector<ComplaintSpec> complaints = PanelComplaints();

  // Golden bytes from a separate, identically prepared dataset so the shared
  // cache under test stays cold until the race starts.
  std::string golden;
  int64_t keys_per_call = 0;
  {
    DatasetHandle golden_handle = PreparePanel();
    Session golden_session = OpenPanelSession(golden_handle);
    Result<BatchExploreResponse> batch =
        golden_session.RecommendAll(std::span<const ComplaintSpec>(complaints));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    golden = TimelessJson(*batch);
    keys_per_call = batch->models_trained;
    ASSERT_GT(keys_per_call, 0);
  }

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> bodies(kThreads);
  std::vector<int64_t> trained(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session = OpenPanelSession(handle);
      Result<BatchExploreResponse> batch =
          session.RecommendAll(std::span<const ComplaintSpec>(complaints));
      if (!batch.ok()) return;  // bodies[t] stays empty -> assert below fails
      bodies[static_cast<size_t>(t)] = TimelessJson(*batch);
      trained[static_cast<size_t>(t)] = session.models_trained();
    });
  }
  for (std::thread& thread : threads) thread.join();

  int64_t total_trained = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(bodies[static_cast<size_t>(t)], golden) << "racer " << t;
    ASSERT_GE(trained[static_cast<size_t>(t)], 0);
    total_trained += trained[static_cast<size_t>(t)];
  }
  // Exactly one fit per key across ALL racers, however the race interleaved.
  EXPECT_EQ(total_trained, keys_per_call);
  EXPECT_EQ(handle->model_cache_fits(), keys_per_call);
  EXPECT_EQ(handle->model_cache_entries(), keys_per_call);
}

// ---- Backend contract under the new API (fig08 panel) ----------------------

// The paper's factorised-vs-dense contract, guarded at the ModelSpec level:
// on a panel where kAuto picks the factorised backend, forcing kDense
// through a per-call ModelSpec must produce identical rankings.
TEST(ModelSpecApi, DenseBackendMatchesAutoFactorizedRankings) {
  DatasetHandle handle = PreparePanel();
  std::vector<ComplaintSpec> complaints = PanelComplaints();

  Session auto_session = OpenPanelSession(handle);
  Result<BatchExploreResponse> factorized =
      auto_session.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(factorized.ok()) << factorized.status().ToString();
  // kAuto resolves to factorised here (every feature single-attribute) and
  // the echo says so.
  ASSERT_FALSE(factorized->responses.empty());
  EXPECT_EQ(factorized->responses[0].model.backend, "factorized");

  Result<BatchExploreResponse> dense = auto_session.RecommendAll(
      std::span<const ComplaintSpec>(complaints),
      BatchOptions().Model(ModelSpec().With(ModelSpec::Backend::kDense)));
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  EXPECT_EQ(dense->responses[0].model.backend, "dense");
  // A different backend is a different cache partition: the dense models
  // were fitted, not served from the factorised entries.
  EXPECT_GT(dense->models_trained, 0);

  ASSERT_EQ(dense->responses.size(), factorized->responses.size());
  for (size_t i = 0; i < factorized->responses.size(); ++i) {
    const ExploreResponse& f = factorized->responses[i];
    const ExploreResponse& d = dense->responses[i];
    EXPECT_EQ(f.best_index, d.best_index);
    ASSERT_EQ(f.candidates.size(), d.candidates.size());
    for (size_t c = 0; c < f.candidates.size(); ++c) {
      EXPECT_EQ(f.candidates[c].hierarchy, d.candidates[c].hierarchy);
      EXPECT_EQ(f.candidates[c].attribute, d.candidates[c].attribute);
      ASSERT_EQ(f.candidates[c].groups.size(), d.candidates[c].groups.size());
      for (size_t g = 0; g < f.candidates[c].groups.size(); ++g) {
        // Identical rankings: same groups in the same order; scores agree to
        // numerical precision (the two backends run the same algebra through
        // different operator orders).
        EXPECT_EQ(f.candidates[c].groups[g].description,
                  d.candidates[c].groups[g].description);
        EXPECT_NEAR(f.candidates[c].groups[g].score, d.candidates[c].groups[g].score, 1e-6);
      }
    }
  }
}

// ---- Feature registrations partition the cache (the bugfix satellite) ------

// Registering an auxiliary must invalidate the session's fitted-model
// lookups: a model fitted WITHOUT the auxiliary must never answer for one
// fitted WITH it — and vice versa, in both directions, without poisoning
// other sessions.
TEST(ModelCache, AuxiliaryRegistrationNeverReusesPreAuxModels) {
  DatasetHandle handle = PreparePanel();
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y1");

  // Warm the default partition.
  Session plain = OpenPanelSession(handle);
  ASSERT_TRUE(plain.Recommend(complaint).ok());
  int64_t default_fits = plain.models_trained();
  ASSERT_GT(default_fits, 0);

  // A district-keyed auxiliary measure (deterministic contents).
  auto make_aux = [] {
    Table aux;
    int district = aux.AddDimensionColumn("district");
    int budget = aux.AddMeasureColumn("budget");
    for (int d = 0; d < kDistricts; ++d) {
      aux.SetDim(district, "d" + std::to_string(d));
      aux.SetMeasure(budget, 100.0 + 10.0 * d);
      aux.CommitRow();
    }
    return aux;
  };

  Session with_aux = OpenPanelSession(handle);
  {
    AuxiliaryRequest aux;
    aux.name = "budget";
    aux.table = make_aux();
    aux.join_attributes = {"district"};
    aux.measure = "budget";
    ASSERT_TRUE(with_aux.RegisterAuxiliary(std::move(aux)).ok());
  }
  Result<ExploreResponse> aux_response = with_aux.Recommend(complaint);
  ASSERT_TRUE(aux_response.ok()) << aux_response.status().ToString();
  // The regression: the session trained its own models — zero reuse of the
  // pre-auxiliary entries, which describe a different feature matrix.
  EXPECT_EQ(with_aux.models_trained(), default_fits);
  EXPECT_EQ(with_aux.fit_cache_hits(), 0);

  // A second registration re-partitions AGAIN: models fitted with one
  // auxiliary set never answer for another.
  {
    AuxiliaryRequest aux;
    aux.name = "budget2";
    aux.table = make_aux();
    aux.join_attributes = {"district"};
    aux.measure = "budget";
    ASSERT_TRUE(with_aux.RegisterAuxiliary(std::move(aux)).ok());
  }
  int64_t before_second = with_aux.models_trained();
  ASSERT_TRUE(with_aux.Recommend(complaint).ok());
  EXPECT_GT(with_aux.models_trained(), before_second);

  // The default partition is unpoisoned: a fresh plain session is fully warm.
  Session fresh = OpenPanelSession(handle);
  ASSERT_TRUE(fresh.Recommend(complaint).ok());
  EXPECT_EQ(fresh.models_trained(), 0);
}

// Random-effect exclusions re-partition the same way.
TEST(ModelCache, RandomEffectExclusionInvalidatesLookups) {
  DatasetHandle handle = PreparePanel();
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y1");
  ExploreRequest all_effects = ExploreRequest().RandomEffects("all");

  Session a = OpenPanelSession(handle, all_effects);
  ASSERT_TRUE(a.Recommend(complaint).ok());
  int64_t base_fits = a.models_trained();
  ASSERT_GT(base_fits, 0);

  Session b = OpenPanelSession(handle, all_effects);
  ASSERT_TRUE(b.ExcludeFromRandomEffects("district").ok());
  ASSERT_TRUE(b.Recommend(complaint).ok());
  EXPECT_EQ(b.models_trained(), base_fits);  // own fits, no reuse
  EXPECT_EQ(b.fit_cache_hits(), 0);
}

// The random-effect POLICY is part of the key even without exclusions: an
// intercept-only session and an all-features session never share models.
TEST(ModelCache, RandomEffectPolicyPartitionsKeys) {
  DatasetHandle handle = PreparePanel();
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y1");

  Session intercepts = OpenPanelSession(handle);
  ASSERT_TRUE(intercepts.Recommend(complaint).ok());
  ASSERT_GT(intercepts.models_trained(), 0);

  Session all = OpenPanelSession(handle, ExploreRequest().RandomEffects("all"));
  ASSERT_TRUE(all.Recommend(complaint).ok());
  EXPECT_GT(all.models_trained(), 0);
  EXPECT_EQ(all.fit_cache_hits(), 0);
}

// ---- ModelSpec plumbing and validation -------------------------------------

TEST(ModelSpecApi, EchoReportsWhatRan) {
  DatasetHandle handle = PreparePanel();
  Session session = OpenPanelSession(handle);
  ComplaintSpec complaint = ComplaintSpec::TooHigh("mean", "severity").Where("year", "y1");

  Result<ExploreResponse> defaults = session.Recommend(complaint);
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->model.kind, "multilevel");
  EXPECT_EQ(defaults->model.backend, "factorized");  // auto, resolved
  EXPECT_EQ(defaults->model.em_iterations, 20);
  EXPECT_TRUE(defaults->model.fit_cache);
  EXPECT_TRUE(defaults->model.extra_repair_stats.empty());
  EXPECT_NE(defaults->ToJson().find("\"model\":{\"kind\":\"multilevel\""),
            std::string::npos);

  Result<ExploreResponse> custom = session.Recommend(
      complaint, BatchOptions().Model(ModelSpec()
                                          .Linear()
                                          .Dense()
                                          .EmIterations(7)
                                          .EmTolerance(0.125)
                                          .RepairAlso(AggFn::kCount)));
  ASSERT_TRUE(custom.ok()) << custom.status().ToString();
  EXPECT_EQ(custom->model.kind, "linear");
  EXPECT_EQ(custom->model.backend, "dense");
  EXPECT_EQ(custom->model.em_iterations, 7);
  EXPECT_DOUBLE_EQ(custom->model.em_tolerance, 0.125);
  EXPECT_EQ(custom->model.extra_repair_stats, std::vector<std::string>{"count"});
  // The per-call extra repair stat really ran: count predictions appear.
  ASSERT_TRUE(custom->best() != nullptr);
  ASSERT_FALSE(custom->best()->groups.empty());
  EXPECT_EQ(custom->best()->groups[0].predicted.count("count"), 1u);
}

// An EM tolerance converges to the same repair as full iterations on this
// well-conditioned panel, under a distinct cache key.
TEST(ModelSpecApi, EmToleranceConvergesAndPartitions) {
  DatasetHandle handle = PreparePanel();
  Session session = OpenPanelSession(handle);
  ComplaintSpec complaint = ComplaintSpec::TooHigh("mean", "severity").Where("year", "y1");

  Result<ExploreResponse> full = session.Recommend(complaint);
  ASSERT_TRUE(full.ok());
  int64_t fits_after_full = session.models_trained();

  Result<ExploreResponse> tolerant = session.Recommend(
      complaint, BatchOptions().Model(ModelSpec().EmTolerance(1e-12)));
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_GT(session.models_trained(), fits_after_full);  // separate key, refit
  ASSERT_TRUE(tolerant->best() != nullptr);
  ASSERT_FALSE(tolerant->best()->groups.empty());
  ASSERT_TRUE(full->best() != nullptr);
  EXPECT_EQ(tolerant->best()->groups[0].description, full->best()->groups[0].description);
  EXPECT_NEAR(tolerant->best()->groups[0].score, full->best()->groups[0].score, 1e-9);
}

TEST(ModelSpecApi, ValidationErrorsAsStatus) {
  DatasetHandle handle = PreparePanel();
  Session session = OpenPanelSession(handle);
  ComplaintSpec complaint = ComplaintSpec::TooHigh("mean", "severity").Where("year", "y1");

  Result<ExploreResponse> bad_iters =
      session.Recommend(complaint, BatchOptions().Model(ModelSpec().EmIterations(0)));
  EXPECT_EQ(bad_iters.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_iters.status().message().find("em_iterations"), std::string::npos);

  Result<ExploreResponse> bad_tol =
      session.Recommend(complaint, BatchOptions().Model(ModelSpec().EmTolerance(-1.0)));
  EXPECT_EQ(bad_tol.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_tol.status().message().find("em_tolerance"), std::string::npos);

  // The deprecated per-call extras conflict with a per-call ModelSpec.
  Result<ExploreResponse> conflict = session.Recommend(
      complaint, BatchOptions().Model(ModelSpec()).RepairAlso("count"));
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);

  // Session construction validates an explicit ModelSpec too.
  Result<Session> bad_session =
      Session::Open(handle, ExploreRequest().Model(ModelSpec().EmIterations(-5)));
  EXPECT_EQ(bad_session.status().code(), StatusCode::kInvalidArgument);
}

// Forcing the factorised backend while a multi-attribute auxiliary is
// registered is rejected in the plan stage (it would abort at fit time).
TEST(ModelSpecApi, ForcedFactorizedRejectedWithMultiAttributeAuxiliary) {
  DatasetHandle handle = PreparePanel();
  Session session = OpenPanelSession(handle);
  ASSERT_TRUE(session.Commit("geo").ok());  // district committed; village drillable

  Table aux;
  int district = aux.AddDimensionColumn("district");
  int village = aux.AddDimensionColumn("village");
  int score = aux.AddMeasureColumn("score");
  for (int d = 0; d < kDistricts; ++d) {
    for (int v = 0; v < kVillages; ++v) {
      aux.SetDim(district, "d" + std::to_string(d));
      aux.SetDim(village, "d" + std::to_string(d) + "_v" + std::to_string(v));
      aux.SetMeasure(score, d + 0.1 * v);
      aux.CommitRow();
    }
  }
  AuxiliaryRequest request;
  request.name = "score";
  request.table = std::move(aux);
  request.join_attributes = {"district", "village"};
  request.measure = "score";
  ASSERT_TRUE(session.RegisterAuxiliary(std::move(request)).ok());

  ComplaintSpec complaint = ComplaintSpec::TooHigh("mean", "severity").Where("year", "y1");
  Result<ExploreResponse> forced =
      session.Recommend(complaint, BatchOptions().Model(ModelSpec().Factorized()));
  EXPECT_EQ(forced.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(forced.status().message().find("score"), std::string::npos);

  // With the multi-attribute auxiliary present, auto stays auto in the echo
  // (the backend is resolved per fit) — and the call itself succeeds.
  Result<ExploreResponse> auto_ok = session.Recommend(complaint);
  ASSERT_TRUE(auto_ok.ok()) << auto_ok.status().ToString();
  EXPECT_EQ(auto_ok->model.backend, "auto");
}

}  // namespace
}  // namespace reptile
