// Tests for model/model_eval: log-likelihoods and AIC orderings (the
// Appendix K methodology: lower AIC = better model; DeltaAIC > 10 means
// substantially better).

#include "baselines/naive_trainer.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "model/linear.h"
#include "model/model_eval.h"
#include "model/multilevel.h"

namespace reptile {
namespace {

struct MixedData {
  Matrix x;
  std::vector<double> y;
  std::vector<int64_t> cluster_begin;
};

MixedData MakeMixedData(Rng* rng, int64_t clusters, int64_t per_cluster, double tau,
                        double noise) {
  MixedData data;
  int64_t n = clusters * per_cluster;
  data.x = Matrix(static_cast<size_t>(n), 2);
  data.y.resize(static_cast<size_t>(n));
  for (int64_t g = 0; g < clusters; ++g) {
    data.cluster_begin.push_back(g * per_cluster);
    double u = rng->Normal(0.0, tau);
    for (int64_t i = 0; i < per_cluster; ++i) {
      int64_t row = g * per_cluster + i;
      double xv = rng->Normal(0.0, 1.0);
      data.x(static_cast<size_t>(row), 0) = 1.0;
      data.x(static_cast<size_t>(row), 1) = xv;
      data.y[static_cast<size_t>(row)] = 1.0 + 2.0 * xv + u + rng->Normal(0.0, noise);
    }
  }
  data.cluster_begin.push_back(n);
  return data;
}

TEST(LinearAic, PenalisesExtraParameters) {
  LinearModel small;
  small.beta = {1.0, 2.0};
  small.sigma2 = 1.0;
  LinearModel big;
  big.beta = {1.0, 2.0, 0.0, 0.0};
  big.sigma2 = 1.0;  // same fit, more parameters
  EXPECT_LT(LinearAic(small, 100), LinearAic(big, 100));
}

TEST(LinearLogLik, MatchesClosedForm) {
  LinearModel model;
  model.beta = {0.0};
  model.sigma2 = 1.0;
  // -n/2 (log(2pi) + log(1) + 1)
  EXPECT_NEAR(LinearLogLikelihood(model, 10), -0.5 * 10 * (std::log(2 * M_PI) + 1.0), 1e-9);
}

TEST(MultiLevelAic, PrefersMultiLevelOnClusteredData) {
  Rng rng(31);
  MixedData data = MakeMixedData(&rng, 40, 25, /*tau=*/2.0, /*noise=*/0.5);
  // Linear fit.
  LinearModel linear = TrainLinearDense(data.x, data.y);
  double linear_aic = LinearAic(linear, static_cast<int64_t>(data.y.size()));
  // Multi-level fit.
  DenseEmBackend backend(&data.x, data.cluster_begin, {0});
  MultiLevelModel ml = TrainMultiLevel(&backend, data.y);
  double ml_aic = MultiLevelAic(&backend, ml, data.y);
  // Strongly clustered data: the multi-level model wins by far more than the
  // DeltaAIC = 10 rule of thumb.
  EXPECT_LT(ml_aic, linear_aic - 10.0);
}

TEST(MultiLevelAic, NoAdvantageWithoutClusterStructure) {
  Rng rng(37);
  MixedData data = MakeMixedData(&rng, 40, 25, /*tau=*/0.0, /*noise=*/1.0);
  LinearModel linear = TrainLinearDense(data.x, data.y);
  double linear_aic = LinearAic(linear, static_cast<int64_t>(data.y.size()));
  DenseEmBackend backend(&data.x, data.cluster_begin, {0});
  MultiLevelModel ml = TrainMultiLevel(&backend, data.y);
  double ml_aic = MultiLevelAic(&backend, ml, data.y);
  // Without cluster effects the models are comparable; the multi-level AIC
  // must not be dramatically better.
  EXPECT_GT(ml_aic, linear_aic - 10.0);
}

TEST(MultiLevelLogLik, MarginalLikelihoodIsFiniteAndOrdered) {
  Rng rng(41);
  MixedData data = MakeMixedData(&rng, 20, 15, 1.0, 0.5);
  DenseEmBackend backend(&data.x, data.cluster_begin, {0});
  MultiLevelModel model = TrainMultiLevel(&backend, data.y);
  double ll = MultiLevelLogLikelihood(&backend, model, data.y);
  EXPECT_TRUE(std::isfinite(ll));
  // Corrupting beta should lower the likelihood.
  MultiLevelModel worse = model;
  worse.beta[1] += 5.0;
  EXPECT_LT(MultiLevelLogLikelihood(&backend, worse, data.y), ll);
}

}  // namespace
}  // namespace reptile
