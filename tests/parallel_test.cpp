// Tests for the parallel/ subsystem and the parallel batched engine:
//  * ThreadPool semantics — tasks run, exceptions propagate to the caller,
//    the pool drains on destruction, results land in index order;
//  * Rng sub-streams — deterministic in (seed, stream), decorrelated across
//    streams, independent of the parent's draw position;
//  * determinism — RecommendAll at num_threads 1 / 2 / 8 is element-wise
//    identical to the sequential output, on the fig08-style workload and on
//    randomized chain datasets, through both the session facade and the
//    engine; and BatchTiming reports summed fit work next to wall time.

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/rng.h"
#include "core/engine.h"
#include "datagen/synthetic.h"
#include "parallel/thread_pool.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    // No Wait(): the destructor must run every submitted task before joining.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) { EXPECT_GE(ThreadPool::DefaultThreads(), 1); }

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, 257, [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](int64_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // sequential, in order
}

TEST(ParallelForTest, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 32,
                  [&](int64_t i) {
                    if (i % 2 == 1) throw std::runtime_error("task " + std::to_string(i));
                  }),
      std::runtime_error);
  // The pool must still be usable after a failed ParallelFor.
  std::atomic<int> count{0};
  ParallelFor(&pool, 8, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(SharedThreadPoolTest, IsOneProcessWidePool) {
  ThreadPool* pool = SharedThreadPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), ThreadPool::DefaultThreads());
  // Same instance from every thread (lazy init is thread-safe).
  std::vector<ThreadPool*> seen(4, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&seen, t] { seen[static_cast<size_t>(t)] = SharedThreadPool(); });
  }
  for (std::thread& thread : threads) thread.join();
  for (ThreadPool* p : seen) EXPECT_EQ(p, pool);
}

TEST(SharedThreadPoolTest, SupportsConcurrentParallelFors) {
  // Several threads fan out over the shared pool at once — the server's
  // steady state (each connection thread running one engine call). Each
  // ParallelFor's completion latch is its own; results must not interleave.
  constexpr int kCallers = 3;
  constexpr int64_t kWork = 211;
  std::vector<std::vector<int>> results(kCallers, std::vector<int>(kWork, -1));
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&results, t] {
      ParallelFor(SharedThreadPool(), kWork, [&results, t](int64_t i) {
        results[static_cast<size_t>(t)][static_cast<size_t>(i)] = t * 1000 + static_cast<int>(i);
      });
    });
  }
  for (std::thread& thread : callers) thread.join();
  for (int t = 0; t < kCallers; ++t) {
    for (int64_t i = 0; i < kWork; ++i) {
      EXPECT_EQ(results[static_cast<size_t>(t)][static_cast<size_t>(i)],
                t * 1000 + static_cast<int>(i));
    }
  }
}

TEST(ParallelForTest, RethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  for (int trial = 0; trial < 8; ++trial) {
    try {
      ParallelFor(&pool, 64, [&](int64_t i) {
        if (i >= 3) throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "ParallelFor did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");  // deterministic despite scheduling
    }
  }
}

TEST(ParallelMapTest, ResultsLandInIndexOrder) {
  ThreadPool pool(8);
  std::vector<int64_t> squares = ParallelMap<int64_t>(&pool, 100, [](int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
}

// ---------------------------------------------------------------------------
// Rng sub-streams
// ---------------------------------------------------------------------------

TEST(RngStreamTest, StreamsAreDeterministic) {
  Rng root(7);
  Rng a = root.Stream(3);
  Rng b = root.Stream(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
}

TEST(RngStreamTest, StreamZeroMatchesPlainSeed) {
  // Stream 0 is the raw seed, so Rng(seed) sequences — every pre-existing
  // experiment — are unchanged.
  Rng plain(42);
  Rng stream0 = Rng(42).Stream(0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(plain.UniformInt(0, 1 << 30), stream0.UniformInt(0, 1 << 30));
  }
}

TEST(RngStreamTest, StreamsAreIndependentOfParentDrawPosition) {
  Rng a(11);
  Rng b(11);
  for (int i = 0; i < 17; ++i) (void)b.Uniform();  // advance b only
  Rng sa = a.Stream(5);
  Rng sb = b.Stream(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sa.UniformInt(0, 1 << 30), sb.UniformInt(0, 1 << 30));
}

TEST(RngStreamTest, DistinctStreamsDecorrelate) {
  Rng root(123);
  std::set<int64_t> firsts;
  for (uint64_t s = 0; s < 64; ++s) {
    Rng stream = root.Stream(s);
    firsts.insert(stream.UniformInt(0, (int64_t{1} << 62)));
  }
  // 64 streams, 63-bit range: any collision means the mixing is broken.
  EXPECT_EQ(firsts.size(), 64u);
}

TEST(RngStreamTest, StreamsSafeToDrawConcurrently) {
  // One sub-stream per task is the supported pattern; each stream must
  // produce its deterministic sequence regardless of scheduling.
  Rng root(99);
  std::vector<double> expected;
  for (uint64_t s = 0; s < 16; ++s) expected.push_back(Rng(99, s + 1).Uniform());
  ThreadPool pool(4);
  std::vector<double> got = ParallelMap<double>(&pool, 16, [&](int64_t i) {
    Rng stream = root.Stream(static_cast<uint64_t>(i) + 1);
    return stream.Uniform();
  });
  EXPECT_EQ(got, expected);
}

// ---------------------------------------------------------------------------
// Engine determinism across thread counts
// ---------------------------------------------------------------------------

// The fig08 panel: district x village x year severity, years committed so
// every complaint shares the "drill geo to villages" extension.
Dataset MakePanel() {
  Table table;
  int district = table.AddDimensionColumn("district");
  int village = table.AddDimensionColumn("village");
  int year = table.AddDimensionColumn("year");
  int severity = table.AddMeasureColumn("severity");
  uint64_t state = 8;
  auto noise = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (int d = 0; d < 6; ++d) {
    for (int v = 0; v < 4; ++v) {
      std::string district_name = "d" + std::to_string(d);
      std::string village_name = district_name + "_v" + std::to_string(v);
      for (int y = 0; y < 8; ++y) {
        for (int r = 0; r < 3; ++r) {
          table.SetDim(district, district_name);
          table.SetDim(village, village_name);
          table.SetDim(year, "y" + std::to_string(y));
          table.SetMeasure(severity, 5.0 + 0.4 * d + 0.25 * y + noise());
          table.CommitRow();
        }
      }
    }
  }
  Result<Dataset> dataset = Dataset::Make(
      std::move(table), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < 8; ++y) {
    complaints.push_back(
        ComplaintSpec::TooHigh("std", "severity").Where("year", "y" + std::to_string(y)));
  }
  // A mean complaint over a different slice, so the batch mixes aggregates.
  complaints.push_back(ComplaintSpec::TooHigh("mean", "severity").Where("year", "y0"));
  return complaints;
}

// Full structural equality, timing fields excluded (those legitimately vary
// with scheduling; everything else must be bit-identical).
void ExpectSameResponse(const ExploreResponse& a, const ExploreResponse& b) {
  EXPECT_EQ(a.complaint, b.complaint);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  EXPECT_EQ(a.best_index, b.best_index);
  for (size_t c = 0; c < a.candidates.size(); ++c) {
    const HierarchyResponse& ca = a.candidates[c];
    const HierarchyResponse& cb = b.candidates[c];
    EXPECT_EQ(ca.hierarchy, cb.hierarchy);
    EXPECT_EQ(ca.attribute, cb.attribute);
    EXPECT_EQ(ca.model_rows, cb.model_rows);
    EXPECT_EQ(ca.model_clusters, cb.model_clusters);
    // Bit-identical, not approximately equal: the parallel path must run the
    // exact same floating-point program per fit.
    EXPECT_EQ(ca.best_score, cb.best_score);
    ASSERT_EQ(ca.groups.size(), cb.groups.size());
    for (size_t g = 0; g < ca.groups.size(); ++g) {
      const GroupResponse& ga = ca.groups[g];
      const GroupResponse& gb = cb.groups[g];
      EXPECT_EQ(ga.description, gb.description);
      EXPECT_EQ(ga.key, gb.key);
      EXPECT_EQ(ga.observed, gb.observed);
      EXPECT_EQ(ga.predicted, gb.predicted);
      EXPECT_EQ(ga.repaired, gb.repaired);
      EXPECT_EQ(ga.repaired_complaint_value, gb.repaired_complaint_value);
      EXPECT_EQ(ga.score, gb.score);
    }
  }
}

Session MakePanelSession(int num_threads) {
  Result<Session> session =
      Session::Create(MakePanel(), ExploreRequest().Threads(num_threads));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  Status committed = session->Commit("time");
  EXPECT_TRUE(committed.ok()) << committed.ToString();
  return std::move(session).value();
}

TEST(ParallelEngineTest, BatchIdenticalAcrossThreadCounts) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Session sequential = MakePanelSession(1);
  Result<BatchExploreResponse> reference =
      sequential.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (int threads : {2, 8}) {
    Session parallel = MakePanelSession(threads);
    Result<BatchExploreResponse> batch =
        parallel.RecommendAll(std::span<const ComplaintSpec>(complaints));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->models_trained, reference->models_trained);
    ASSERT_EQ(batch->responses.size(), reference->responses.size());
    for (size_t i = 0; i < batch->responses.size(); ++i) {
      ExpectSameResponse(batch->responses[i], reference->responses[i]);
    }
  }
}

TEST(ParallelEngineTest, BatchMatchesSequentialRecommends) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Session one_by_one = MakePanelSession(8);
  Session batched = MakePanelSession(8);
  Result<BatchExploreResponse> batch =
      batched.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t i = 0; i < complaints.size(); ++i) {
    Result<ExploreResponse> single = one_by_one.Recommend(complaints[i]);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    ExpectSameResponse(batch->responses[i], *single);
  }
}

TEST(ParallelEngineTest, PerCallOverridesApplyToOneCallOnly) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Session session = MakePanelSession(1);
  Result<BatchExploreResponse> reference =
      session.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Same call with per-call threads + top_k overrides: same recommendations,
  // truncated to one group per candidate.
  Result<BatchExploreResponse> overridden = session.RecommendAll(
      std::span<const ComplaintSpec>(complaints), BatchOptions().Threads(4).TopK(1));
  ASSERT_TRUE(overridden.ok()) << overridden.status().ToString();
  for (size_t i = 0; i < complaints.size(); ++i) {
    const ExploreResponse& ref = reference->responses[i];
    const ExploreResponse& got = overridden->responses[i];
    EXPECT_EQ(got.best_index, ref.best_index);
    ASSERT_EQ(got.candidates.size(), ref.candidates.size());
    for (size_t c = 0; c < got.candidates.size(); ++c) {
      EXPECT_EQ(got.candidates[c].best_score, ref.candidates[c].best_score);
      EXPECT_LE(got.candidates[c].groups.size(), 1u);
      if (!ref.candidates[c].groups.empty()) {
        ASSERT_EQ(got.candidates[c].groups.size(), 1u);
        EXPECT_EQ(got.candidates[c].groups[0].description,
                  ref.candidates[c].groups[0].description);
      }
    }
  }

  // The override did not stick to the session.
  Result<BatchExploreResponse> after =
      session.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  for (size_t i = 0; i < complaints.size(); ++i) {
    ExpectSameResponse(after->responses[i], reference->responses[i]);
  }
}

TEST(ParallelEngineTest, SharedPoolAndOwnedPoolAreIdentical) {
  // Default sessions fan out over the process-wide SharedThreadPool() when
  // the width is the machine default; SharedPool(false) opts out into an
  // engine-owned pool. Recommendations must be identical either way.
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  int width = ThreadPool::DefaultThreads();
  Session shared = MakePanelSession(width);
  Result<Session> owned_session =
      Session::Create(MakePanel(), ExploreRequest().Threads(width).SharedPool(false));
  ASSERT_TRUE(owned_session.ok()) << owned_session.status().ToString();
  ASSERT_TRUE(owned_session->Commit("time").ok());

  Result<BatchExploreResponse> from_shared =
      shared.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(from_shared.ok()) << from_shared.status().ToString();
  Result<BatchExploreResponse> from_owned =
      owned_session->RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(from_owned.ok()) << from_owned.status().ToString();
  ASSERT_EQ(from_shared->responses.size(), from_owned->responses.size());
  for (size_t i = 0; i < from_shared->responses.size(); ++i) {
    ExpectSameResponse(from_shared->responses[i], from_owned->responses[i]);
  }
}

TEST(ParallelEngineTest, PerCallExtraRepairStatsOverride) {
  // MEAN decomposes into {mean} alone, so the per-call extra visibly adds a
  // "count" prediction; an engaged-but-empty list strips the session-level
  // extras for that call only.
  ComplaintSpec complaint = ComplaintSpec::TooHigh("mean", "severity").Where("year", "y0");
  Session plain = MakePanelSession(1);
  Result<ExploreResponse> without = plain.Recommend(complaint);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  const GroupResponse& without_group = without->best()->groups.front();
  EXPECT_EQ(without_group.predicted.count("count"), 0u);

  Result<ExploreResponse> with_extra =
      plain.Recommend(complaint, BatchOptions().RepairAlso("count"));
  ASSERT_TRUE(with_extra.ok()) << with_extra.status().ToString();
  EXPECT_EQ(with_extra->best()->groups.front().predicted.count("count"), 1u);

  // The override did not stick to the session.
  Result<ExploreResponse> after = plain.Recommend(complaint);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->best()->groups.front().predicted.count("count"), 0u);

  // Session-level extras, toggled off per call.
  Result<Session> with_session_extras =
      Session::Create(MakePanel(), ExploreRequest().Threads(1).RepairAlso("count"));
  ASSERT_TRUE(with_session_extras.ok()) << with_session_extras.status().ToString();
  ASSERT_TRUE(with_session_extras->Commit("time").ok());
  Result<ExploreResponse> session_extra = with_session_extras->Recommend(complaint);
  ASSERT_TRUE(session_extra.ok());
  EXPECT_EQ(session_extra->best()->groups.front().predicted.count("count"), 1u);
  Result<ExploreResponse> toggled_off =
      with_session_extras->Recommend(complaint, BatchOptions().NoExtraRepairStats());
  ASSERT_TRUE(toggled_off.ok());
  EXPECT_EQ(toggled_off->best()->groups.front().predicted.count("count"), 0u);

  // Unknown statistic names are rejected before any work happens.
  EXPECT_EQ(plain.Recommend(complaint, BatchOptions().RepairAlso("median")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParallelEngineTest, RejectsNegativeOverrides) {
  Session session = MakePanelSession(1);
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y0");
  EXPECT_EQ(session.RecommendAll({complaint}, BatchOptions().Threads(-1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.RecommendAll({complaint}, BatchOptions().TopK(-2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Session::Create(MakePanel(), ExploreRequest().Threads(-3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParallelEngineTest, BatchTimingReportsWorkAndWall) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Session session = MakePanelSession(4);
  Result<BatchExploreResponse> batch =
      session.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_GT(batch->wall_seconds, 0.0);
  EXPECT_GT(batch->train_seconds, 0.0);
  // Summed per-fit durations must equal the per-candidate charges: nothing
  // is double-counted and nothing is lost.
  double charged = 0.0;
  for (const ExploreResponse& response : batch->responses) {
    for (const HierarchyResponse& cand : response.candidates) {
      charged += cand.train_seconds;
      EXPECT_GE(cand.total_seconds, cand.train_seconds);
    }
  }
  EXPECT_NEAR(batch->train_seconds, charged, 1e-9);
  std::string json = batch->ToJson();
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"train_seconds\""), std::string::npos);
}

// Randomized chain datasets (the Section 5.1.3 generator): several seeds,
// engine-level comparison at 1 / 2 / 8 threads.
TEST(ParallelEngineTest, RandomizedDatagenIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    SyntheticOptions options;
    options.num_hierarchies = 3;
    options.attrs_per_hierarchy = 2;
    options.cardinality = 5;
    options.random_branching = true;
    options.seed = seed;
    Dataset dataset = MakeChainDataset(options, /*rows=*/400);

    Complaint complaint;
    complaint.agg = AggFn::kMean;
    complaint.measure_column = dataset.table().ColumnIndex("m");
    complaint.direction = ComplaintDirection::kTooHigh;

    std::vector<Recommendation> reference;
    {
      EngineOptions engine_options;
      engine_options.num_threads = 1;
      Engine engine(&dataset, engine_options);
      reference = engine.RecommendBatch(std::span<const Complaint>(&complaint, 1));
    }
    for (int threads : {2, 8}) {
      EngineOptions engine_options;
      engine_options.num_threads = threads;
      Engine engine(&dataset, engine_options);
      std::vector<Recommendation> got =
          engine.RecommendBatch(std::span<const Complaint>(&complaint, 1));
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].best_index, reference[i].best_index);
        ASSERT_EQ(got[i].candidates.size(), reference[i].candidates.size());
        for (size_t c = 0; c < got[i].candidates.size(); ++c) {
          const HierarchyRecommendation& ca = got[i].candidates[c];
          const HierarchyRecommendation& cb = reference[i].candidates[c];
          EXPECT_EQ(ca.hierarchy, cb.hierarchy);
          EXPECT_EQ(ca.attribute, cb.attribute);
          EXPECT_EQ(ca.best_score, cb.best_score);
          ASSERT_EQ(ca.top_groups.size(), cb.top_groups.size());
          for (size_t g = 0; g < ca.top_groups.size(); ++g) {
            EXPECT_EQ(ca.top_groups[g].description, cb.top_groups[g].description);
            EXPECT_EQ(ca.top_groups[g].key, cb.top_groups[g].key);
            EXPECT_EQ(ca.top_groups[g].score, cb.top_groups[g].score);
            EXPECT_EQ(ca.top_groups[g].repaired_complaint_value,
                      cb.top_groups[g].repaired_complaint_value);
            EXPECT_EQ(ca.top_groups[g].predicted, cb.top_groups[g].predicted);
          }
        }
      }
    }
  }
}

// Drill several levels deep with commits between parallel batches: the
// drill-down cache prefetch must stay coherent with committed state.
TEST(ParallelEngineTest, CommitLoopIdenticalAcrossThreadCounts) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Session sequential = MakePanelSession(1);
  Session parallel = MakePanelSession(8);
  for (int round = 0; round < 2; ++round) {
    Result<BatchExploreResponse> a =
        sequential.RecommendAll(std::span<const ComplaintSpec>(complaints));
    Result<BatchExploreResponse> b =
        parallel.RecommendAll(std::span<const ComplaintSpec>(complaints));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    for (size_t i = 0; i < complaints.size(); ++i) {
      ExpectSameResponse(b->responses[i], a->responses[i]);
    }
    ASSERT_TRUE(sequential.Commit("geo").ok());
    ASSERT_TRUE(parallel.Commit("geo").ok());
  }
}

}  // namespace
}  // namespace reptile
