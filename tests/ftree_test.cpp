// Tests for factor/ftree: construction, leaf counts (local COUNT aggregates),
// ancestor lookups, leaf indexing, and cursor traversal.

#include "common/rng.h"
#include "factor/ftree.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

// The running-example geography hierarchy of Figure 3: districts d0, d1 with
// villages {v0, v1} under d0 and {v2} under d1.
FTree MakeGeoTree() {
  return FTree::FromPaths({{0, 0}, {0, 1}, {1, 2}}, 2);
}

TEST(FTree, BasicShape) {
  FTree tree = MakeGeoTree();
  EXPECT_EQ(tree.depth(), 2);
  EXPECT_EQ(tree.num_nodes(0), 2);
  EXPECT_EQ(tree.num_nodes(1), 3);
  EXPECT_EQ(tree.num_leaves(), 3);
}

TEST(FTree, LeafCountsAreLocalCounts) {
  FTree tree = MakeGeoTree();
  EXPECT_EQ(tree.level(0).leaf_count[0], 2);  // d0 has 2 villages
  EXPECT_EQ(tree.level(0).leaf_count[1], 1);  // d1 has 1 village
  EXPECT_EQ(tree.level(1).leaf_count[0], 1);
}

TEST(FTree, ParentsAndChildren) {
  FTree tree = MakeGeoTree();
  EXPECT_EQ(tree.level(1).parent[0], 0);
  EXPECT_EQ(tree.level(1).parent[2], 1);
  EXPECT_EQ(tree.level(0).first_child[0], 0);
  EXPECT_EQ(tree.level(0).num_children[0], 2);
  EXPECT_EQ(tree.level(0).first_child[1], 2);
  EXPECT_EQ(tree.level(0).num_children[1], 1);
}

TEST(FTree, DeduplicatesPaths) {
  FTree tree = FTree::FromPaths({{0, 0}, {0, 0}, {0, 1}}, 2);
  EXPECT_EQ(tree.num_leaves(), 2);
}

TEST(FTree, DirtyFunctionalDependency) {
  // Value 5 appears under two districts: node identity is the path, so the
  // tree keeps both and the leaf counts stay consistent.
  FTree tree = FTree::FromPaths({{0, 5}, {1, 5}}, 2);
  EXPECT_EQ(tree.num_nodes(1), 2);
  EXPECT_EQ(tree.level(0).leaf_count[0], 1);
  EXPECT_EQ(tree.level(0).leaf_count[1], 1);
}

TEST(FTree, AncestorAt) {
  FTree tree = FTree::FromPaths({{0, 0, 0}, {0, 0, 1}, {0, 1, 2}, {1, 2, 3}}, 3);
  EXPECT_EQ(tree.AncestorAt(2, 0, 0), 0);
  EXPECT_EQ(tree.AncestorAt(2, 3, 0), 1);
  EXPECT_EQ(tree.AncestorAt(2, 2, 1), 1);
  EXPECT_EQ(tree.AncestorAt(1, 1, 1), 1);  // self
}

TEST(FTree, LeafIndexAndPathRoundTrip) {
  FTree tree = FTree::FromPaths({{0, 0, 0}, {0, 0, 1}, {0, 1, 2}, {1, 2, 3}}, 3);
  for (int64_t leaf = 0; leaf < tree.num_leaves(); ++leaf) {
    std::vector<int32_t> path = tree.LeafPath(leaf);
    EXPECT_EQ(tree.LeafIndex(path.data(), 3), leaf);
  }
  std::vector<int32_t> missing = {0, 1, 99};
  EXPECT_EQ(tree.LeafIndex(missing.data(), 3), -1);
  std::vector<int32_t> missing_root = {9, 0, 0};
  EXPECT_EQ(tree.LeafIndex(missing_root.data(), 3), -1);
}

TEST(FTree, Singleton) {
  FTree tree = FTree::Singleton();
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.level(0).leaf_count[0], 1);
}

TEST(FTree, FromTable) {
  Table t;
  int d = t.AddDimensionColumn("d");
  int v = t.AddDimensionColumn("v");
  int m = t.AddMeasureColumn("m");
  auto add = [&](const std::string& dv, const std::string& vv) {
    t.SetDim(d, dv);
    t.SetDim(v, vv);
    t.SetMeasure(m, 0.0);
    t.CommitRow();
  };
  add("d0", "v0");
  add("d0", "v0");  // duplicate row, one leaf
  add("d0", "v1");
  add("d1", "v2");
  FTree tree = FTree::FromTable(t, {d, v});
  EXPECT_EQ(tree.num_leaves(), 3);
  EXPECT_EQ(tree.level(0).leaf_count[0], 2);

  RowFilter filter;
  filter.Add(d, *t.dict(d).Find("d1"));
  FTree filtered = FTree::FromTable(t, {d, v}, filter);
  EXPECT_EQ(filtered.num_leaves(), 1);
}

TEST(FTreeCursor, VisitsAllNodesInOrder) {
  FTree tree = FTree::FromPaths({{0, 0, 0}, {0, 0, 1}, {0, 1, 2}, {1, 2, 3}}, 3);
  FTree::Cursor cursor(&tree, 2);
  std::vector<int64_t> visited;
  visited.push_back(cursor.position());
  while (true) {
    int top = cursor.Advance();
    if (top < 0) break;
    visited.push_back(cursor.position());
    // Invariant: the tracked path is consistent with the parent pointers.
    for (int l = 2; l > 0; --l) {
      EXPECT_EQ(tree.level(l).parent[cursor.node(l)], cursor.node(l - 1));
    }
  }
  EXPECT_EQ(visited, (std::vector<int64_t>{0, 1, 2, 3}));
  // After wrap the cursor is back at the start.
  EXPECT_EQ(cursor.position(), 0);
}

TEST(FTreeCursor, ReportsTopChangedLevel) {
  FTree tree = FTree::FromPaths({{0, 0, 0}, {0, 0, 1}, {0, 1, 2}, {1, 2, 3}}, 3);
  FTree::Cursor cursor(&tree, 2);
  EXPECT_EQ(cursor.Advance(), 2);  // leaf 0 -> 1: only village changes
  EXPECT_EQ(cursor.Advance(), 1);  // leaf 1 -> 2: district level changes
  EXPECT_EQ(cursor.Advance(), 0);  // leaf 2 -> 3: region level changes
  EXPECT_EQ(cursor.Advance(), -1);
}

// Property: for random trees, leaf counts at every level sum to the total
// number of leaves, and LeafIndex inverts LeafPath.
class FTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(FTreeRandomTest, Invariants) {
  Rng rng(GetParam());
  int depth = static_cast<int>(rng.UniformInt(1, 4));
  int num_paths = static_cast<int>(rng.UniformInt(1, 60));
  std::vector<std::vector<int32_t>> paths;
  for (int p = 0; p < num_paths; ++p) {
    std::vector<int32_t> path(depth);
    for (int l = 0; l < depth; ++l) path[l] = static_cast<int32_t>(rng.UniformInt(0, 5));
    paths.push_back(path);
  }
  FTree tree = FTree::FromPaths(paths, depth);
  for (int l = 0; l < depth; ++l) {
    int64_t total = 0;
    for (int64_t node = 0; node < tree.num_nodes(l); ++node) {
      total += tree.level(l).leaf_count[node];
    }
    EXPECT_EQ(total, tree.num_leaves()) << "level " << l;
  }
  for (int64_t leaf = 0; leaf < tree.num_leaves(); ++leaf) {
    std::vector<int32_t> path = tree.LeafPath(leaf);
    EXPECT_EQ(tree.LeafIndex(path.data(), depth), leaf);
  }
  // Children of every node are contiguous and in tree order.
  for (int l = 0; l + 1 < depth; ++l) {
    for (int64_t node = 0; node < tree.num_nodes(l); ++node) {
      int64_t first = tree.level(l).first_child[node];
      int64_t count = tree.level(l).num_children[node];
      EXPECT_GT(count, 0);
      for (int64_t c = first; c < first + count; ++c) {
        EXPECT_EQ(tree.level(l + 1).parent[c], node);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FTreeRandomTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace reptile
