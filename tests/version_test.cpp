// The incremental-version subsystem (version/, api/registry.h chains):
// "name@vK" parsing, the MatchedPrefixDepth dirty planner, AppendRowsCsv's
// dirty analysis and schema gate, the append-vs-cold-rebuild byte
// differential, pinned-session isolation across appends, version-chain
// resolution/GC/counters in DatasetRegistry, the concurrent append-vs-
// recommend race scripts/check.sh re-runs under TSan, and the flattened
// snapshot round-trip of an appended head.

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/dataset_snapshot.h"
#include "data/csv.h"
#include "datagen/panel_gen.h"
#include "factor/agg_cache.h"
#include "factor/ftree.h"
#include "gtest/gtest.h"
#include "reptile/reptile.h"
#include "sim/oracle.h"
#include "version/append.h"
#include "version/version.h"

namespace reptile {
namespace {

// Panel naming: districts d0..d3, villages dX_v0..dX_v2, years y0..y3.
// Hierarchy 0 is geo (district > village, depth 2), hierarchy 1 is time
// (year, depth 1).
constexpr int kGeo = 0;
constexpr int kTime = 1;

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 4;
  spec.villages_per_district = 3;
  spec.years = 4;
  spec.rows_per_group = 3;
  return MakeSeverityPanel(spec);
}

ComplaintSpec YearComplaint(int year) {
  return ComplaintSpec::TooHigh("std", "severity")
      .Where("year", "y" + std::to_string(year));
}

std::string TimelessJson(ExploreResponse response) {
  for (HierarchyResponse& candidate : response.candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
  return response.ToJson();
}

// Severity values in the deltas are dyadic rationals so the CSV round trip
// through RenderTableCsv re-parses to bit-identical doubles.
constexpr char kNewVillageDelta[] =
    "district,village,year,severity\n"
    "d0,d0_x,y0,5.5\n";

// Data rows of a delta CSV (everything after the header line).
std::string DataRows(const std::string& delta_csv) {
  return delta_csv.substr(delta_csv.find('\n') + 1);
}

DatasetHandle PrepareFromCsv(const std::string& csv) {
  CsvSpec spec;
  spec.dimension_columns = {"district", "village", "year"};
  spec.measure_columns = {"severity"};
  CsvStreamParser parser(spec, "test csv");
  parser.Feed(csv);
  Result<Table> table = parser.Finish();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  Result<Dataset> dataset = Dataset::Make(
      std::move(table).value(), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset).value());
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  return std::move(handle).value();
}

TEST(VersionName, ParsesAndFormatsTheAtVSpelling) {
  std::string base;
  int64_t version = 0;
  ASSERT_TRUE(ParseVersionedName("sales@v3", &base, &version));
  EXPECT_EQ(base, "sales");
  EXPECT_EQ(version, 3);
  ASSERT_TRUE(ParseVersionedName("panel@v12", &base, &version));
  EXPECT_EQ(base, "panel");
  EXPECT_EQ(version, 12);

  // The LAST "@v" wins, so chained spellings still parse.
  ASSERT_TRUE(ParseVersionedName("a@v2@v3", &base, &version));
  EXPECT_EQ(base, "a@v2");
  EXPECT_EQ(version, 3);

  // Not versioned names: plain, empty base, zero, junk digits, bare suffix.
  EXPECT_FALSE(ParseVersionedName("sales", &base, &version));
  EXPECT_FALSE(ParseVersionedName("@v2", &base, &version));
  EXPECT_FALSE(ParseVersionedName("sales@v0", &base, &version));
  EXPECT_FALSE(ParseVersionedName("sales@vx", &base, &version));
  EXPECT_FALSE(ParseVersionedName("sales@v", &base, &version));
  EXPECT_FALSE(ParseVersionedName("sales@v1x", &base, &version));

  EXPECT_EQ(FormatVersionedName("sales", 3), "sales@v3");
  std::string roundtrip = FormatVersionedName("panel", 7);
  ASSERT_TRUE(ParseVersionedName(roundtrip, &base, &version));
  EXPECT_EQ(base, "panel");
  EXPECT_EQ(version, 7);
}

// The dirty planner's primitive: a delta row matched to m levels introduces
// new distinct prefixes of every length > m, so MatchedPrefixDepth must
// report exactly how deep a path is already known.
TEST(FTreeMatchedPrefix, ReportsTheShallowestNovelLevel) {
  // The Figure 4 geo shape: villages {0, 1} under d0, village {2} under d1.
  FTree geo = FTree::FromPaths({{0, 0}, {0, 1}, {1, 2}}, 2);
  const std::vector<int32_t> known = {0, 1};
  const std::vector<int32_t> new_village = {1, 0};  // d1 exists, village 0 under it doesn't
  const std::vector<int32_t> new_district = {7, 0};
  EXPECT_EQ(geo.MatchedPrefixDepth(known.data(), 2), 2);
  EXPECT_EQ(geo.MatchedPrefixDepth(new_village.data(), 2), 1);
  EXPECT_EQ(geo.MatchedPrefixDepth(new_district.data(), 2), 0);

  FTree time = FTree::FromPaths({{0}, {1}}, 1);
  const std::vector<int32_t> known_year = {1};
  const std::vector<int32_t> new_year = {9};
  EXPECT_EQ(time.MatchedPrefixDepth(known_year.data(), 1), 1);
  EXPECT_EQ(time.MatchedPrefixDepth(new_year.data(), 1), 0);
}

// A new village under an existing district dirties ONLY (geo, 2): depth 1's
// distinct districts are unchanged and time never sees a new year, so both
// keep the parent's epoch — same cache keys, zero rebuilds there.
TEST(AppendRowsCsv, NewVillageDirtiesOnlyTheDeepGeoSubtree) {
  Result<DatasetHandle> v1 = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(v1.ok());
  const size_t base_rows = (*v1)->table().num_rows();

  Result<AppendResult> appended = AppendRowsCsv(*v1, kNewVillageDelta);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->appended_rows, 1u);
  EXPECT_EQ(appended->total_rows, base_rows + 1);
  EXPECT_EQ(appended->child->version(), 2);
  EXPECT_EQ(appended->child->version_token(), "2");
  EXPECT_EQ((*v1)->version_token(), "");

  // geo dirties from depth 2, time stays fully clean (depth + 1).
  ASSERT_EQ(appended->dirty_from.size(), 2u);
  EXPECT_EQ(appended->dirty_from[kGeo], 2);
  EXPECT_EQ(appended->dirty_from[kTime], 2);
  EXPECT_EQ(appended->invalidated_entries, 1);
  EXPECT_EQ(appended->shared_entries, 2);

  // Epochs: clean (h, d) keep the parent's epoch — same cache key — and the
  // dirtied one moves to the child's version id.
  const AggregateEpochs& epochs = appended->child->epochs();
  EXPECT_EQ(epochs.at(kGeo, 1), 1);
  EXPECT_EQ(epochs.at(kGeo, 2), 2);
  EXPECT_EQ(epochs.at(kTime, 1), 1);

  // Structural sharing is literal: one cache object for the whole chain.
  EXPECT_EQ(&appended->child->cache(), &(*v1)->cache());
  EXPECT_EQ(&appended->child->model_cache(), &(*v1)->model_cache());
}

TEST(AppendRowsCsv, NewDistrictAndNewYearDirtyFromTheRoot) {
  Result<DatasetHandle> v1 = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(v1.ok());

  // A new district invalidates both geo depths; time (existing year) is clean.
  Result<AppendResult> new_district = AppendRowsCsv(
      *v1, "district,village,year,severity\nd9,d9_v0,y0,4.5\n");
  ASSERT_TRUE(new_district.ok()) << new_district.status().ToString();
  EXPECT_EQ(new_district->dirty_from[kGeo], 1);
  EXPECT_EQ(new_district->dirty_from[kTime], 2);
  EXPECT_EQ(new_district->invalidated_entries, 2);
  EXPECT_EQ(new_district->shared_entries, 1);
  EXPECT_EQ(new_district->child->epochs().at(kGeo, 1), 2);
  EXPECT_EQ(new_district->child->epochs().at(kGeo, 2), 2);
  EXPECT_EQ(new_district->child->epochs().at(kTime, 1), 1);

  // A new year under an existing (district, village) leaves geo fully clean.
  Result<AppendResult> new_year = AppendRowsCsv(
      *v1, "district,village,year,severity\nd0,d0_v0,y9,7.125\n");
  ASSERT_TRUE(new_year.ok()) << new_year.status().ToString();
  EXPECT_EQ(new_year->dirty_from[kGeo], 3);
  EXPECT_EQ(new_year->dirty_from[kTime], 1);
  EXPECT_EQ(new_year->invalidated_entries, 1);
  EXPECT_EQ(new_year->shared_entries, 2);
  EXPECT_EQ(new_year->child->epochs().at(kGeo, 1), 1);
  EXPECT_EQ(new_year->child->epochs().at(kGeo, 2), 1);
  EXPECT_EQ(new_year->child->epochs().at(kTime, 1), 2);
}

// The schema gate: appends cannot change the column set (and thereby the
// hierarchy shape), and the 400 names the exact offending column.
TEST(AppendRowsCsv, SchemaChangingAppendsAreRejectedByColumn) {
  Result<DatasetHandle> v1 = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(v1.ok());

  Result<AppendResult> missing = AppendRowsCsv(
      *v1, "district,village,year\nd0,d0_x,y0\n");
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.status().ToString().find("missing column 'severity'"),
            std::string::npos)
      << missing.status().ToString();

  Result<AppendResult> unknown = AppendRowsCsv(
      *v1, "district,village,year,severity,extra\nd0,d0_x,y0,5.5,1\n");
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.status().ToString().find("unknown column 'extra'"),
            std::string::npos)
      << unknown.status().ToString();

  Result<AppendResult> empty = AppendRowsCsv(
      *v1, "district,village,year,severity\n");
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.status().ToString().find("no data rows"), std::string::npos)
      << empty.status().ToString();

  EXPECT_EQ(AppendRowsCsv(DatasetHandle(), kNewVillageDelta).status().code(),
            StatusCode::kInvalidArgument);

  // Column ORDER is not schema: a reordered header appends fine.
  Result<AppendResult> reordered = AppendRowsCsv(
      *v1, "severity,year,village,district\n5.5,y0,d0_x,d0\n");
  ASSERT_TRUE(reordered.ok()) << reordered.status().ToString();
  EXPECT_EQ(reordered->appended_rows, 1u);
  EXPECT_EQ(reordered->dirty_from[kGeo], 2);
}

// The tentpole differential: every version built incrementally must answer
// byte-identically to a COLD dataset built from the concatenated CSV — at
// the shallow state and after drilling into the dirtied hierarchy.
TEST(AppendRowsCsv, ChainMatchesColdRebuildByteForByte) {
  Result<DatasetHandle> v1 = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(v1.ok());
  const std::string base_csv = RenderTableCsv((*v1)->table());
  const std::string delta_a =
      "district,village,year,severity\n"
      "d0,d0_x,y0,5.5\n"
      "d1,d1_x,y1,6.25\n";
  const std::string delta_b =
      "district,village,year,severity\n"
      "d9,d9_v0,y0,4.5\n"
      "d0,d0_v0,y9,7.125\n";

  Result<AppendResult> second = AppendRowsCsv(*v1, delta_a);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  Result<AppendResult> third = AppendRowsCsv(second->child, delta_b);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->child->version(), 3);

  struct Pair {
    DatasetHandle incremental;
    DatasetHandle cold;
  };
  const std::vector<Pair> pairs = {
      {second->child, PrepareFromCsv(base_csv + DataRows(delta_a))},
      {third->child, PrepareFromCsv(base_csv + DataRows(delta_a) + DataRows(delta_b))},
  };
  for (size_t p = 0; p < pairs.size(); ++p) {
    Result<Session> incremental = Session::Open(pairs[p].incremental);
    Result<Session> cold = Session::Open(pairs[p].cold);
    ASSERT_TRUE(incremental.ok() && cold.ok());
    ASSERT_TRUE(incremental->Commit("time").ok() && cold->Commit("time").ok());
    for (int y = 0; y < 4; ++y) {
      Result<ExploreResponse> a = incremental->Recommend(YearComplaint(y));
      Result<ExploreResponse> b = cold->Recommend(YearComplaint(y));
      ASSERT_TRUE(a.ok() && b.ok()) << a.status().ToString() << b.status().ToString();
      EXPECT_EQ(TimelessJson(*a), TimelessJson(*b))
          << "version " << p + 2 << " diverged from its cold rebuild at year " << y;
    }
    // Drill into geo — the hierarchy the deltas dirtied — and compare there.
    ASSERT_TRUE(incremental->Commit("geo").ok() && cold->Commit("geo").ok());
    ComplaintSpec deep = ComplaintSpec::TooHigh("mean", "severity").Where("district", "d1");
    Result<ExploreResponse> a = incremental->Recommend(deep);
    Result<ExploreResponse> b = cold->Recommend(deep);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(TimelessJson(*a), TimelessJson(*b))
        << "version " << p + 2 << " diverged after drilling geo";
  }
}

// Pinned-session isolation: sessions opened over the parent before an append
// keep answering the same bytes, from fully warm caches — the append flushed
// nothing they read.
TEST(AppendRowsCsv, PinnedSessionsAreUndisturbedByAppends) {
  Result<DatasetHandle> v1 = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(v1.ok());
  Result<Session> pinned = Session::Open(*v1);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned->Commit("time").ok());
  ASSERT_TRUE(pinned->Commit("geo").ok());
  Result<ExploreResponse> before = pinned->Recommend(YearComplaint(1));
  ASSERT_TRUE(before.ok());
  const std::string before_bytes = TimelessJson(*before);
  const int64_t builds_before = pinned->aggregate_builds();
  const int64_t trained_before = pinned->models_trained();
  EXPECT_GT(builds_before, 0);

  Result<AppendResult> appended = AppendRowsCsv(*v1, kNewVillageDelta);
  ASSERT_TRUE(appended.ok());

  // Same session, same bytes, not one build or fit more.
  Result<ExploreResponse> after = pinned->Recommend(YearComplaint(1));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(TimelessJson(*after), before_bytes);
  EXPECT_EQ(pinned->aggregate_builds(), builds_before);
  EXPECT_EQ(pinned->models_trained(), trained_before);

  // A FRESH session over the pinned version finds everything resident too:
  // the append invalidated by moving epochs, not by flushing.
  Result<Session> warm = Session::Open(*v1);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->RestoreCommitted({{"time", 1}, {"geo", 1}}).ok());
  Result<ExploreResponse> fresh = warm->Recommend(YearComplaint(1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(TimelessJson(*fresh), before_bytes);
  EXPECT_EQ(warm->aggregate_builds(), 0);
  EXPECT_EQ(warm->models_trained(), 0);
}

// DatasetRegistry's chain mechanics: head/@vK resolution, AppendVersion's
// succession check and counters, the unpinned-ancestor GC (inline and via
// CollectGarbage), VersionSummaries, and Remove dropping the whole chain.
TEST(DatasetRegistry, VersionChainsResolveAppendAndRetire) {
  DatasetRegistry registry;
  Result<DatasetHandle> v1 = registry.Add("panel", MakePanel());
  ASSERT_TRUE(v1.ok());

  // Resolution: plain name and @v1 are the same handle; other versions 404.
  Result<DatasetHandle> head = registry.Find("panel");
  Result<DatasetHandle> pinned = registry.Find("panel@v1");
  ASSERT_TRUE(head.ok() && pinned.ok());
  EXPECT_EQ(head->get(), v1->get());
  EXPECT_EQ(pinned->get(), v1->get());
  EXPECT_EQ(registry.Find("panel@v2").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Find("panel@v0").status().code(), StatusCode::kNotFound);

  Result<AppendResult> appended = AppendRowsCsv(*v1, kNewVillageDelta);
  ASSERT_TRUE(appended.ok());
  Result<int64_t> retired =
      registry.AppendVersion("panel", appended->child, appended->invalidated_entries);
  ASSERT_TRUE(retired.ok()) << retired.status().ToString();
  // This test still holds v1 handles, so the inline sweep retires nothing.
  EXPECT_EQ(*retired, 0);
  EXPECT_EQ(registry.cache_invalidations(), appended->invalidated_entries);
  EXPECT_EQ(registry.versions_gc(), 0);

  // Head moved; the parent is still addressable while pinned.
  Result<DatasetHandle> new_head = registry.Find("panel");
  ASSERT_TRUE(new_head.ok());
  EXPECT_EQ((*new_head)->version(), 2);
  EXPECT_TRUE(registry.Find("panel@v1").ok());

  std::vector<DatasetVersionSummary> summaries = registry.VersionSummaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].name, "panel");
  EXPECT_EQ(summaries[0].head, 2);
  EXPECT_EQ(summaries[0].live, (std::vector<int64_t>{1, 2}));

  // A stale append (child built from v1 while the head is already v2) lost
  // the race and must be refused, not spliced in.
  Result<AppendResult> stale = AppendRowsCsv(*v1, kNewVillageDelta);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(registry
                .AppendVersion("panel", stale->child, stale->invalidated_entries)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  // Drop every v1 pin, re-sweep: now the ancestor retires and @v1 is gone.
  v1 = Status::NotFound("dropped");
  head = Status::NotFound("dropped");
  pinned = Status::NotFound("dropped");
  Result<int64_t> collected = registry.CollectGarbage("panel");
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(*collected, 1);
  EXPECT_EQ(registry.versions_gc(), 1);
  EXPECT_EQ(registry.Find("panel@v1").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Find("panel").ok());
  // Idempotent: nothing left to collect.
  Result<int64_t> again = registry.CollectGarbage("panel");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
  EXPECT_EQ(registry.CollectGarbage("nope").status().code(), StatusCode::kNotFound);

  // Remove drops the WHOLE chain under the name, not just the head.
  ASSERT_TRUE(registry.Remove("panel").ok());
  EXPECT_EQ(registry.Find("panel").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Find("panel@v2").status().code(), StatusCode::kNotFound);
  // The removed head stays alive through the handle the append returned.
  EXPECT_EQ(appended->child->table().num_rows(), 4u * 3u * 4u * 3u + 1u);
}

// The TSan half: readers pinned to v1 validate bytes against a golden while
// another thread appends v2 and v3 through the registry and head readers
// open whatever version is current. The shared cache, the epoch table, and
// the chain map are all racing underneath.
TEST(DatasetRegistry, ConcurrentAppendAndPinnedRecommends) {
  DatasetRegistry registry;
  Result<DatasetHandle> v1 = registry.Add("panel", MakePanel());
  ASSERT_TRUE(v1.ok());

  // Golden bytes from a private copy so the shared cache starts cold.
  Result<Session> golden = Session::Create(MakePanel());
  ASSERT_TRUE(golden.ok());
  ASSERT_TRUE(golden->Commit("time").ok());
  Result<ExploreResponse> golden_response = golden->Recommend(YearComplaint(1));
  ASSERT_TRUE(golden_response.ok());
  const std::string expected = TimelessJson(*golden_response);

  constexpr int kReaders = 3;
  constexpr int kIterations = 4;
  std::vector<int> failures(kReaders + 2, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        Result<Session> session = Session::Open(*v1);
        if (!session.ok() || !session->Commit("time").ok()) {
          ++failures[t];
          continue;
        }
        Result<ExploreResponse> response = session->Recommend(YearComplaint(1));
        if (!response.ok() || TimelessJson(*response) != expected) ++failures[t];
      }
    });
  }
  // The appender: two successive versions, each a new village under d0.
  workers.emplace_back([&] {
    for (int k = 1; k <= 2; ++k) {
      Result<DatasetHandle> parent = registry.Find("panel");
      if (!parent.ok()) {
        ++failures[kReaders];
        return;
      }
      Result<AppendResult> appended = AppendRowsCsv(
          *parent, "district,village,year,severity\nd0,d0_a" + std::to_string(k) +
                       ",y0,5.5\n");
      if (!appended.ok()) {
        ++failures[kReaders];
        return;
      }
      if (!registry.AppendVersion("panel", appended->child, appended->invalidated_entries)
               .ok()) {
        ++failures[kReaders];
      }
    }
  });
  // A head reader: opens whatever version is current and recommends.
  workers.emplace_back([&] {
    for (int i = 0; i < kIterations; ++i) {
      Result<DatasetHandle> current = registry.Find("panel");
      if (!current.ok()) {
        ++failures[kReaders + 1];
        continue;
      }
      Result<Session> session = Session::Open(*current);
      if (!session.ok() || !session->Commit("time").ok()) {
        ++failures[kReaders + 1];
        continue;
      }
      if (!session->Recommend(YearComplaint(1)).ok()) ++failures[kReaders + 1];
    }
  });
  for (std::thread& worker : workers) worker.join();
  for (size_t t = 0; t < failures.size(); ++t) {
    EXPECT_EQ(failures[t], 0) << "worker " << t << " failed or diverged";
  }

  Result<DatasetHandle> final_head = registry.Find("panel");
  ASSERT_TRUE(final_head.ok());
  EXPECT_EQ((*final_head)->version(), 3);
  EXPECT_TRUE(registry.Find("panel@v1").ok());  // this test still pins v1
}

// Snapshot satellite: persisting an appended head writes it FLATTENED — the
// restore is version 1 of a fresh chain (lineage is not persisted) — but the
// bytes it answers and the fitted models it carries survive intact.
TEST(VersionSnapshot, AppendedHeadRoundTripsFlattenedAndWarm) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "reptile_version_test.head.snap").string();
  Result<DatasetHandle> v1 = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(v1.ok());
  Result<AppendResult> appended = AppendRowsCsv(*v1, kNewVillageDelta);
  ASSERT_TRUE(appended.ok());
  const DatasetHandle& v2 = appended->child;

  // Warm v2 so the snapshot has version-2 aggregates and models to carry.
  Result<Session> warm = Session::Open(v2);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Commit("time").ok());
  Result<ExploreResponse> original = warm->Recommend(YearComplaint(1));
  ASSERT_TRUE(original.ok());
  EXPECT_GT(warm->models_trained(), 0);

  ASSERT_TRUE(SavePreparedDataset(*v2, path).ok());
  Result<DatasetHandle> loaded = LoadPreparedDataset(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Flattened: the restored dataset is version 1 again, with v1-spelled keys.
  EXPECT_EQ((*loaded)->version(), 1);
  EXPECT_EQ((*loaded)->version_token(), "");
  EXPECT_EQ((*loaded)->table().num_rows(), v2->table().num_rows());

  // And warm: same bytes, zero fits — the "|v:2" keys were re-spelled so the
  // restored chain finds them under its own naming.
  Result<Session> restored = Session::Open(*loaded);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored->Commit("time").ok());
  Result<ExploreResponse> replay = restored->Recommend(YearComplaint(1));
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(TimelessJson(*replay), TimelessJson(*original));
  EXPECT_EQ(restored->models_trained(), 0)
      << "snapshot failed to carry the appended head's fitted models";
}

}  // namespace
}  // namespace reptile
