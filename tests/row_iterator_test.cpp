// Tests for factor/row_iterator: full enumeration equals direct row decoding,
// and change reports are minimal and correct.

#include "common/rng.h"
#include "factor/row_iterator.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

struct TreeSet {
  std::vector<FTree> trees;
  FactorizedMatrix fm;
};

// Builds a random forest of trees (first one the intercept).
TreeSet MakeRandomTrees(Rng* rng, int num_hierarchies) {
  TreeSet set;
  set.trees.reserve(num_hierarchies + 1);
  set.trees.push_back(FTree::Singleton());
  for (int h = 0; h < num_hierarchies; ++h) {
    int depth = static_cast<int>(rng->UniformInt(1, 3));
    int paths = static_cast<int>(rng->UniformInt(1, 8));
    std::vector<std::vector<int32_t>> ps;
    for (int p = 0; p < paths; ++p) {
      std::vector<int32_t> path(depth);
      for (int l = 0; l < depth; ++l) path[l] = static_cast<int32_t>(rng->UniformInt(0, 3));
      ps.push_back(path);
    }
    set.trees.push_back(FTree::FromPaths(ps, depth));
  }
  for (const FTree& t : set.trees) set.fm.AddTree(&t);
  return set;
}

TEST(RowIterator, EnumeratesRowsInOrder) {
  Rng rng(4);
  TreeSet set = MakeRandomTrees(&rng, 2);
  RowIterator it(set.fm);
  std::vector<AttrChange> changed;
  int64_t expected_row = 0;
  for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
    EXPECT_EQ(it.row(), expected_row);
    ++expected_row;
  }
  EXPECT_EQ(expected_row, set.fm.num_rows());
}

class RowIteratorRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RowIteratorRandomTest, TracksCodesExactly) {
  Rng rng(GetParam());
  int hierarchies = static_cast<int>(rng.UniformInt(1, 3));
  TreeSet set = MakeRandomTrees(&rng, hierarchies);
  RowIterator it(set.fm);
  std::vector<AttrChange> changed;
  std::vector<int32_t> tracked(set.fm.num_attrs(), -1);
  std::vector<int32_t> expected;
  for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
    for (const AttrChange& c : changed) tracked[c.flat_attr] = c.code;
    set.fm.DecodeRowToCodes(it.row(), &expected);
    EXPECT_EQ(tracked, expected) << "row " << it.row();
    // The iterator's own accessors agree.
    for (int a = 0; a < set.fm.num_attrs(); ++a) {
      EXPECT_EQ(it.code(a), expected[a]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowIteratorRandomTest, ::testing::Range(0, 15));

TEST(RowIterator, FirstStepReportsAllAttrs) {
  Rng rng(1);
  TreeSet set = MakeRandomTrees(&rng, 2);
  RowIterator it(set.fm);
  std::vector<AttrChange> changed;
  ASSERT_TRUE(it.Start(&changed));
  EXPECT_EQ(static_cast<int>(changed.size()), set.fm.num_attrs());
}

TEST(RowIterator, ChangesAreAmortizedSmall) {
  // Over a full scan the number of reported changes is O(rows + nodes), far
  // below rows * attrs for deep trees.
  FTree intercept = FTree::Singleton();
  std::vector<std::vector<int32_t>> paths;
  for (int32_t i = 0; i < 32; ++i) paths.push_back({i / 16, (i / 4) % 4, i % 4});
  FTree deep = FTree::FromPaths(paths, 3);
  FactorizedMatrix fm;
  fm.AddTree(&intercept);
  fm.AddTree(&deep);
  RowIterator it(fm);
  std::vector<AttrChange> changed;
  int64_t total_changes = 0;
  for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
    total_changes += static_cast<int64_t>(changed.size());
  }
  // 4 attrs on the first row + ~1.3 changes per subsequent row.
  EXPECT_LT(total_changes, 32 + 4 + 32 / 4 + 32 / 16 + 8);
}

}  // namespace
}  // namespace reptile
