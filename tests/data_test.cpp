// Tests for data/: dictionaries, tables, datasets, group-by, CSV round trips.

#include <cstdio>
#include <fstream>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/group_by.h"
#include "data/table.h"
#include "data/value_dict.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

TEST(ValueDict, RoundTrip) {
  ValueDict dict;
  int32_t a = dict.GetOrAdd("alpha");
  int32_t b = dict.GetOrAdd("beta");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(dict.GetOrAdd("alpha"), a);
  EXPECT_EQ(dict.name(a), "alpha");
  EXPECT_EQ(dict.size(), 2);
  EXPECT_EQ(dict.Find("beta"), b);
  EXPECT_FALSE(dict.Find("gamma").has_value());
}

Table MakeVillageTable() {
  Table t;
  int district = t.AddDimensionColumn("district");
  int village = t.AddDimensionColumn("village");
  int severity = t.AddMeasureColumn("severity");
  auto add = [&](const std::string& d, const std::string& v, double s) {
    t.SetDim(district, d);
    t.SetDim(village, v);
    t.SetMeasure(severity, s);
    t.CommitRow();
  };
  add("Ofla", "Adishim", 8.0);
  add("Ofla", "Adishim", 9.0);
  add("Ofla", "Zata", 2.0);
  add("Raya", "Kukufto", 5.0);
  add("Raya", "Kukufto", 7.0);
  add("Raya", "Genete", 6.0);
  return t;
}

TEST(Table, BasicShape) {
  Table t = MakeVillageTable();
  EXPECT_EQ(t.num_rows(), 6u);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_TRUE(t.is_dimension(0));
  EXPECT_FALSE(t.is_dimension(2));
  EXPECT_EQ(t.ColumnIndex("village"), 1);
  EXPECT_FALSE(t.FindColumn("missing").has_value());
  EXPECT_EQ(t.dict(0).size(), 2);
  EXPECT_EQ(t.dim_codes(1).size(), 6u);
  EXPECT_DOUBLE_EQ(t.measure(2)[2], 2.0);
}

TEST(Table, FilterMatches) {
  Table t = MakeVillageTable();
  RowFilter filter;
  filter.Add(0, *t.dict(0).Find("Ofla"));
  EXPECT_TRUE(t.Matches(filter, 0));
  EXPECT_FALSE(t.Matches(filter, 3));
}

TEST(Table, FilteredCopy) {
  Table t = MakeVillageTable();
  std::vector<bool> keep = {true, false, true, false, false, true};
  Table copy = t.FilteredCopy(keep);
  EXPECT_EQ(copy.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(copy.measure(2)[1], 2.0);
  // Dictionary is shared, so codes still resolve.
  EXPECT_EQ(copy.dict(1).name(copy.dim_codes(1)[1]), "Zata");
}

TEST(GroupBy, CountsAndMoments) {
  Table t = MakeVillageTable();
  GroupByResult result = GroupBy(t, {0}, 2);
  ASSERT_EQ(result.num_groups(), 2u);
  size_t ofla = *result.Find({*t.dict(0).Find("Ofla")});
  EXPECT_DOUBLE_EQ(result.stats(ofla).count, 3.0);
  EXPECT_DOUBLE_EQ(result.stats(ofla).sum, 19.0);
  size_t raya = *result.Find({*t.dict(0).Find("Raya")});
  EXPECT_DOUBLE_EQ(result.stats(raya).Mean(), 6.0);
}

TEST(GroupBy, MultiKeyAndFilter) {
  Table t = MakeVillageTable();
  RowFilter filter;
  filter.Add(0, *t.dict(0).Find("Raya"));
  GroupByResult result = GroupBy(t, {0, 1}, 2, filter);
  EXPECT_EQ(result.num_groups(), 2u);
  auto idx = result.Find({*t.dict(0).Find("Raya"), *t.dict(1).Find("Genete")});
  ASSERT_TRUE(idx.has_value());
  EXPECT_DOUBLE_EQ(result.stats(*idx).count, 1.0);
  EXPECT_FALSE(result.Find({*t.dict(0).Find("Ofla"), 0}).has_value());
}

TEST(GroupBy, NoMeasureCountsOnly) {
  Table t = MakeVillageTable();
  GroupByResult result = GroupBy(t, {0}, -1);
  size_t ofla = *result.Find({*t.dict(0).Find("Ofla")});
  EXPECT_DOUBLE_EQ(result.stats(ofla).count, 3.0);
  EXPECT_DOUBLE_EQ(result.stats(ofla).sum, 0.0);
}

TEST(Dataset, ResolvesHierarchies) {
  Dataset ds(MakeVillageTable(), {{"geo", {"district", "village"}}});
  EXPECT_EQ(ds.num_hierarchies(), 1);
  EXPECT_EQ(ds.AttrColumn(AttrId{0, 0}), 0);
  EXPECT_EQ(ds.AttrColumn(AttrId{0, 1}), 1);
  EXPECT_EQ(ds.HierarchyColumns(0, 2), (std::vector<int>{0, 1}));
  EXPECT_EQ(ds.AttrName(AttrId{0, 1}), "village");
  AttrId resolved = ds.ResolveAttr("village");
  EXPECT_EQ(resolved, (AttrId{0, 1}));
}

TEST(Csv, SaveLoadRoundTrip) {
  Table t = MakeVillageTable();
  std::string path = ::testing::TempDir() + "/reptile_csv_test.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  CsvSpec spec;
  spec.dimension_columns = {"district", "village"};
  spec.measure_columns = {"severity"};
  auto loaded = LoadCsv(path, spec);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), t.num_rows());
  EXPECT_DOUBLE_EQ(loaded->measure(loaded->ColumnIndex("severity"))[2], 2.0);
  EXPECT_EQ(loaded->dict(loaded->ColumnIndex("village")).name(0), "Adishim");
  std::remove(path.c_str());
}

TEST(Csv, MissingColumnFails) {
  Table t = MakeVillageTable();
  std::string path = ::testing::TempDir() + "/reptile_csv_test2.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  CsvSpec spec;
  spec.dimension_columns = {"district", "nonexistent"};
  EXPECT_FALSE(LoadCsv(path, spec).ok());
  std::remove(path.c_str());
}

TEST(Csv, LoadMissingFileFails) {
  CsvSpec spec;
  EXPECT_FALSE(LoadCsv("/nonexistent/path.csv", spec).ok());
}

TEST(Csv, DuplicateHeaderColumnFails) {
  std::string path = ::testing::TempDir() + "/reptile_csv_dup.csv";
  {
    std::ofstream out(path);
    out << "district,district,severity\nOfla,Ofla,3.5\n";
  }
  CsvSpec spec;
  spec.dimension_columns = {"district"};
  spec.measure_columns = {"severity"};
  Result<Table> loaded = LoadCsv(path, spec);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("more than once"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, TrailingWhitespaceInMeasureIsAccepted) {
  std::string path = ::testing::TempDir() + "/reptile_csv_ws.csv";
  {
    std::ofstream out(path);
    out << "district,severity\nOfla, 3.5 \nRaya,oops\n";
  }
  CsvSpec spec;
  spec.dimension_columns = {"district"};
  spec.measure_columns = {"severity"};
  Result<Table> bad = LoadCsv(path, spec);
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);  // 'oops' on row 2
  EXPECT_NE(bad.status().message().find("row 2"), std::string::npos);
  {
    std::ofstream out(path);
    out << "district,severity\nOfla, 3.5 \n";
  }
  Result<Table> ok = LoadCsv(path, spec);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_DOUBLE_EQ(ok->measure(ok->ColumnIndex("severity"))[0], 3.5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reptile
