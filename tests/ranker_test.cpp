// Tests for core/ranker: repaired-complaint scoring and ordering, including
// the paper's Example 8 (Darube vs Zata).

#include "core/ranker.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

// Builds a sibling set replaying Example 8: the Ofla 1986 count is 62, the
// complaint says it should be 70. Candidate repairs: Darube's count to 15
// (from 10) -> total 67, or Zata's count to 19 (from 9) -> total 72.
struct Example8 {
  Table table;
  GroupByResult siblings;
  Complaint complaint;

  Example8() {
    int v = table.AddDimensionColumn("village");
    auto add_rows = [&](const std::string& name, int count) {
      for (int i = 0; i < count; ++i) {
        table.SetDim(v, name);
        table.CommitRow();
      }
    };
    add_rows("Adishim", 5);
    add_rows("Darube", 10);
    add_rows("Dinka", 6);
    add_rows("Fala", 11);
    add_rows("Zata", 9);
    add_rows("Other", 21);  // fill to 62 total
    siblings = GroupBy(table, {v}, -1);
    complaint = Complaint::Equals(AggFn::kCount, -1, RowFilter(), 70.0);
  }
};

TEST(Ranker, Example8PrefersZata) {
  Example8 ex;
  GroupPredictions predictions(ex.siblings.num_groups());
  // Model expectations: Darube should have 15 rows, Zata 19; everyone else
  // is as observed.
  for (size_t g = 0; g < ex.siblings.num_groups(); ++g) {
    predictions[g][AggFn::kCount] = ex.siblings.stats(g).count;
  }
  int32_t darube = *ex.table.dict(0).Find("Darube");
  int32_t zata = *ex.table.dict(0).Find("Zata");
  predictions[*ex.siblings.Find({darube})][AggFn::kCount] = 15.0;
  predictions[*ex.siblings.Find({zata})][AggFn::kCount] = 19.0;

  std::vector<ScoredGroup> ranked = RankGroups(ex.siblings, predictions, ex.complaint);
  ASSERT_FALSE(ranked.empty());
  // Zata's repair reaches 72 (fcomp = 2), Darube's 67 (fcomp = 3).
  EXPECT_EQ(ranked[0].key[0], zata);
  EXPECT_DOUBLE_EQ(ranked[0].repaired_complaint_value, 72.0);
  EXPECT_DOUBLE_EQ(ranked[0].score, 2.0);
  EXPECT_EQ(ranked[1].key[0], darube);
  EXPECT_DOUBLE_EQ(ranked[1].score, 3.0);
  // Groups repaired to their observed value leave the total at 62: fcomp 8.
  EXPECT_DOUBLE_EQ(ranked.back().score, 8.0);
}

TEST(Ranker, MeanComplaintRecombination) {
  Table t;
  int g = t.AddDimensionColumn("g");
  int m = t.AddMeasureColumn("m");
  auto add = [&](const std::string& name, double v) {
    t.SetDim(g, name);
    t.SetMeasure(m, v);
    t.CommitRow();
  };
  // Group a: values {10, 10}; group b: values {1}.
  add("a", 10.0);
  add("a", 10.0);
  add("b", 1.0);
  GroupByResult siblings = GroupBy(t, {0}, 1);
  Complaint complaint = Complaint::TooLow(AggFn::kMean, 1, RowFilter());
  GroupPredictions predictions(siblings.num_groups());
  // Model says b's mean should be 10 (missing drought signal).
  predictions[*siblings.Find({*t.dict(0).Find("a")})][AggFn::kMean] = 10.0;
  predictions[*siblings.Find({*t.dict(0).Find("b")})][AggFn::kMean] = 10.0;
  std::vector<ScoredGroup> ranked = RankGroups(siblings, predictions, complaint);
  // Repairing b lifts the overall mean from 7 to 10; repairing a leaves 7.
  EXPECT_EQ(ranked[0].key[0], *t.dict(0).Find("b"));
  EXPECT_NEAR(ranked[0].repaired_complaint_value, 10.0, 1e-9);
}

TEST(Ranker, StableOrderOnTies) {
  Table t;
  int g = t.AddDimensionColumn("g");
  t.SetDim(g, "x");
  t.CommitRow();
  t.SetDim(g, "y");
  t.CommitRow();
  GroupByResult siblings = GroupBy(t, {0}, -1);
  GroupPredictions predictions(2);
  predictions[0][AggFn::kCount] = 1.0;
  predictions[1][AggFn::kCount] = 1.0;
  Complaint complaint = Complaint::Equals(AggFn::kCount, -1, RowFilter(), 2.0);
  std::vector<ScoredGroup> ranked = RankGroups(siblings, predictions, complaint);
  // Equal scores: first-seen order preserved.
  EXPECT_EQ(ranked[0].key[0], 0);
  EXPECT_EQ(ranked[1].key[0], 1);
}

}  // namespace
}  // namespace reptile
