// Tests for common/: stats, rank-correlation induction, rng, env.

#include <cstdlib>

#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

TEST(Stats, MeanAndStd) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(SampleStd(v), 2.13809, 1e-4);
  EXPECT_NEAR(PopulationVariance(v), 4.0, 1e-12);
}

TEST(Stats, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStd({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStd({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
}

TEST(Stats, PearsonPerfect) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  std::vector<double> c = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  std::vector<double> a = {1, 1, 1};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(Stats, RanksAreAPermutation) {
  std::vector<double> v = {0.3, -1.0, 2.5, 0.0};
  std::vector<size_t> r = Ranks(v);
  EXPECT_EQ(r, (std::vector<size_t>{2, 0, 3, 1}));
}

TEST(Stats, SpearmanMonotone) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6};
  std::vector<double> b = {1, 8, 27, 64, 125, 216};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

class ImanConoverTest : public ::testing::TestWithParam<double> {};

TEST_P(ImanConoverTest, AchievesTargetCorrelation) {
  double rho = GetParam();
  Rng rng(7);
  std::vector<double> reference(2000);
  for (double& v : reference) v = rng.Normal(100.0, 20.0);
  std::vector<double> induced = InduceRankCorrelation(reference, rho, 0.0, 1.0, &rng);
  double achieved = SpearmanCorrelation(reference, induced);
  EXPECT_NEAR(achieved, rho, 0.05) << "target rho " << rho;
}

INSTANTIATE_TEST_SUITE_P(CorrelationSweep, ImanConoverTest,
                         ::testing::Values(0.0, 0.3, 0.6, 0.8, 0.9, 1.0, -0.7));

TEST(ImanConover, PreservesMarginal) {
  Rng rng(11);
  std::vector<double> reference(500);
  for (double& v : reference) v = rng.Normal(0.0, 1.0);
  std::vector<double> induced = InduceRankCorrelation(reference, 0.8, 50.0, 5.0, &rng);
  EXPECT_NEAR(Mean(induced), 50.0, 1.0);
  EXPECT_NEAR(SampleStd(induced), 5.0, 1.0);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  std::vector<double> draws(20000);
  for (double& v : draws) v = rng.Normal(10.0, 3.0);
  EXPECT_NEAR(Mean(draws), 10.0, 0.1);
  EXPECT_NEAR(SampleStd(draws), 3.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(1);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Env, DefaultsAndOverrides) {
  EXPECT_EQ(EnvInt("REPTILE_TEST_UNSET_VAR", 42), 42);
  ::setenv("REPTILE_TEST_SET_VAR", "17", 1);
  EXPECT_EQ(EnvInt("REPTILE_TEST_SET_VAR", 42), 17);
  ::setenv("REPTILE_TEST_BAD_VAR", "abc", 1);
  EXPECT_EQ(EnvInt("REPTILE_TEST_BAD_VAR", 42), 42);
  ::setenv("REPTILE_TEST_DOUBLE_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("REPTILE_TEST_DOUBLE_VAR", 1.0), 2.5);
}

}  // namespace
}  // namespace reptile
