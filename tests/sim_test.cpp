// Tests for the workload simulator (src/sim/): discrete-event queue
// ordering, seeded arrival processes (Poisson, MMPP), session-chain
// generation on decoupled Rng streams, schedule determinism (the
// same-seed-same-bytes contract check.sh re-proves end to end), the
// byte-golden oracle, the admission token bucket on a manual clock, and an
// in-process open-loop replay of the steady scenario that must validate
// every response byte.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/csv.h"
#include "datagen/panel_gen.h"
#include "gtest/gtest.h"
#include "net/token_bucket.h"
#include "server/http_server.h"
#include "server/service.h"
#include "sim/arrival.h"
#include "sim/event_queue.h"
#include "sim/open_loop_runner.h"
#include "sim/oracle.h"
#include "sim/session_model.h"
#include "sim/workload.h"

namespace reptile {
namespace {

// --- Event queue ------------------------------------------------------------

TEST(SimEventQueueTest, PopsByTimeThenInsertionOrder) {
  SimEventQueue<int> queue;
  queue.Push(30, 0);
  queue.Push(10, 1);
  queue.Push(20, 2);
  queue.Push(10, 3);  // same instant as payload 1, inserted later
  queue.Push(10, 4);

  std::vector<int> order;
  std::vector<int64_t> times;
  while (!queue.empty()) {
    auto event = queue.Pop();
    order.push_back(event.payload);
    times.push_back(event.time_ns);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4, 2, 0}));
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

// --- Exponential draws ------------------------------------------------------

TEST(RngExponentialTest, DeterministicPositiveAndRoughlyMean) {
  Rng a(7, 3), b(7, 3);
  double sum = 0.0;
  for (int i = 0; i < 4000; ++i) {
    double draw = a.Exponential(0.25);
    EXPECT_GT(draw, 0.0);
    EXPECT_EQ(draw, b.Exponential(0.25));
    sum += draw;
  }
  // Loose 3-sigma-ish band: the point is "right distribution", not a
  // statistical test.
  EXPECT_NEAR(sum / 4000.0, 0.25, 0.05);
}

// --- Arrival processes ------------------------------------------------------

TEST(ArrivalTest, PoissonSameSeedSameSchedule) {
  Rng root(99);
  PoissonArrivals a(20.0, root.Stream(1));
  PoissonArrivals b(20.0, root.Stream(1));
  int64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    int64_t next = a.NextNs();
    EXPECT_EQ(next, b.NextNs());
    EXPECT_GT(next, last);  // strictly increasing, never a zero gap
    last = next;
  }
}

TEST(ArrivalTest, PoissonDifferentStreamsDecorrelated) {
  Rng root(99);
  PoissonArrivals a(20.0, root.Stream(1));
  PoissonArrivals b(20.0, root.Stream(5));
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextNs() == b.NextNs()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(ArrivalTest, MmppDeterministicIncreasingAndVisitsBothStates) {
  MmppArrivals::Params params;
  params.calm_rate_per_second = 5.0;
  params.burst_rate_per_second = 400.0;
  params.mean_calm_seconds = 0.5;
  params.mean_burst_seconds = 0.5;
  Rng root(1234);
  MmppArrivals a(params, root.Stream(2), root.Stream(1));
  MmppArrivals b(params, root.Stream(2), root.Stream(1));
  bool saw_calm = false, saw_burst = false;
  int64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    int64_t next = a.NextNs();
    EXPECT_EQ(next, b.NextNs());
    EXPECT_GT(next, last);
    last = next;
    (a.in_burst() ? saw_burst : saw_calm) = true;
  }
  EXPECT_TRUE(saw_calm);
  EXPECT_TRUE(saw_burst);
  // 2000 arrivals at a 5/400 blend should take well under a minute of
  // virtual time — sanity that rates are interpreted as per-second.
  EXPECT_LT(last, int64_t{60} * 1000000000);
}

// --- Session chains ---------------------------------------------------------

TEST(SessionModelTest, ChainShapeAndDeterminism) {
  Rng root(42);
  SessionModelParams params;
  SessionChain chain = BuildSessionChain(root, 3, params);
  SessionChain again = BuildSessionChain(root, 3, params);

  ASSERT_EQ(chain.ops.size(), again.ops.size());
  ASSERT_EQ(chain.ops.size(), chain.offsets_ns.size());
  ASSERT_GE(chain.ops.size(), static_cast<size_t>(2 + params.min_ops));
  EXPECT_EQ(chain.ops.front().kind, SimOpKind::kSessionCreate);
  EXPECT_EQ(chain.ops.back().kind, SimOpKind::kSessionDelete);
  EXPECT_EQ(chain.ops[chain.ops.size() - 2].kind, SimOpKind::kSessionGet);
  for (size_t i = 0; i < chain.ops.size(); ++i) {
    EXPECT_EQ(chain.ops[i].session_index, 3);
    EXPECT_EQ(chain.ops[i].body, again.ops[i].body);
    EXPECT_EQ(chain.offsets_ns[i], again.offsets_ns[i]);
    if (i > 0) {
      EXPECT_GT(chain.offsets_ns[i], chain.offsets_ns[i - 1]);
    }
  }
}

TEST(SessionModelTest, ThinkTimeStreamDoesNotRetimeTheOpMix) {
  // Think-time and op-mix draws live on separate sub-streams: changing the
  // think-time parameter must shift WHEN ops fire but never WHICH ops they
  // are — the decorrelation that makes scenario tuning safe.
  Rng root(42);
  SessionModelParams slow, fast;
  slow.mean_think_seconds = 1.0;
  fast.mean_think_seconds = 0.001;
  SessionChain a = BuildSessionChain(root, 0, slow);
  SessionChain b = BuildSessionChain(root, 0, fast);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].body, b.ops[i].body);
  }
  EXPECT_GT(a.offsets_ns.back(), b.offsets_ns.back());
}

TEST(SessionModelTest, MaxCommitsZeroMeansNoCommits) {
  Rng root(7);
  SessionModelParams params;
  params.max_commits = 0;
  params.min_ops = 8;
  params.max_ops = 8;
  for (int session = 0; session < 20; ++session) {
    SessionChain chain = BuildSessionChain(root, session, params);
    for (const SimOp& op : chain.ops) {
      EXPECT_NE(op.kind, SimOpKind::kCommit);
    }
  }
}

// --- Schedules --------------------------------------------------------------

TEST(WorkloadTest, SameSeedByteIdenticalScheduleDump) {
  for (const ScenarioSpec& spec : {SteadyScenario(), BurstScenario(), ChurnScenario()}) {
    std::vector<ScheduledOp> a = BuildSchedule(spec, 42);
    std::vector<ScheduledOp> b = BuildSchedule(spec, 42);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(DumpSchedule(spec, 42, a), DumpSchedule(spec, 42, b));
    EXPECT_EQ(ScheduleDigest(spec, 42, a), ScheduleDigest(spec, 42, b));
    EXPECT_EQ(ScheduleDigest(spec, 42, a).size(), size_t{16});

    std::vector<ScheduledOp> other = BuildSchedule(spec, 43);
    EXPECT_NE(DumpSchedule(spec, 42, a), DumpSchedule(spec, 43, other));
  }
}

TEST(WorkloadTest, ScheduleGloballyOrderedAndPerSessionInChainOrder) {
  ScenarioSpec spec = SteadyScenario();
  std::vector<ScheduledOp> schedule = BuildSchedule(spec, 7);
  ASSERT_FALSE(schedule.empty());

  std::map<int, std::vector<SimOpKind>> per_session;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) {
      const ScheduledOp& prev = schedule[i - 1];
      EXPECT_TRUE(prev.time_ns < schedule[i].time_ns ||
                  (prev.time_ns == schedule[i].time_ns && prev.seq < schedule[i].seq));
    }
    per_session[schedule[i].op.session_index].push_back(schedule[i].op.kind);
  }
  for (const auto& [session, kinds] : per_session) {
    EXPECT_EQ(kinds.front(), SimOpKind::kSessionCreate) << "session " << session;
    EXPECT_EQ(kinds.back(), SimOpKind::kSessionDelete) << "session " << session;
    EXPECT_EQ(std::count(kinds.begin(), kinds.end(), SimOpKind::kSessionCreate), 1);
    EXPECT_EQ(std::count(kinds.begin(), kinds.end(), SimOpKind::kSessionDelete), 1);
  }
}

TEST(WorkloadTest, ChurnScheduleInterleavesFeederWritesWithPinnedAnalysts) {
  ScenarioSpec spec = ChurnScenario();
  std::vector<ScheduledOp> schedule = BuildSchedule(spec, 42);
  ASSERT_FALSE(schedule.empty());

  int appends = 0;
  std::vector<int64_t> feeder_pins;
  bool analyst_seen = false;
  for (const ScheduledOp& item : schedule) {
    const SimOp& op = item.op;
    if (op.kind == SimOpKind::kAppend) {
      ++appends;
      EXPECT_EQ(op.session_index, 0);
      EXPECT_EQ(op.method, "POST");
      EXPECT_EQ(op.path, "/v1/datasets/@DS@/rows");
      EXPECT_NE(op.body.find("\"csv\":"), std::string::npos);
      EXPECT_NE(op.append_csv.find("district,village,year,severity\n"),
                std::string::npos);
    } else if (op.kind == SimOpKind::kSessionCreate) {
      if (op.session_index == 0) {
        feeder_pins.push_back(op.pin_version);
      } else {
        analyst_seen = true;
        // Every analyst pins version 1 — the isolation half of the scenario.
        EXPECT_EQ(op.pin_version, 1);
        EXPECT_NE(op.body.find("\"dataset\":\"@DS@@v1\""), std::string::npos);
      }
    }
  }
  EXPECT_EQ(appends, spec.feeder_appends);
  // The feeder pins v1 (the guard), then each new head as it creates it.
  ASSERT_EQ(feeder_pins.size(), static_cast<size_t>(1 + spec.feeder_appends));
  EXPECT_EQ(feeder_pins[0], 1);
  for (int k = 1; k <= spec.feeder_appends; ++k) {
    EXPECT_EQ(feeder_pins[static_cast<size_t>(k)], k + 1);
  }
  EXPECT_TRUE(analyst_seen);
}

TEST(WorkloadTest, BurstScenarioRespectsSessionCap) {
  ScenarioSpec spec = BurstScenario();
  spec.max_sessions = 10;
  std::vector<ScheduledOp> schedule = BuildSchedule(spec, 42);
  std::set<int> sessions;
  for (const ScheduledOp& item : schedule) sessions.insert(item.op.session_index);
  EXPECT_LE(sessions.size(), size_t{10});
}

// --- Oracle -----------------------------------------------------------------

TEST(OracleTest, RenderTableCsvRoundTripsBitExactly) {
  PanelSpec panel;
  panel.districts = 3;
  panel.villages_per_district = 2;
  panel.years = 3;
  panel.rows_per_group = 2;
  Dataset dataset = MakeSeverityPanel(panel);
  const Table& table = dataset.table();

  CsvSpec spec;
  spec.dimension_columns = {"district", "village", "year"};
  spec.measure_columns = {"severity"};
  CsvStreamParser parser(spec, "inline csv");
  ASSERT_TRUE(parser.Feed(RenderTableCsv(table)));
  Result<Table> parsed = parser.Finish();
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->num_rows(), table.num_rows());
  ASSERT_EQ(parsed->num_columns(), table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) {
    for (size_t row = 0; row < table.num_rows(); ++row) {
      if (table.is_dimension(c)) {
        EXPECT_EQ(parsed->dict(c).name(parsed->dim_codes(c)[row]),
                  table.dict(c).name(table.dim_codes(c)[row]));
      } else {
        // Bit-exact: %.17g + strtod round-trips every finite double.
        EXPECT_EQ(parsed->measure(c)[row], table.measure(c)[row]);
      }
    }
  }
}

TEST(OracleTest, ExpectedResponsesDeterministicAndShaped) {
  ScenarioSpec spec = SteadyScenario();
  spec.arrival_window_seconds = 0.5;
  std::vector<ScheduledOp> schedule = BuildSchedule(spec, 11);
  ASSERT_FALSE(schedule.empty());

  WorkloadOracle a{SimDatasetSpec{}};
  WorkloadOracle b{SimDatasetSpec{}};
  EXPECT_EQ(a.upload_body(), b.upload_body());
  EXPECT_EQ(a.upload_response(), b.upload_response());

  std::vector<ExpectedResponse> ea = a.ExpectedResponses(schedule);
  std::vector<ExpectedResponse> eb = b.ExpectedResponses(schedule);
  ASSERT_EQ(ea.size(), schedule.size());
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].status, eb[i].status);
    EXPECT_EQ(ea[i].body, eb[i].body);
    if (schedule[i].op.kind == SimOpKind::kSessionCreate) {
      EXPECT_EQ(ea[i].status, 201);
      EXPECT_NE(ea[i].body.find("\"session\":\"@SID@\""), std::string::npos);
    } else {
      EXPECT_EQ(ea[i].status, 200);
    }
  }
}

// --- Token bucket (manual clock) --------------------------------------------

TEST(TokenBucketTest, BurstThenSustainedRate) {
  TokenBucket bucket(/*rate_per_second=*/1.0, /*burst=*/3.0);
  double retry_after = -1.0;
  // The bucket starts full: the whole burst is admitted back-to-back.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(bucket.TryAcquireAt(0.0, &retry_after));
    EXPECT_EQ(retry_after, 0.0);
  }
  // Empty now; the refusal quotes the time until one token exists.
  EXPECT_FALSE(bucket.TryAcquireAt(0.0, &retry_after));
  EXPECT_NEAR(retry_after, 1.0, 1e-9);
  // Half a token at +0.5s: still refused, retry halves.
  EXPECT_FALSE(bucket.TryAcquireAt(0.5, &retry_after));
  EXPECT_NEAR(retry_after, 0.5, 1e-9);
  // A full second after the drain, exactly one request fits.
  EXPECT_TRUE(bucket.TryAcquireAt(1.0, &retry_after));
  EXPECT_FALSE(bucket.TryAcquireAt(1.0, &retry_after));
}

TEST(TokenBucketTest, RefillCapsAtBurstAndTimeNeverRunsBackwards) {
  TokenBucket bucket(/*rate_per_second=*/10.0, /*burst=*/2.0);
  double retry_after = 0.0;
  EXPECT_TRUE(bucket.TryAcquireAt(0.0, &retry_after));
  // A long idle stretch refills to the cap, not beyond it.
  EXPECT_TRUE(bucket.TryAcquireAt(100.0, &retry_after));
  EXPECT_TRUE(bucket.TryAcquireAt(100.0, &retry_after));
  EXPECT_FALSE(bucket.TryAcquireAt(100.0, &retry_after));
  // An out-of-order (earlier) timestamp must not mint tokens.
  EXPECT_FALSE(bucket.TryAcquireAt(99.0, &retry_after));
}

TEST(TokenBucketTest, DefaultBurstIsAtLeastOne) {
  TokenBucket bucket(/*rate_per_second=*/0.5, /*burst=*/0.0);
  EXPECT_GE(bucket.burst(), 1.0);
  double retry_after = 0.0;
  EXPECT_TRUE(bucket.TryAcquireAt(0.0, &retry_after));
  EXPECT_FALSE(bucket.TryAcquireAt(0.0, &retry_after));
}

// --- End-to-end open-loop replay -------------------------------------------

TEST(OpenLoopTest, SteadyScenarioValidatesEveryByteInProcess) {
  ReptileService service{ServiceOptions()};
  HttpServerOptions options;
  options.num_threads = 4;
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.Handle(request);
  });
  ASSERT_TRUE(server.Start().ok());

  ScenarioSpec spec = SteadyScenario();
  spec.arrival_window_seconds = 0.6;  // keep the replay's wall time test-sized
  const uint64_t seed = 5;
  std::vector<ScheduledOp> schedule = BuildSchedule(spec, seed);
  ASSERT_FALSE(schedule.empty());

  SimDatasetSpec dataset;
  dataset.name = "sim_steady_test";
  dataset.panel = spec.panel;
  WorkloadOracle oracle(dataset);
  std::vector<ExpectedResponse> expected = oracle.ExpectedResponses(schedule);

  RunnerOptions runner;
  runner.port = server.port();
  runner.workers = 4;
  ScenarioReport report = RunOpenLoop(runner, oracle, schedule, expected);
  server.Stop();

  EXPECT_EQ(report.scheduled_ops, static_cast<int64_t>(schedule.size()));
  EXPECT_EQ(report.sent, report.scheduled_ops);
  EXPECT_EQ(report.ok, report.scheduled_ops);
  EXPECT_EQ(report.mismatches, 0);
  EXPECT_EQ(report.failures, 0);
  EXPECT_EQ(report.timeouts, 0);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.rps, 0.0);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"p50_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"mismatches\":0"), std::string::npos);
}

TEST(OpenLoopTest, ChurnScenarioAppendsMidRunAndStillValidatesEveryByte) {
  ReptileService service{ServiceOptions()};
  HttpServerOptions options;
  options.num_threads = 4;
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.Handle(request);
  });
  ASSERT_TRUE(server.Start().ok());

  ScenarioSpec spec = ChurnScenario();
  spec.arrival_window_seconds = 0.6;  // shrinks the feeder spacing too
  const uint64_t seed = 9;
  std::vector<ScheduledOp> schedule = BuildSchedule(spec, seed);
  ASSERT_FALSE(schedule.empty());
  int appends = 0;
  for (const ScheduledOp& item : schedule) {
    if (item.op.kind == SimOpKind::kAppend) ++appends;
  }
  ASSERT_EQ(appends, spec.feeder_appends);

  SimDatasetSpec dataset;
  dataset.name = "sim_churn_test";
  dataset.panel = spec.panel;
  WorkloadOracle oracle(dataset);
  std::vector<ExpectedResponse> expected = oracle.ExpectedResponses(schedule);

  RunnerOptions runner;
  runner.port = server.port();
  runner.workers = 4;
  ScenarioReport report = RunOpenLoop(runner, oracle, schedule, expected);
  server.Stop();

  // The hard part of this replay: two appends land mid-run, yet every
  // response — pinned-@v1 analysts AND the feeder's probes of v2/v3 — must
  // match the oracle byte for byte. A flushy cache, a moved session, or any
  // incremental-vs-cold build divergence all surface here as mismatches.
  EXPECT_EQ(report.sent, static_cast<int64_t>(schedule.size()));
  EXPECT_EQ(report.ok, report.sent);
  EXPECT_EQ(report.mismatches, 0);
  EXPECT_EQ(report.failures, 0);
  EXPECT_EQ(report.timeouts, 0);
  EXPECT_EQ(report.skipped, 0);
}

}  // namespace
}  // namespace reptile
