// Tests for the public reptile::Session facade: the happy-path
// explore/commit loop, every name-based validation error (all returning
// non-OK Status without terminating the process), and the batched
// RecommendAll equivalence with sequential single-complaint calls.

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

// 4 districts x 5 villages x 6 years; severity = district + year effects +
// noise, with a drift error in (d0, v0, y3) and missing rows in (d1, v2, y2).
Table MakeDroughtTable() {
  Rng rng(7);
  Table table;
  int district_col = table.AddDimensionColumn("district");
  int village_col = table.AddDimensionColumn("village");
  int year_col = table.AddDimensionColumn("year");
  int severity_col = table.AddMeasureColumn("severity");
  for (int d = 0; d < 4; ++d) {
    for (int v = 0; v < 5; ++v) {
      std::string district = "d" + std::to_string(d);
      std::string village = district + "_v" + std::to_string(v);
      for (int y = 0; y < 6; ++y) {
        int rows = (d == 1 && v == 2 && y == 2) ? 2 : 8;
        for (int r = 0; r < rows; ++r) {
          double base = 5.0 + 0.5 * d + 0.3 * y + rng.Normal(0.0, 0.2);
          if (d == 0 && v == 0 && y == 3) base += 5.0;
          table.SetDim(district_col, district);
          table.SetDim(village_col, village);
          table.SetDim(year_col, "y" + std::to_string(y));
          table.SetMeasure(severity_col, base);
          table.CommitRow();
        }
      }
    }
  }
  return table;
}

std::vector<HierarchySchema> DroughtHierarchies() {
  return {{"geo", {"district", "village"}}, {"time", {"year"}}};
}

Session MakeSession(const ExploreRequest& options = {}) {
  Result<Session> session = Session::Create(MakeDroughtTable(), DroughtHierarchies(), options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

TEST(ApiSession, HappyPathExploreCommitLoop) {
  Session session = MakeSession();
  ASSERT_TRUE(session.Commit("time").ok());
  EXPECT_EQ(*session.DrillDepth("time"), 1);

  ComplaintSpec complaint =
      ComplaintSpec::TooHigh("mean", "severity").Where("year", "y3");
  Result<ExploreResponse> response = session.Recommend(complaint);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->has_recommendation());
  const HierarchyResponse* best = response->best();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->hierarchy, "geo");
  EXPECT_EQ(best->attribute, "district");
  ASSERT_FALSE(best->groups.empty());
  EXPECT_NE(best->groups[0].description.find("district=d0"), std::string::npos);
  // The response is plain data: named keys and named statistics.
  EXPECT_EQ(best->groups[0].key[0].first, "year");
  EXPECT_EQ(best->groups[0].key[0].second, "y3");
  EXPECT_TRUE(best->groups[0].observed.count("mean"));
  EXPECT_TRUE(best->groups[0].predicted.count("mean"));

  // Commit the recommendation by name and drill further.
  ASSERT_TRUE(session.Commit(best->hierarchy).ok());
  ComplaintSpec complaint2 = complaint;
  complaint2.Where("district", "d0");
  Result<ExploreResponse> response2 = session.Recommend(complaint2);
  ASSERT_TRUE(response2.ok()) << response2.status().ToString();
  const HierarchyResponse* best2 = response2->best();
  ASSERT_NE(best2, nullptr);
  EXPECT_EQ(best2->attribute, "village");
  ASSERT_FALSE(best2->groups.empty());
  EXPECT_NE(best2->groups[0].description.find("village=d0_v0"), std::string::npos);

  // Responses serialise to JSON.
  std::string json = response2->ToJson();
  EXPECT_NE(json.find("\"candidates\""), std::string::npos);
  EXPECT_NE(json.find("\"village\""), std::string::npos);
}

TEST(ApiSession, CreateValidatesHierarchyMetadata) {
  EXPECT_EQ(Session::Create(MakeDroughtTable(), {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Session::Create(MakeDroughtTable(), {{"geo", {"nonexistent"}}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Session::Create(MakeDroughtTable(), {{"geo", {"severity"}}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Session::Create(MakeDroughtTable(), {{"geo", {"district"}}, {"geo", {"year"}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Session::Create(MakeDroughtTable(),
                            {{"geo", {"district"}}, {"geo2", {"district"}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ApiSession, CreateValidatesOptions) {
  auto code_for = [&](const ExploreRequest& options) {
    return Session::Create(MakeDroughtTable(), DroughtHierarchies(), options).status().code();
  };
  EXPECT_EQ(code_for(ExploreRequest().TopK(0)), StatusCode::kInvalidArgument);
  EXPECT_EQ(code_for(ExploreRequest().Model("deep_net")), StatusCode::kInvalidArgument);
  EXPECT_EQ(code_for(ExploreRequest().Backend("gpu")), StatusCode::kInvalidArgument);
  EXPECT_EQ(code_for(ExploreRequest().RandomEffects("some")), StatusCode::kInvalidArgument);
  EXPECT_EQ(code_for(ExploreRequest().DrillCache("lru")), StatusCode::kInvalidArgument);
  EXPECT_EQ(code_for(ExploreRequest().EmIterations(-1)), StatusCode::kInvalidArgument);
  EXPECT_EQ(code_for(ExploreRequest().RepairAlso("median")), StatusCode::kInvalidArgument);
}

TEST(ApiSession, RecommendValidatesComplaints) {
  Session session = MakeSession();
  ASSERT_TRUE(session.Commit("time").ok());
  auto code_for = [&](const ComplaintSpec& spec) {
    Result<ExploreResponse> response = session.Recommend(spec);
    EXPECT_FALSE(response.ok());
    return response.status().code();
  };

  // Unknown aggregate name.
  EXPECT_EQ(code_for(ComplaintSpec::TooHigh("median", "severity")),
            StatusCode::kInvalidArgument);
  // Unknown measure column.
  EXPECT_EQ(code_for(ComplaintSpec::TooHigh("mean", "sevarity")), StatusCode::kNotFound);
  // Dimension column used as a measure.
  EXPECT_EQ(code_for(ComplaintSpec::TooHigh("mean", "district")),
            StatusCode::kInvalidArgument);
  // Non-COUNT aggregate without a measure.
  EXPECT_EQ(code_for(ComplaintSpec::TooHigh("mean")), StatusCode::kInvalidArgument);
  // Unknown filter column.
  EXPECT_EQ(code_for(ComplaintSpec::TooHigh("mean", "severity").Where("country", "d0")),
            StatusCode::kNotFound);
  // Measure column used as a filter.
  EXPECT_EQ(code_for(ComplaintSpec::TooHigh("mean", "severity").Where("severity", "5")),
            StatusCode::kInvalidArgument);
  // Unknown filter value.
  EXPECT_EQ(code_for(ComplaintSpec::TooHigh("mean", "severity").Where("year", "y99")),
            StatusCode::kNotFound);
  // Bad direction string.
  ComplaintSpec bad_direction = ComplaintSpec::TooHigh("mean", "severity");
  bad_direction.direction = "sideways";
  EXPECT_EQ(code_for(bad_direction), StatusCode::kInvalidArgument);
  // Non-finite EQUALS target.
  EXPECT_EQ(code_for(ComplaintSpec::Equals("count", "",
                                           std::numeric_limits<double>::quiet_NaN())),
            StatusCode::kInvalidArgument);
  // The session survives all of the above: a valid complaint still works.
  Result<ExploreResponse> ok_response =
      session.Recommend(ComplaintSpec::TooHigh("mean", "severity").Where("year", "y3"));
  EXPECT_TRUE(ok_response.ok()) << ok_response.status().ToString();
}

TEST(ApiSession, CommitValidatesNamesAndDepth) {
  Session session = MakeSession();
  EXPECT_EQ(session.Commit("galaxy").code(), StatusCode::kNotFound);
  // Commit by attribute name resolves to its hierarchy.
  ASSERT_TRUE(session.Commit("village").ok());
  EXPECT_EQ(*session.DrillDepth("geo"), 1);
  ASSERT_TRUE(session.Commit("geo").ok());
  EXPECT_FALSE(*session.CanDrill("geo"));
  // Drilling an exhausted hierarchy fails without terminating.
  Status exhausted = session.Commit("geo");
  EXPECT_EQ(exhausted.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(exhausted.message().find("fully drilled"), std::string::npos);

  // Once every hierarchy is exhausted, recommendations fail too.
  ASSERT_TRUE(session.Commit("time").ok());
  Result<ExploreResponse> response =
      session.Recommend(ComplaintSpec::TooHigh("mean", "severity"));
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApiSession, ViewComputesAndValidates) {
  Session session = MakeSession();
  Result<ViewResponse> view = session.View(
      ViewRequest().GroupBy("year").Measure("severity").Where("district", "d0"));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->rows.size(), 6u);
  EXPECT_EQ(view->rows[0].key[0].first, "year");
  EXPECT_GT(view->total.at("count"), 0.0);
  EXPECT_NE(view->ToJson().find("\"rows\""), std::string::npos);

  EXPECT_EQ(session.View(ViewRequest()).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.View(ViewRequest().GroupBy("nope")).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.View(ViewRequest().GroupBy("severity")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.View(ViewRequest().GroupBy("year").Measure("village")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      session.View(ViewRequest().GroupBy("year").Where("district", "atlantis")).status().code(),
      StatusCode::kNotFound);
}

TEST(ApiSession, RegisterAuxiliaryValidates) {
  Session session = MakeSession();
  Table aux;
  aux.AddDimensionColumn("village");
  aux.AddMeasureColumn("rainfall");
  aux.SetDim(0, "d0_v0");
  aux.SetMeasure(1, 120.0);
  aux.CommitRow();

  AuxiliaryRequest request;
  request.name = "rainfall";
  request.table = aux;
  request.join_attributes = {"village"};
  request.measure = "rainfall";

  AuxiliaryRequest bad = request;
  bad.join_attributes = {"continent"};
  EXPECT_EQ(session.RegisterAuxiliary(std::move(bad)).code(), StatusCode::kNotFound);
  bad = request;
  bad.join_attributes = {"district"};  // hierarchy attr, but absent in aux table
  EXPECT_EQ(session.RegisterAuxiliary(std::move(bad)).code(), StatusCode::kNotFound);
  bad = request;
  bad.measure = "snowfall";
  EXPECT_EQ(session.RegisterAuxiliary(std::move(bad)).code(), StatusCode::kNotFound);
  bad = request;
  bad.name = "";
  EXPECT_EQ(session.RegisterAuxiliary(std::move(bad)).code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(session.RegisterAuxiliary(request).ok());
  AuxiliaryRequest duplicate = request;
  EXPECT_EQ(session.RegisterAuxiliary(std::move(duplicate)).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(session.ExcludeFromRandomEffects("bogus").code(), StatusCode::kNotFound);
  // A measure column can never name a random-effect feature.
  EXPECT_EQ(session.ExcludeFromRandomEffects("severity").code(), StatusCode::kNotFound);
  EXPECT_TRUE(session.ExcludeFromRandomEffects("rainfall").ok());
  EXPECT_TRUE(session.ExcludeFromRandomEffects("district").ok());
}

TEST(ApiSession, FromCsvReportsPreciseErrors) {
  CsvDatasetRequest request;
  request.path = "/nonexistent/reptile.csv";
  request.csv.dimension_columns = {"district", "village", "year"};
  request.csv.measure_columns = {"severity"};
  request.hierarchies = DroughtHierarchies();
  EXPECT_EQ(Session::FromCsv(request).status().code(), StatusCode::kIoError);

  std::string path = ::testing::TempDir() + "/reptile_api_test.csv";
  {
    std::ofstream out(path);
    out << "district,village,year,severity\n";
    out << "d0,v0,y0,5.0\n";
    out << "d0,v0,y1,not_a_number\n";
  }
  request.path = path;
  Result<Session> bad_measure = Session::FromCsv(request);
  EXPECT_EQ(bad_measure.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad_measure.status().message().find("row 2"), std::string::npos)
      << bad_measure.status().ToString();
  EXPECT_NE(bad_measure.status().message().find("severity"), std::string::npos);

  {
    std::ofstream out(path);
    out << "district,village,year,severity\n";
    out << "d0,v0,5.0\n";
  }
  Result<Session> bad_fields = Session::FromCsv(request);
  EXPECT_EQ(bad_fields.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad_fields.status().message().find("row 1"), std::string::npos);

  {
    std::ofstream out(path);
    out << "district,village,year\n";
    out << "d0,v0,y0\n";
  }
  EXPECT_EQ(Session::FromCsv(request).status().code(), StatusCode::kNotFound);

  // A clean file round-trips into a working session.
  {
    std::ofstream out(path);
    out << "district,village,year,severity\n";
    for (int v = 0; v < 4; ++v) {
      for (int y = 0; y < 3; ++y) {
        for (int r = 0; r < 3; ++r) {
          out << "d" << (v / 2) << ",v" << v << ",y" << y << ","
              << (5.0 + v + 0.1 * y + 0.01 * r) << "\n";
        }
      }
    }
  }
  Result<Session> session = Session::FromCsv(request);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->dataset()->table().num_rows(), 36u);
  std::remove(path.c_str());
}

// The batched entry point must (a) return exactly what sequential calls
// return, and (b) train each shared (hierarchy, primitive) model at most
// once across the batch.
TEST(ApiSession, RecommendAllMatchesSequentialCalls) {
  Session batched = MakeSession();
  Session sequential = MakeSession();
  ASSERT_TRUE(batched.Commit("time").ok());
  ASSERT_TRUE(sequential.Commit("time").ok());

  // Four complaints sharing the one drillable hierarchy extension (geo ->
  // district). Primitive union: MEAN + COUNT + STD = 3 models.
  std::vector<ComplaintSpec> complaints = {
      ComplaintSpec::TooHigh("mean", "severity").Where("year", "y3"),
      ComplaintSpec::TooLow("mean", "severity").Where("year", "y1"),
      ComplaintSpec::TooLow("count", "severity").Where("year", "y2"),
      ComplaintSpec::TooHigh("std", "severity").Where("year", "y3"),
  };

  Result<BatchExploreResponse> batch =
      batched.RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->responses.size(), complaints.size());

  // Shared models: the batch trains each (hierarchy, measure, primitive)
  // model at most once — 3 fits total, not the 6 sequential fits.
  EXPECT_EQ(batch->models_trained, 3);

  int64_t sequential_trained = 0;
  int64_t sequential_cache_hits = 0;
  for (size_t i = 0; i < complaints.size(); ++i) {
    int64_t before = sequential.models_trained();
    int64_t hits_before = sequential.fit_cache_hits();
    Result<ExploreResponse> single = sequential.Recommend(complaints[i]);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    sequential_trained += sequential.models_trained() - before;
    sequential_cache_hits += sequential.fit_cache_hits() - hits_before;

    const ExploreResponse& from_batch = batch->responses[i];
    ASSERT_EQ(from_batch.candidates.size(), single->candidates.size());
    EXPECT_EQ(from_batch.best_index, single->best_index);
    for (size_t c = 0; c < single->candidates.size(); ++c) {
      const HierarchyResponse& bc = from_batch.candidates[c];
      const HierarchyResponse& sc = single->candidates[c];
      EXPECT_EQ(bc.hierarchy, sc.hierarchy);
      EXPECT_EQ(bc.attribute, sc.attribute);
      EXPECT_DOUBLE_EQ(bc.best_score, sc.best_score);
      ASSERT_EQ(bc.groups.size(), sc.groups.size());
      for (size_t g = 0; g < sc.groups.size(); ++g) {
        EXPECT_EQ(bc.groups[g].description, sc.groups[g].description);
        EXPECT_DOUBLE_EQ(bc.groups[g].score, sc.groups[g].score);
        EXPECT_DOUBLE_EQ(bc.groups[g].repaired_complaint_value,
                         sc.groups[g].repaired_complaint_value);
        ASSERT_EQ(bc.groups[g].predicted.size(), sc.groups[g].predicted.size());
        for (const auto& [stat, value] : sc.groups[g].predicted) {
          ASSERT_TRUE(bc.groups[g].predicted.count(stat));
          EXPECT_DOUBLE_EQ(bc.groups[g].predicted.at(stat), value);
        }
      }
    }
  }
  // The session-lifetime fitted-model cache makes even sequential calls
  // converge to the batch's fit count: each distinct (hierarchy, measure,
  // primitive) model is trained once ACROSS calls — later calls needing the
  // same model hit the cache (pre-ModelSpec this was 6: per-invocation
  // caching only, so repeated primitives refit every call).
  EXPECT_EQ(sequential_trained, 3);
  EXPECT_EQ(sequential_cache_hits, 3);

  // A bad complaint anywhere in a batch fails the whole batch up front,
  // tagged with its index.
  std::vector<ComplaintSpec> with_bad = complaints;
  with_bad[2] = ComplaintSpec::TooHigh("mean", "no_such_column");
  Result<BatchExploreResponse> bad =
      batched.RecommendAll(std::span<const ComplaintSpec>(with_bad));
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_NE(bad.status().message().find("complaints[2]"), std::string::npos);
}

TEST(ApiSession, RecommendAllInitializerList) {
  Session session = MakeSession();
  ASSERT_TRUE(session.Commit("time").ok());
  Result<BatchExploreResponse> batch = session.RecommendAll(
      {ComplaintSpec::TooHigh("mean", "severity").Where("year", "y3"),
       ComplaintSpec::TooLow("count", "").Where("year", "y2")});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->responses.size(), 2u);
  EXPECT_NE(batch->ToJson().find("\"models_trained\""), std::string::npos);
}

}  // namespace
}  // namespace reptile
