// Tests for the server's strict JSON parser (server/json.h): value coverage,
// byte-offset error messages, and the parser <-> writer round trip that pins
// the api/ ToJson writers and the parser to one string-escaping convention.

#include <limits>
#include <map>
#include <string>

#include "api/response.h"
#include "gtest/gtest.h"
#include "server/json.h"

namespace reptile {
namespace {

JsonValue ParseOk(const std::string& text) {
  Result<JsonValue> value = ParseJson(text);
  EXPECT_TRUE(value.ok()) << text << " -> " << value.status().ToString();
  return value.ok() ? std::move(*value) : JsonValue();
}

// Expects a parse failure whose message names the given byte offset.
void ExpectParseErrorAt(const std::string& text, size_t offset) {
  Result<JsonValue> value = ParseJson(text);
  ASSERT_FALSE(value.ok()) << text << " unexpectedly parsed";
  EXPECT_EQ(value.status().code(), StatusCode::kParseError);
  std::string needle = "byte " + std::to_string(offset) + ":";
  EXPECT_NE(value.status().message().find(needle), std::string::npos)
      << "message '" << value.status().message() << "' does not name " << needle;
}

TEST(Json, ParsesPrimitives) {
  EXPECT_TRUE(ParseOk("null").is_null());
  EXPECT_TRUE(ParseOk("true").bool_value());
  EXPECT_FALSE(ParseOk("false").bool_value());
  EXPECT_DOUBLE_EQ(ParseOk("0").number_value(), 0.0);
  EXPECT_DOUBLE_EQ(ParseOk("-12").number_value(), -12.0);
  EXPECT_DOUBLE_EQ(ParseOk("3.25").number_value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseOk("-0.5e2").number_value(), -50.0);
  EXPECT_DOUBLE_EQ(ParseOk("1E+3").number_value(), 1000.0);
  EXPECT_EQ(ParseOk("\"hi\"").string_value(), "hi");
  EXPECT_DOUBLE_EQ(ParseOk("  42  ").number_value(), 42.0);  // outer whitespace
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(ParseOk(R"("a\"b\\c\/d\be\ff\ng\rh\ti")").string_value(),
            "a\"b\\c/d\be\ff\ng\rh\ti");
  EXPECT_EQ(ParseOk(R"("\u0041\u00e9")").string_value(), "A\xc3\xa9");
  EXPECT_EQ(ParseOk(R"("\u20ac")").string_value(), "\xe2\x82\xac");  // €
  // Surrogate pair: U+1F600 as \ud83d\ude00.
  EXPECT_EQ(ParseOk(R"("\ud83d\ude00")").string_value(), "\xf0\x9f\x98\x80");
  EXPECT_EQ(ParseOk(R"("\u0000")").string_value(), std::string(1, '\0'));
}

TEST(Json, ParsesContainers) {
  JsonValue array = ParseOk(R"([1, "two", [true], {}])");
  ASSERT_EQ(array.array_items().size(), 4u);
  EXPECT_DOUBLE_EQ(array.array_items()[0].number_value(), 1.0);
  EXPECT_EQ(array.array_items()[1].string_value(), "two");
  EXPECT_TRUE(array.array_items()[2].array_items()[0].bool_value());
  EXPECT_TRUE(array.array_items()[3].is_object());

  JsonValue object = ParseOk(R"({"a": 1, "b": {"c": [2]}, "d": null})");
  ASSERT_EQ(object.object_items().size(), 3u);
  EXPECT_DOUBLE_EQ(object.Find("a")->number_value(), 1.0);
  EXPECT_DOUBLE_EQ(object.Find("b")->Find("c")->array_items()[0].number_value(), 2.0);
  EXPECT_TRUE(object.Find("d")->is_null());
  EXPECT_EQ(object.Find("missing"), nullptr);
  // Insertion order is preserved (what makes round trips byte-exact).
  EXPECT_EQ(object.object_items()[0].first, "a");
  EXPECT_EQ(object.object_items()[2].first, "d");
}

TEST(Json, IntegerDetection) {
  EXPECT_TRUE(ParseOk("7").IsInteger());
  EXPECT_EQ(ParseOk("7").IntValue(), 7);
  EXPECT_TRUE(ParseOk("-3e2").IsInteger());
  EXPECT_EQ(ParseOk("-3e2").IntValue(), -300);
  EXPECT_FALSE(ParseOk("7.5").IsInteger());
  EXPECT_FALSE(ParseOk("true").IsInteger());
  EXPECT_FALSE(ParseOk("1e300").IsInteger());  // beyond int64
  // Exact boundaries: -2^63 is a valid int64; 2^63 (INT64_MAX rounds up to
  // it in doubles) is one past the end and must be rejected, not cast (UB).
  EXPECT_TRUE(ParseOk("-9223372036854775808").IsInteger());
  EXPECT_EQ(ParseOk("-9223372036854775808").IntValue(),
            std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(ParseOk("9223372036854775808").IsInteger());
  EXPECT_FALSE(ParseOk("18446744073709551616").IsInteger());
}

TEST(Json, ByteOffsetErrors) {
  ExpectParseErrorAt("", 0);
  ExpectParseErrorAt("  nul", 2);
  ExpectParseErrorAt("[1, 2", 5);              // unexpected end inside array
  ExpectParseErrorAt("[1 2]", 3);              // missing comma
  ExpectParseErrorAt(R"({"a" 1})", 5);         // missing colon
  ExpectParseErrorAt(R"({"a": 1,})", 8);       // trailing comma = bad key start
  ExpectParseErrorAt(R"({"a":1,"a":2})", 7);   // duplicate key, offset of 2nd
  ExpectParseErrorAt("01", 0);                 // leading zero
  ExpectParseErrorAt("1.", 2);                 // missing fraction digit
  ExpectParseErrorAt("1e", 2);                 // missing exponent digit
  ExpectParseErrorAt("-", 0);                  // bare minus
  ExpectParseErrorAt("\"abc", 4);              // unterminated string
  ExpectParseErrorAt("\"a\\q\"", 2);           // invalid escape at the backslash
  ExpectParseErrorAt("\"\\u12g4\"", 5);        // bad hex digit
  ExpectParseErrorAt(R"("\ud83d")", 1);        // unpaired high surrogate
  ExpectParseErrorAt(R"("\ude00")", 1);        // unpaired low surrogate
  ExpectParseErrorAt("\"a\nb\"", 2);           // raw control character
  ExpectParseErrorAt("{} {}", 3);              // trailing content
  ExpectParseErrorAt("[1] 2", 4);
}

TEST(Json, DepthLimit) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  Result<JsonValue> value = ParseJson(deep);
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("nesting"), std::string::npos);
  // 100 levels is fine.
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(Json, EscapeRoundTripsHostileStrings) {
  const std::string hostile_cases[] = {
      "plain",
      "with \"quotes\" and \\backslashes\\",
      "newline\nand\rand\ttab",
      std::string("embedded\0nul", 12),
      "control\x01\x1f chars",
      "utf-8 caf\xc3\xa9 \xe2\x82\xac",
      "trailing backslash\\",
      "//slashes// and </script>",
  };
  for (const std::string& raw : hostile_cases) {
    std::string quoted = JsonQuote(raw);
    Result<JsonValue> parsed = ParseJson(quoted);
    ASSERT_TRUE(parsed.ok()) << quoted << " -> " << parsed.status().ToString();
    EXPECT_EQ(parsed->string_value(), raw);
    // Writing the parsed value reproduces the writer's bytes exactly.
    EXPECT_EQ(WriteJson(*parsed), quoted);
  }
}

TEST(Json, NumberFormattingIsStableUnderRoundTrip) {
  for (double value : {0.0, -0.0, 1.0, -17.25, 0.959687695097, 3.14159265358979,
                       1e-9, 6.02e23, -123456789012.0}) {
    std::string once = JsonNumber(value);
    Result<JsonValue> parsed = ParseJson(once);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(JsonNumber(parsed->number_value()), once) << value;
  }
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

// The satellite audit's proof: every response writer emits JSON the strict
// parser accepts and re-serializes byte-identically, even when dataset /
// attribute / value names contain quotes, backslashes, and control bytes.
TEST(Json, ResponseWriterRoundTripsThroughParser) {
  GroupResponse group;
  group.description = "year=19\"86, village=Za\\ta\n";
  group.key = {{"ye\"ar", "19\t86"}, {"vill\\age", "Za\x01ta"}};
  group.observed = {{"count", 24.0}, {"mean", 8.56170855033}};
  group.predicted = {{"mean", 8.5055727826}};
  group.repaired = {{"mean", 8.5055727826}, {"std", 0.310872256233}};
  group.repaired_complaint_value = 0.95;
  group.score = 0.959687695097;

  HierarchyResponse candidate;
  candidate.hierarchy = "g\"eo";
  candidate.attribute = "villa\\ge";
  candidate.groups = {group};
  candidate.best_score = 0.5;
  candidate.model_rows = 80;
  candidate.model_clusters = 10;
  candidate.train_seconds = 0.25;
  candidate.total_seconds = 0.5;

  ExploreResponse explore;
  explore.complaint = "std(sev\"erity) where year=y3\nis too high";
  explore.candidates = {candidate};
  explore.best_index = 0;

  BatchExploreResponse batch;
  batch.responses = {explore, explore};
  batch.models_trained = 3;
  batch.train_seconds = 0.25;
  batch.wall_seconds = 0.125;

  ViewResponse view;
  view.group_by = {"dis\"trict", "ye\\ar"};
  ViewRow row;
  row.key = {{"dis\"trict", "Of\x02la"}};
  row.stats = {{"count", 48.0}, {"mean", 5.5}};
  view.rows = {row};
  view.total = {{"count", 48.0}};

  for (const std::string& json :
       {explore.ToJson(), batch.ToJson(), view.ToJson()}) {
    Result<JsonValue> parsed = ParseJson(json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\nin: " << json;
    EXPECT_EQ(WriteJson(*parsed), json);
  }

  // Spot-check the nasty name actually survived the trip.
  Result<JsonValue> parsed = ParseJson(explore.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("candidates")->array_items()[0].Find("hierarchy")->string_value(),
            "g\"eo");
}

}  // namespace
}  // namespace reptile
