// Tests for model/linear: OLS recovery on synthetic data and the equivalence
// of the dense and factorised training paths.

#include "common/rng.h"
#include "fmatrix/materialize.h"
#include "gtest/gtest.h"
#include "model/linear.h"
#include "test_util.h"

namespace reptile {
namespace {

TEST(LinearDense, RecoversKnownCoefficients) {
  Rng rng(5);
  size_t n = 500;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Normal(0, 1);
    x(i, 2) = rng.Normal(0, 1);
    y[i] = 2.0 + 3.0 * x(i, 1) - 1.5 * x(i, 2) + rng.Normal(0, 0.1);
  }
  LinearModel model = TrainLinearDense(x, y);
  EXPECT_NEAR(model.beta[0], 2.0, 0.05);
  EXPECT_NEAR(model.beta[1], 3.0, 0.05);
  EXPECT_NEAR(model.beta[2], -1.5, 0.05);
  EXPECT_NEAR(model.sigma2, 0.01, 0.005);
  EXPECT_DOUBLE_EQ(PredictLinear(model, {1.0, 0.0, 0.0}), model.beta[0]);
}

TEST(LinearDense, CollinearHandledByRidge) {
  Matrix x = {{1, 1}, {1, 1}, {1, 1}};
  std::vector<double> y = {2.0, 2.0, 2.0};
  LinearModel model = TrainLinearDense(x, y, 1e-6);
  // Prediction at (1,1) should still be ~2 even though X is rank-1.
  EXPECT_NEAR(PredictLinear(model, {1.0, 1.0}), 2.0, 1e-3);
}

class LinearEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LinearEquivalenceTest, FactorizedMatchesDense) {
  Rng rng(GetParam());
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  DecomposedAggregates agg(&rm.fm, rm.LocalPtrs());
  std::vector<double> y = testutil::RandomVector(&rng, rm.fm.num_rows());

  Matrix x = MaterializeMatrix(rm.fm);
  LinearModel dense = TrainLinearDense(x, y, 1e-9);
  LinearModel factorized = TrainLinearFactorized(rm.fm, agg, y, 1e-9);
  ASSERT_EQ(dense.beta.size(), factorized.beta.size());
  for (size_t c = 0; c < dense.beta.size(); ++c) {
    EXPECT_NEAR(dense.beta[c], factorized.beta[c], 1e-6) << "coef " << c;
  }
  EXPECT_NEAR(dense.sigma2, factorized.sigma2, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearEquivalenceTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace reptile
