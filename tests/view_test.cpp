// Tests for core/view and core/repair.

#include "core/repair.h"
#include "core/view.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

Table MakeTable() {
  Table t;
  int d = t.AddDimensionColumn("district");
  int v = t.AddDimensionColumn("village");
  int m = t.AddMeasureColumn("severity");
  auto add = [&](const std::string& dv, const std::string& vv, double s) {
    t.SetDim(d, dv);
    t.SetDim(v, vv);
    t.SetMeasure(m, s);
    t.CommitRow();
  };
  add("Ofla", "Adishim", 8.0);
  add("Ofla", "Adishim", 9.0);
  add("Ofla", "Zata", 2.0);
  add("Raya", "Kukufto", 5.0);
  return t;
}

TEST(View, ComputesGroupsAndTotal) {
  Table t = MakeTable();
  ViewSpec spec;
  spec.key_columns = {0};
  spec.measure_column = 2;
  ViewResult view = ComputeView(t, spec);
  EXPECT_EQ(view.groups.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(view.total.count, 4.0);
  EXPECT_DOUBLE_EQ(view.total.sum, 24.0);
}

TEST(View, DrilldownViaFilter) {
  Table t = MakeTable();
  ViewSpec spec;
  spec.key_columns = {0, 1};
  spec.measure_column = 2;
  spec.filter.Add(0, *t.dict(0).Find("Ofla"));
  ViewResult view = ComputeView(t, spec);
  EXPECT_EQ(view.groups.num_groups(), 2u);  // Adishim, Zata
  EXPECT_DOUBLE_EQ(view.total.count, 3.0);
}

TEST(View, FormatGroupKey) {
  Table t = MakeTable();
  std::string s = FormatGroupKey(t, {0, 1}, {0, 1});
  EXPECT_EQ(s, "district=Ofla, village=Zata");
}

TEST(Repair, RequiredPrimitives) {
  EXPECT_EQ(RequiredPrimitives(AggFn::kCount), (std::vector<AggFn>{AggFn::kCount}));
  EXPECT_EQ(RequiredPrimitives(AggFn::kMean), (std::vector<AggFn>{AggFn::kMean}));
  EXPECT_EQ(RequiredPrimitives(AggFn::kSum),
            (std::vector<AggFn>{AggFn::kCount, AggFn::kMean}));
  EXPECT_EQ(RequiredPrimitives(AggFn::kStd),
            (std::vector<AggFn>{AggFn::kCount, AggFn::kMean, AggFn::kStd}));
}

TEST(Repair, CountRepairKeepsMeanAndStd) {
  Moments observed;
  for (double v : {4.0, 6.0, 8.0}) observed.Observe(v);
  Moments repaired = ApplyRepair(observed, {{AggFn::kCount, 6.0}});
  EXPECT_DOUBLE_EQ(repaired.count, 6.0);
  EXPECT_DOUBLE_EQ(repaired.Mean(), observed.Mean());
  EXPECT_NEAR(repaired.SampleStd(), observed.SampleStd(), 1e-9);
}

TEST(Repair, MeanRepairKeepsCount) {
  Moments observed;
  for (double v : {4.0, 6.0, 8.0}) observed.Observe(v);
  Moments repaired = ApplyRepair(observed, {{AggFn::kMean, 10.0}});
  EXPECT_DOUBLE_EQ(repaired.count, 3.0);
  EXPECT_DOUBLE_EQ(repaired.Mean(), 10.0);
}

TEST(Repair, SumRepairUsesCountAndMean) {
  Moments observed;
  for (double v : {4.0, 6.0}) observed.Observe(v);
  Moments repaired = ApplyRepair(observed, {{AggFn::kCount, 4.0}, {AggFn::kMean, 5.0}});
  EXPECT_DOUBLE_EQ(repaired.Value(AggFn::kSum), 20.0);
}

TEST(Repair, NegativePredictionsClamped) {
  Moments observed;
  observed.Observe(1.0);
  Moments repaired = ApplyRepair(observed, {{AggFn::kCount, -3.0}});
  EXPECT_DOUBLE_EQ(repaired.count, 0.0);
  repaired = ApplyRepair(observed, {{AggFn::kStd, -1.0}});
  EXPECT_DOUBLE_EQ(repaired.SampleStd(), 0.0);
}

TEST(Repair, StdRepair) {
  Moments observed;
  for (double v : {4.0, 6.0, 8.0}) observed.Observe(v);
  Moments repaired = ApplyRepair(observed, {{AggFn::kStd, 1.0}});
  EXPECT_NEAR(repaired.SampleStd(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(repaired.Mean(), observed.Mean());
}

}  // namespace
}  // namespace reptile
