// Property-based tests: randomized invariants spanning modules.
//
//  * Factorised operator stack == dense reference over deep random forests
//    (wider configurations than the per-module tests).
//  * EM monotonicity: the marginal log-likelihood never decreases across
//    iterations (the defining property of EM).
//  * Ranker identity: repairing a group to its observed statistics leaves
//    the complaint value unchanged.
//  * Decomposed-aggregate algebra: TOTAL_A * prefix multiplicity == n for
//    every attribute; COUNT sums to TOTAL.
//  * Distributive merge: deleting then re-adding a random group restores the
//    parent sketch exactly.

#include <cmath>

#include "common/rng.h"
#include "core/ranker.h"
#include "fmatrix/cluster_ops.h"
#include "fmatrix/gram.h"
#include "fmatrix/left_mult.h"
#include "fmatrix/materialize.h"
#include "fmatrix/right_mult.h"
#include "gtest/gtest.h"
#include "model/model_eval.h"
#include "model/multilevel.h"
#include "test_util.h"

namespace reptile {
namespace {

class DeepForestTest : public ::testing::TestWithParam<int> {};

TEST_P(DeepForestTest, FullOperatorStackMatchesDense) {
  Rng rng(GetParam());
  // Deeper and wider than the unit tests: up to 4 hierarchies, depth 4.
  int hierarchies = static_cast<int>(rng.UniformInt(1, 4));
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, hierarchies, 4, 5,
                                                         /*num_multi=*/GetParam() % 2);
  if (rm.fm.num_rows() > 5000) GTEST_SKIP() << "cross product too large for dense check";
  DecomposedAggregates agg(&rm.fm, rm.LocalPtrs());
  Matrix x = MaterializeMatrix(rm.fm);

  // Gram.
  EXPECT_TRUE(FactorizedGram(rm.fm, agg).ApproxEquals(x.Transposed().Multiply(x), 1e-7));

  // Left/right multiplication.
  std::vector<double> r = testutil::RandomVector(&rng, rm.fm.num_rows());
  std::vector<double> xtr = FactorizedVecLeftMultiply(rm.fm, r);
  Matrix expected_xtr = Matrix::RowVector(r).Multiply(x);
  for (int c = 0; c < rm.fm.num_cols(); ++c) {
    EXPECT_NEAR(xtr[static_cast<size_t>(c)], expected_xtr(0, static_cast<size_t>(c)), 1e-7);
  }
  std::vector<double> beta = testutil::RandomVector(&rng, rm.fm.num_cols());
  std::vector<double> xb = FactorizedVecRightMultiply(rm.fm, beta);
  Matrix expected_xb = x.Multiply(Matrix::ColumnVector(beta));
  for (int64_t row = 0; row < rm.fm.num_rows(); ++row) {
    EXPECT_NEAR(xb[static_cast<size_t>(row)], expected_xb(static_cast<size_t>(row), 0), 1e-7);
  }

  // Cluster gram against dense slices (spot-check the first few clusters).
  std::vector<int> cols;
  for (int c = 0; c < rm.fm.num_cols(); ++c) cols.push_back(c);
  int64_t checked = 0;
  ForEachClusterGram(rm.fm, cols, &r, [&](const ClusterData& data) {
    if (checked++ > 5) return;
    Matrix xi(static_cast<size_t>(data.size), cols.size());
    for (int64_t i = 0; i < data.size; ++i) {
      for (size_t j = 0; j < cols.size(); ++j) {
        xi(static_cast<size_t>(i), j) =
            x(static_cast<size_t>(data.row_begin + i), static_cast<size_t>(cols[j]));
      }
    }
    EXPECT_TRUE(data.gram->ApproxEquals(xi.Transposed().Multiply(xi), 1e-7));
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepForestTest, ::testing::Range(100, 130));

// EM increases the marginal likelihood monotonically (up to numerical
// tolerance); more iterations never hurt.
class EmMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(EmMonotonicityTest, MarginalLikelihoodNonDecreasing) {
  Rng rng(GetParam());
  int64_t clusters = rng.UniformInt(5, 20);
  int64_t per_cluster = rng.UniformInt(5, 25);
  int64_t n = clusters * per_cluster;
  Matrix x(static_cast<size_t>(n), 2);
  std::vector<double> y(static_cast<size_t>(n));
  std::vector<int64_t> begins;
  for (int64_t g = 0; g < clusters; ++g) {
    begins.push_back(g * per_cluster);
    double u = rng.Normal(0.0, rng.Uniform(0.0, 2.0));
    for (int64_t i = 0; i < per_cluster; ++i) {
      int64_t row = g * per_cluster + i;
      double xv = rng.Normal(0.0, 1.0);
      x(static_cast<size_t>(row), 0) = 1.0;
      x(static_cast<size_t>(row), 1) = xv;
      y[static_cast<size_t>(row)] = 0.5 + 1.5 * xv + u + rng.Normal(0.0, 0.8);
    }
  }
  begins.push_back(n);
  DenseEmBackend backend(&x, begins, {0});
  double previous = -std::numeric_limits<double>::infinity();
  for (int iters : {1, 3, 6, 12, 20}) {
    MultiLevelOptions options;
    options.em_iters = iters;
    MultiLevelModel model = TrainMultiLevel(&backend, y, options);
    double ll = MultiLevelLogLikelihood(&backend, model, y);
    EXPECT_GE(ll, previous - 1e-6) << "iterations " << iters;
    previous = ll;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmMonotonicityTest, ::testing::Range(0, 12));

// Repairing a group to its observed statistics is a no-op on the complaint.
class RankerIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(RankerIdentityTest, IdentityRepairLeavesComplaintUnchanged) {
  Rng rng(GetParam());
  Table t;
  int g_col = t.AddDimensionColumn("g");
  int m_col = t.AddMeasureColumn("m");
  int groups = static_cast<int>(rng.UniformInt(2, 12));
  for (int g = 0; g < groups; ++g) {
    int rows = static_cast<int>(rng.UniformInt(2, 10));
    for (int i = 0; i < rows; ++i) {
      t.SetDim(g_col, "g" + std::to_string(g));
      t.SetMeasure(m_col, rng.Normal(10.0, 4.0));
      t.CommitRow();
    }
  }
  GroupByResult siblings = GroupBy(t, {g_col}, m_col);
  Moments total;
  for (size_t g = 0; g < siblings.num_groups(); ++g) total.Add(siblings.stats(g));

  for (AggFn agg : {AggFn::kCount, AggFn::kMean, AggFn::kSum, AggFn::kStd}) {
    Complaint complaint = Complaint::TooHigh(agg, m_col, RowFilter());
    GroupPredictions predictions(siblings.num_groups());
    for (size_t g = 0; g < siblings.num_groups(); ++g) {
      const Moments& obs = siblings.stats(g);
      predictions[g][AggFn::kCount] = obs.count;
      predictions[g][AggFn::kMean] = obs.Mean();
      predictions[g][AggFn::kStd] = obs.SampleStd();
    }
    std::vector<ScoredGroup> ranked = RankGroups(siblings, predictions, complaint);
    for (const ScoredGroup& sg : ranked) {
      EXPECT_NEAR(sg.repaired_complaint_value, total.Value(agg), 1e-6)
          << AggFnName(agg) << " identity repair moved the complaint";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankerIdentityTest, ::testing::Range(0, 10));

// Decomposed-aggregate algebra over random forests.
class AggregateAlgebraTest : public ::testing::TestWithParam<int> {};

TEST_P(AggregateAlgebraTest, TotalsAndCountsConsistent) {
  Rng rng(GetParam() + 500);
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 3, 3, 4);
  DecomposedAggregates agg(&rm.fm, rm.LocalPtrs());
  for (int flat = 0; flat < rm.fm.num_attrs(); ++flat) {
    AttrId attr = rm.fm.FlatAttr(flat);
    EXPECT_EQ(agg.Total(attr) * agg.PrefixMultiplicity(attr), agg.n());
    int64_t sum = 0;
    for (int64_t node = 0; node < rm.fm.tree(attr.hierarchy).num_nodes(attr.level); ++node) {
      sum += agg.Count(attr, node);
    }
    EXPECT_EQ(sum, agg.Total(attr));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateAlgebraTest, ::testing::Range(0, 10));

// Moment algebra: delete + re-add restores the parent exactly.
TEST(MomentAlgebra, DeleteReAddRoundTrip) {
  Rng rng(9);
  Moments parent;
  std::vector<Moments> children(10);
  for (Moments& child : children) {
    int rows = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < rows; ++i) {
      double v = rng.Normal(0.0, 5.0);
      child.Observe(v);
      parent.Observe(v);
    }
  }
  for (const Moments& child : children) {
    Moments modified = parent;
    modified.Subtract(child);
    modified.Add(child);
    EXPECT_NEAR(modified.count, parent.count, 1e-9);
    EXPECT_NEAR(modified.sum, parent.sum, 1e-9);
    EXPECT_NEAR(modified.sumsq, parent.sumsq, 1e-9);
  }
}

}  // namespace
}  // namespace reptile
