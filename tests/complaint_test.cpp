// Tests for core/complaint: fcomp semantics in all three directions.

#include "core/complaint.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

TEST(Complaint, TooHighMinimisesValue) {
  Complaint c = Complaint::TooHigh(AggFn::kStd, 0, RowFilter());
  EXPECT_LT(c.Score(1.0), c.Score(2.0));
  EXPECT_EQ(c.agg, AggFn::kStd);
  EXPECT_EQ(c.direction, ComplaintDirection::kTooHigh);
}

TEST(Complaint, TooLowMinimisesNegatedValue) {
  Complaint c = Complaint::TooLow(AggFn::kCount, -1, RowFilter());
  EXPECT_LT(c.Score(10.0), c.Score(5.0));
}

TEST(Complaint, EqualsMinimisesDistanceToTarget) {
  Complaint c = Complaint::Equals(AggFn::kCount, -1, RowFilter(), 70.0);
  // Example 8 of the paper: repairing Darube to count 67 gives fcomp 3;
  // repairing Zata to 72 gives fcomp 2, which is preferable.
  EXPECT_DOUBLE_EQ(c.Score(67.0), 3.0);
  EXPECT_DOUBLE_EQ(c.Score(72.0), 2.0);
  EXPECT_LT(c.Score(72.0), c.Score(67.0));
}

TEST(Complaint, Describe) {
  EXPECT_EQ(Complaint::TooHigh(AggFn::kStd, 0, RowFilter()).Describe(), "STD is too high");
  EXPECT_EQ(Complaint::TooLow(AggFn::kMean, 0, RowFilter()).Describe(), "MEAN is too low");
  EXPECT_EQ(Complaint::Equals(AggFn::kCount, -1, RowFilter(), 70.0).Describe(),
            "COUNT should be 70");
}

TEST(Complaint, FilterCarriesCoordinates) {
  RowFilter filter;
  filter.Add(2, 7);
  Complaint c = Complaint::TooHigh(AggFn::kMean, 1, filter);
  ASSERT_EQ(c.filter.equals.size(), 1u);
  EXPECT_EQ(c.filter.equals[0].first, 2);
  EXPECT_EQ(c.filter.equals[0].second, 7);
}

}  // namespace
}  // namespace reptile
