// Tests for baselines/: sensitivity, support, outlier, raw winsorization,
// the LMFAO-style aggregation engine, and the dense trainer wrapper.

#include "baselines/lmfao_style.h"
#include "baselines/outlier.h"
#include "baselines/raw_winsor.h"
#include "baselines/sensitivity.h"
#include "baselines/support.h"
#include "common/rng.h"
#include "fmatrix/gram.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace reptile {
namespace {

// Three groups: a (count 10, mean 5), b (count 2, mean 50), c (count 6,
// mean 5 with one outlier row).
Table MakeTable() {
  Table t;
  int g = t.AddDimensionColumn("g");
  int m = t.AddMeasureColumn("m");
  auto add = [&](const std::string& name, double v) {
    t.SetDim(g, name);
    t.SetMeasure(m, v);
    t.CommitRow();
  };
  for (int i = 0; i < 10; ++i) add("a", 5.0);
  add("b", 50.0);
  add("b", 50.0);
  for (int i = 0; i < 5; ++i) add("c", 5.0);
  add("c", 30.0);  // outlier row inside c
  return t;
}

TEST(Sensitivity, DeletionBestResolvesTooHighMean) {
  Table t = MakeTable();
  GroupByResult siblings = GroupBy(t, {0}, 1);
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 1, RowFilter());
  std::vector<ScoredGroup> ranked = SensitivityRank(siblings, complaint);
  // Deleting b (mean 50) lowers the overall mean the most.
  EXPECT_EQ(ranked[0].key[0], *t.dict(0).Find("b"));
  // Deleted group's repaired sketch is empty.
  EXPECT_DOUBLE_EQ(ranked[0].repaired.count, 0.0);
}

TEST(Support, PicksLargestGroup) {
  Table t = MakeTable();
  GroupByResult siblings = GroupBy(t, {0}, 1);
  std::vector<ScoredGroup> ranked = SupportRank(siblings);
  EXPECT_EQ(ranked[0].key[0], *t.dict(0).Find("a"));  // 10 rows
  EXPECT_DOUBLE_EQ(ranked[0].observed.count, 10.0);
}

TEST(Outlier, RanksByDeviationIgnoringDirection) {
  Table t = MakeTable();
  GroupByResult siblings = GroupBy(t, {0}, 1);
  GroupPredictions predictions(siblings.num_groups());
  // Model: a should be 5 (deviation 0), b should be 10 (deviation 40),
  // c should be 20 (deviation ~10.8, opposite sign to b's).
  predictions[*siblings.Find({*t.dict(0).Find("a")})][AggFn::kMean] = 5.0;
  predictions[*siblings.Find({*t.dict(0).Find("b")})][AggFn::kMean] = 10.0;
  predictions[*siblings.Find({*t.dict(0).Find("c")})][AggFn::kMean] = 20.0;
  std::vector<ScoredGroup> ranked = OutlierRank(siblings, predictions, AggFn::kMean);
  EXPECT_EQ(ranked[0].key[0], *t.dict(0).Find("b"));
  EXPECT_EQ(ranked[1].key[0], *t.dict(0).Find("c"));
}

TEST(RawWinsor, DriftsValuesBackToCrossGroupBand) {
  Table t = MakeTable();
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 1, RowFilter());
  std::vector<ScoredGroup> ranked = RawWinsorRank(t, {0}, complaint);
  // Group means are {a:5, b:50, c:9.2}; the cross-group band clips b's rows
  // down hardest, so repairing b best resolves "MEAN too high".
  EXPECT_EQ(ranked[0].key[0], *t.dict(0).Find("b"));
  EXPECT_LT(ranked[0].repaired.Mean(), ranked[0].observed.Mean());
  // Row counts are preserved (Raw cannot repair missing/duplicates).
  EXPECT_DOUBLE_EQ(ranked[0].repaired.count, ranked[0].observed.count);
}

TEST(RawWinsor, RespectsComplaintFilter) {
  Table t = MakeTable();
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 1, RowFilter());
  complaint.filter.Add(0, *t.dict(0).Find("c"));
  std::vector<ScoredGroup> ranked = RawWinsorRank(t, {0}, complaint);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].key[0], *t.dict(0).Find("c"));
}

class LmfaoEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LmfaoEquivalenceTest, MatchesFactorizedOutputs) {
  Rng rng(GetParam());
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  DecomposedAggregates agg(&rm.fm, rm.LocalPtrs());
  LmfaoStyleResult lmfao = LmfaoStyleComputeAggregates(rm.fm);

  // COUNT aggregates agree.
  for (int flat = 0; flat < rm.fm.num_attrs(); ++flat) {
    AttrId attr = rm.fm.FlatAttr(flat);
    for (int64_t node = 0; node < rm.fm.tree(attr.hierarchy).num_nodes(attr.level); ++node) {
      EXPECT_EQ(lmfao.counts[static_cast<size_t>(flat)][static_cast<size_t>(node)],
                agg.Count(attr, node));
    }
  }
  // Gram matrices agree.
  Matrix reptile_gram = FactorizedGram(rm.fm, agg);
  EXPECT_TRUE(lmfao.gram.ApproxEquals(reptile_gram, 1e-8));
  // The baseline really materialised cross-hierarchy COFs.
  EXPECT_GT(lmfao.materialized_cof_cells, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LmfaoEquivalenceTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace reptile
