// Tests for datagen/: shape and ground-truth invariants of every generator.

#include "common/rng.h"
#include "common/stats.h"
#include "data/group_by.h"
#include "datagen/accuracy_gen.h"
#include "datagen/covid_gen.h"
#include "datagen/fist_gen.h"
#include "datagen/shapes_gen.h"
#include "datagen/synthetic.h"
#include "datagen/vote_gen.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

TEST(Synthetic, ChainMatrixShape) {
  SyntheticOptions options;
  options.num_hierarchies = 3;
  options.attrs_per_hierarchy = 2;
  options.cardinality = 10;
  SyntheticMatrix sm = MakeSyntheticMatrix(options);
  EXPECT_EQ(sm.fm.num_trees(), 4);  // intercept + 3
  EXPECT_EQ(sm.fm.num_rows(), 1000);  // 10^3
  EXPECT_EQ(sm.fm.num_cols(), 1 + 3 * 2);
  // Chains: every leaf count is 1, every level has w nodes.
  for (int k = 1; k < sm.fm.num_trees(); ++k) {
    EXPECT_EQ(sm.fm.tree(k).num_leaves(), 10);
    EXPECT_EQ(sm.fm.tree(k).num_nodes(0), 10);
  }
}

TEST(Synthetic, RandomBranchingKeepsLeafCount) {
  SyntheticOptions options;
  options.cardinality = 20;
  options.attrs_per_hierarchy = 3;
  options.num_hierarchies = 1;
  options.random_branching = true;
  SyntheticMatrix sm = MakeSyntheticMatrix(options);
  EXPECT_EQ(sm.fm.tree(1).num_leaves(), 20);
  EXPECT_LE(sm.fm.tree(1).num_nodes(0), 20);
}

TEST(Synthetic, ChainDataset) {
  SyntheticOptions options;
  options.num_hierarchies = 2;
  options.attrs_per_hierarchy = 2;
  options.cardinality = 5;
  Dataset ds = MakeChainDataset(options, 200);
  EXPECT_EQ(ds.table().num_rows(), 200u);
  EXPECT_EQ(ds.num_hierarchies(), 2);
  // All attribute values of a hierarchy's levels agree (chains).
  const auto& l0 = ds.table().dim_codes(ds.AttrColumn(AttrId{0, 0}));
  const auto& l1 = ds.table().dim_codes(ds.AttrColumn(AttrId{0, 1}));
  for (size_t row = 0; row < 200; ++row) EXPECT_EQ(l0[row], l1[row]);
}

TEST(Shapes, AbsenteeShape) {
  Dataset ds = MakeAbsenteeShaped(1);
  EXPECT_EQ(ds.table().num_rows(), 179000u);
  EXPECT_EQ(ds.num_hierarchies(), 4);
  EXPECT_EQ(ds.table().dict(ds.table().ColumnIndex("county")).size(), 100);
  EXPECT_EQ(ds.table().dict(ds.table().ColumnIndex("party")).size(), 6);
  EXPECT_EQ(ds.table().dict(ds.table().ColumnIndex("week")).size(), 53);
  EXPECT_EQ(ds.table().dict(ds.table().ColumnIndex("gender")).size(), 3);
}

TEST(Shapes, CompasShape) {
  Dataset ds = MakeCompasShaped(1);
  EXPECT_EQ(ds.table().num_rows(), 60843u);
  EXPECT_EQ(ds.hierarchy(0).depth(), 3);
  EXPECT_EQ(ds.table().dict(ds.table().ColumnIndex("day")).size(), 704);
  EXPECT_EQ(ds.table().dict(ds.table().ColumnIndex("race")).size(), 6);
}

TEST(Accuracy, MissingInstanceGroundTruth) {
  Rng rng(3);
  AccuracyOptions options;
  AccuracyInstance inst = MakeAccuracyInstance(options, ErrorType::kMissing, 0.8, &rng);
  ASSERT_EQ(inst.true_errors.size(), 1u);
  // The corrupted group's count is about half its clean value; totals drop.
  GroupByResult groups = GroupBy(inst.dataset.table(), {0}, 1);
  Moments total;
  for (size_t g = 0; g < groups.num_groups(); ++g) total.Add(groups.stats(g));
  EXPECT_LT(total.count, inst.clean_total.count);
  EXPECT_EQ(inst.complaint.agg, AggFn::kCount);
  EXPECT_EQ(inst.complaint.direction, ComplaintDirection::kEquals);
  EXPECT_DOUBLE_EQ(inst.complaint.target, inst.clean_total.count);
}

TEST(Accuracy, AuxTablesCorrelateWithCleanStats) {
  Rng rng(5);
  AccuracyOptions options;
  AccuracyInstance inst = MakeAccuracyInstance(options, ErrorType::kIncrease, 0.9, &rng);
  // Reconstruct clean-ish stats: all groups except the corrupted one are
  // clean; correlation should be high.
  GroupByResult groups = GroupBy(inst.dataset.table(), {0}, 1);
  std::vector<double> means(100), aux(100);
  for (int32_t g = 0; g < 100; ++g) {
    auto idx = groups.Find({g});
    ASSERT_TRUE(idx.has_value());
    means[static_cast<size_t>(g)] = groups.stats(*idx).Mean();
    aux[static_cast<size_t>(g)] = inst.aux_mean.measure(1)[static_cast<size_t>(g)];
  }
  EXPECT_GT(SpearmanCorrelation(means, aux), 0.7);
}

TEST(Accuracy, AblationHasThreeCorruptedGroups) {
  Rng rng(7);
  AccuracyOptions options;
  AccuracyInstance inst =
      MakeAblationInstance(options, AblationCondition::kMissingPlusDup, 0.8, &rng);
  EXPECT_EQ(inst.true_errors.size(), 2u);
  EXPECT_EQ(inst.false_positives.size(), 1u);
  EXPECT_EQ(inst.complaint.direction, ComplaintDirection::kTooLow);
  // The false positive has more rows than clean (duplication), the true
  // errors fewer.
  GroupByResult groups = GroupBy(inst.dataset.table(), {0}, 1);
  double fp_count = groups.stats(*groups.Find({inst.false_positives[0]})).count;
  double te_count = groups.stats(*groups.Find({inst.true_errors[0]})).count;
  EXPECT_GT(fp_count, te_count);
}

TEST(Covid, PanelShapeAndIssueLists) {
  CovidPanelConfig config;
  config.days = 30;
  Dataset us = MakeCovidPanel(config);
  EXPECT_EQ(us.num_hierarchies(), 2);
  EXPECT_EQ(us.table().dict(us.table().ColumnIndex("day")).size(), 30);
  EXPECT_EQ(UsIssueList().size(), 16u);
  EXPECT_EQ(GlobalIssueList().size(), 14u);
  // Paper totals: 21/30 detected by Reptile, 2 by Sensitivity, 1 by Support.
  int rp = 0, st = 0, sp = 0;
  for (const auto& issue : UsIssueList()) {
    rp += issue.paper_reptile_detects;
    st += issue.paper_sensitivity_detects;
    sp += issue.paper_support_detects;
  }
  for (const auto& issue : GlobalIssueList()) {
    rp += issue.paper_reptile_detects;
    st += issue.paper_sensitivity_detects;
    sp += issue.paper_support_detects;
  }
  EXPECT_EQ(rp, 21);
  EXPECT_EQ(st, 2);
  EXPECT_EQ(sp, 1);
}

TEST(Covid, MissingReportsCorruptionLowersIssueDay) {
  CovidPanelConfig config;
  config.days = 100;
  CovidIssueSpec issue = UsIssueList()[0];  // Texas missing reports
  ASSERT_EQ(issue.location, "Texas");
  Dataset clean = MakeCovidPanel(config);
  Dataset corrupted = MakeCorruptedPanel(config, issue);
  const Table& ct = clean.table();
  const Table& xt = corrupted.table();
  int loc = ct.ColumnIndex("state");
  int day = ct.ColumnIndex("day");
  int confirmed = ct.ColumnIndex("confirmed");
  char day_name[16];
  std::snprintf(day_name, sizeof(day_name), "d%03d", issue.day);
  RowFilter filter;
  filter.Add(loc, *ct.dict(loc).Find("Texas"));
  filter.Add(day, *ct.dict(day).Find(day_name));
  double clean_sum = 0.0, corrupted_sum = 0.0;
  for (size_t row = 0; row < ct.num_rows(); ++row) {
    if (ct.Matches(filter, row)) clean_sum += ct.measure(confirmed)[row];
    if (xt.Matches(filter, row)) corrupted_sum += xt.measure(confirmed)[row];
  }
  EXPECT_LT(corrupted_sum, 0.5 * clean_sum);
  EXPECT_GT(corrupted_sum, 0.2 * clean_sum);  // partial loss: not the unique minimum
}

TEST(Covid, LagTableShiftsByLag) {
  CovidPanelConfig config;
  config.days = 20;
  Dataset panel = MakeCovidPanel(config);
  Table lag = MakeCovidLagTable(panel, "confirmed", 7);
  // One entry per (location, day >= 7); day codes are chronological.
  size_t locations = static_cast<size_t>(panel.table().dict(0).size());
  EXPECT_EQ(lag.num_rows(), locations * (20 - 7));
  int day_col = lag.ColumnIndex("day");
  const auto& days = lag.dim_codes(day_col);
  for (size_t row = 0; row < lag.num_rows(); ++row) {
    // Day names are "dNNN": entries exist only for days >= lag.
    int day = std::stoi(lag.dict(day_col).name(days[row]).substr(1));
    EXPECT_GE(day, 7);
  }
}

TEST(Fist, StudyShapeAndCases) {
  FistStudy study = MakeFistStudy(3);
  EXPECT_EQ(study.cases.size(), 22u);
  int expected_success = 0;
  for (const auto& c : study.cases) expected_success += c.expect_success;
  EXPECT_EQ(expected_success, 20);
  EXPECT_EQ(study.dataset.num_hierarchies(), 2);
  // 7+8+3 districts, 9 villages each = 162 villages.
  EXPECT_EQ(study.dataset.table().dict(study.dataset.table().ColumnIndex("village")).size(),
            162);
  EXPECT_EQ(study.dataset.table().dict(study.dataset.table().ColumnIndex("year")).size(), 36);
}

TEST(Fist, RainfallPredictsSeverity) {
  FistStudy study = MakeCleanFist(9);
  // Village-year severity means should anti-correlate with rainfall.
  const Table& t = study.dataset.table();
  GroupByResult groups =
      GroupBy(t, {t.ColumnIndex("village"), t.ColumnIndex("year")}, t.ColumnIndex("severity"));
  GroupByResult rain = GroupBy(study.rainfall,
                               {study.rainfall.ColumnIndex("village"),
                                study.rainfall.ColumnIndex("year")},
                               study.rainfall.ColumnIndex("rainfall"));
  std::vector<double> sev, rf;
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    // Dictionaries align because both tables were filled in the same order.
    auto r = rain.Find(groups.key_tuple(g));
    if (!r.has_value()) continue;
    sev.push_back(groups.stats(g).Mean());
    rf.push_back(rain.stats(*r).Mean());
  }
  ASSERT_GT(sev.size(), 1000u);
  EXPECT_LT(PearsonCorrelation(sev, rf), -0.6);
}

TEST(Vote, CountryShape) {
  VoteCountry country = MakeVoteCountry(2);
  EXPECT_EQ(country.dataset.table().dict(country.dataset.table().ColumnIndex("county")).size(),
            3147);
  EXPECT_EQ(country.aux2016.num_rows(), 3147u);
}

TEST(Vote, Share2016Predicts2020) {
  VoteCountry country = MakeVoteCountry(4);
  const Table& t = country.dataset.table();
  GroupByResult groups = GroupBy(t, {t.ColumnIndex("county")}, t.ColumnIndex("share2020"));
  std::vector<double> s2020, s2016;
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    s2020.push_back(groups.stats(g).Mean());
    s2016.push_back(country.aux2016.measure(1)[static_cast<size_t>(groups.key(g, 0))]);
  }
  EXPECT_GT(PearsonCorrelation(s2020, s2016), 0.9);
}

TEST(Vote, GeorgiaMissingVariant) {
  GeorgiaPanel georgia = MakeGeorgia(5);
  EXPECT_EQ(georgia.dataset.table().dict(0).size(), 159);
  ASSERT_FALSE(georgia.missing_counties.empty());
  // The missing variant has strictly fewer rows, concentrated in the listed
  // counties.
  EXPECT_LT(georgia.dataset_missing.table().num_rows(), georgia.dataset.table().num_rows());
  const Table& full = georgia.dataset.table();
  const Table& missing = georgia.dataset_missing.table();
  int32_t code = *full.dict(0).Find(georgia.missing_counties[0]);
  auto count_rows = [&](const Table& t) {
    int64_t n = 0;
    for (size_t row = 0; row < t.num_rows(); ++row) {
      if (t.dim_codes(0)[row] == code) ++n;
    }
    return n;
  };
  EXPECT_LE(count_rows(missing), count_rows(full) / 2 + 1);
}

}  // namespace
}  // namespace reptile
