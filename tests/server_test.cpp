// Loopback integration tests for the HTTP front end (src/server/): routing,
// request mapping, the StatusCode -> HTTP error contract, request framing
// limits, keep-alive, concurrent clients, and — the core guarantee — that
// HTTP response bodies are byte-identical to direct Session calls.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_util.h"
#include "datagen/panel_gen.h"
#include "gtest/gtest.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "reptile/reptile.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/json.h"
#include "server/service.h"

namespace reptile {
namespace {

constexpr int kDistricts = 4;
constexpr int kVillages = 3;
constexpr int kYears = 4;
constexpr int kRowsPerGroup = 3;

// The fig08 panel shape (district x village x year severity), scaled down
// for test speed. MakeSeverityPanel is deterministic in its spec, so
// independently built copies are bit-identical — the basis of every
// byte-equality assertion below.
Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = kDistricts;
  spec.villages_per_district = kVillages;
  spec.years = kYears;
  spec.rows_per_group = kRowsPerGroup;
  return MakeSeverityPanel(spec);
}

Session MakePanelSession(bool commit_time = true) {
  Result<Session> session = Session::Create(MakePanel());
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (commit_time) {
    Status committed = session->Commit("time");
    EXPECT_TRUE(committed.ok()) << committed.ToString();
  }
  return std::move(session).value();
}

// The fig08 complaint panel: one STD complaint per year.
std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < kYears; ++y) {
    complaints.push_back(ComplaintSpec::TooHigh("std", "severity")
                             .Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

// The same complaint panel as a recommend_batch request body. `address` is
// the session-addressing prefix — the deprecated dataset form by default,
// or e.g. R"("session":"s-1")" for the per-client form.
std::string PanelBatchBody(const std::string& extra_options = std::string(),
                           const std::string& address = R"("dataset":"panel")") {
  std::string body = "{" + address + R"(,"complaints":[)";
  for (int y = 0; y < kYears; ++y) {
    if (y > 0) body += ',';
    body += R"({"aggregate":"std","measure":"severity","where":[{"column":"year","value":"y)" +
            std::to_string(y) + R"("}]})";
  }
  body += R"(],"options":{"zero_timings":true)";
  body += extra_options;
  body += "}}";
  return body;
}

// Serialisation with the scheduling- and cache-state-dependent fields zeroed
// (timings AND fit counters — a warm call trains 0 models where a cold one
// trained N), to match the wire's zero_timings option.
std::string TimelessJson(BatchExploreResponse batch) {
  batch.train_seconds = 0.0;
  batch.wall_seconds = 0.0;
  batch.models_trained = 0;
  batch.fit_cache_hits = 0;
  for (ExploreResponse& response : batch.responses) {
    for (HierarchyResponse& candidate : response.candidates) {
      candidate.train_seconds = 0.0;
      candidate.total_seconds = 0.0;
    }
  }
  return batch.ToJson();
}

std::string TimelessJson(ExploreResponse response) {
  for (HierarchyResponse& candidate : response.candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
  return response.ToJson();
}

// One served ReptileService (datasets "panel", "fresh", "exhausted", each
// with its default session) plus an identically constructed direct Session
// for byte-equality comparisons.
class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : direct_(MakePanelSession()) {
    ServiceOptions service_options;
    service_options.enable_debug_status_route = true;
    service_options.dataset_path_root = ::testing::TempDir();
    service_ = std::make_unique<ReptileService>(service_options);
    EXPECT_TRUE(service_->AddDataset("panel", MakePanel(), {"time"}).ok());
    EXPECT_TRUE(service_->AddDataset("fresh", MakePanel()).ok());
    EXPECT_TRUE(service_->AddDataset("exhausted", MakePanel(), {"time", "geo", "geo"}).ok());

    HttpServerOptions options;
    options.port = 0;
    options.num_threads = 4;
    server_ = std::make_unique<HttpServer>(
        options, [this](const HttpRequest& request) { return service_->Handle(request); });
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~ServerTest() override { server_->Stop(); }

  HttpClient Client() { return HttpClient("127.0.0.1", server_->port()); }

  Session direct_;
  std::unique_ptr<ReptileService> service_;
  std::unique_ptr<HttpServer> server_;
};

// Expects a response with the given HTTP status whose error body names the
// given code.
void ExpectError(const Result<HttpClientResponse>& response, int http_status,
                 const std::string& code) {
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, http_status);
  EXPECT_NE(response->body.find("\"code\":\"" + code + "\""), std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"http\":" + std::to_string(http_status)),
            std::string::npos)
      << response->body;
}

TEST_F(ServerTest, Healthz) {
  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("status")->string_value(), "ok");
  EXPECT_EQ(parsed->Find("datasets")->IntValue(), 3);
  EXPECT_EQ(parsed->Find("sessions")->IntValue(), 3);
  EXPECT_EQ(parsed->Find("sessions_evicted")->IntValue(), 0);
  // Fresh fixture: no recommends have run, so both shared caches read zero.
  const JsonValue* agg = parsed->Find("aggregate_cache");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->Find("entries")->IntValue(), 0);
  EXPECT_EQ(agg->Find("hits")->IntValue(), 0);
  const JsonValue* model = parsed->Find("model_cache");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->Find("fits")->IntValue(), 0);
  EXPECT_EQ(model->Find("evictions")->IntValue(), 0);
  // Process identity (satellite: uptime/build/pid).
  ASSERT_NE(parsed->Find("uptime_seconds"), nullptr);
  EXPECT_GE(parsed->Find("uptime_seconds")->IntValue(), 0);
  EXPECT_EQ(parsed->Find("pid")->IntValue(), static_cast<int64_t>(getpid()));
  const JsonValue* build = parsed->Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->Find("git_hash")->string_value().empty());
  EXPECT_FALSE(build->Find("compile_flags")->string_value().empty());
  // The embedded metrics summary carries the request-latency family.
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->Find("reptile_http_request_duration_seconds"), nullptr);
  ASSERT_NE(response->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*response->FindHeader("content-type"), "application/json");
}

TEST_F(ServerTest, DatasetsEndpoint) {
  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Get("/v1/datasets");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<JsonValue>& datasets = parsed->Find("datasets")->array_items();
  ASSERT_EQ(datasets.size(), 3u);  // sorted: exhausted, fresh, panel
  EXPECT_EQ(datasets[0].Find("name")->string_value(), "exhausted");
  EXPECT_EQ(datasets[2].Find("name")->string_value(), "panel");
  const JsonValue& panel = datasets[2];
  EXPECT_EQ(panel.Find("rows")->IntValue(),
            kDistricts * kVillages * kYears * kRowsPerGroup);
  EXPECT_EQ(panel.Find("columns")->array_items().size(), 4u);
  const std::vector<JsonValue>& hierarchies = panel.Find("hierarchies")->array_items();
  ASSERT_EQ(hierarchies.size(), 2u);
  EXPECT_EQ(hierarchies[1].Find("name")->string_value(), "time");
  EXPECT_EQ(hierarchies[1].Find("drill_depth")->IntValue(), 1);
  EXPECT_FALSE(hierarchies[1].Find("can_drill")->bool_value());
  EXPECT_TRUE(hierarchies[0].Find("can_drill")->bool_value());
}

// The acceptance criterion: the recommend_batch response body over loopback
// is byte-identical (timing fields zeroed) to a direct Session::RecommendAll
// on the fig08 complaint panel.
TEST_F(ServerTest, RecommendBatchByteIdenticalToDirectSession) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Result<BatchExploreResponse> direct = direct_.RecommendAll(
      std::span<const ComplaintSpec>(complaints.data(), complaints.size()));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  std::string expected = TimelessJson(*direct);

  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Post("/v1/recommend_batch", PanelBatchBody());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, expected);
}

TEST_F(ServerTest, RecommendSingleByteIdenticalWithPerCallOverrides) {
  ComplaintSpec complaint =
      ComplaintSpec::TooHigh("std", "severity").Where("year", "y2");
  Result<ExploreResponse> direct =
      direct_.Recommend(complaint, BatchOptions().TopK(1).Threads(2));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Post(
      "/v1/recommend",
      R"({"dataset":"panel","complaint":{"aggregate":"std","measure":"severity",)"
      R"("where":[{"column":"year","value":"y2"}]},)"
      R"("options":{"zero_timings":true,"top_k":1,"threads":2}})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, TimelessJson(*direct));
  // top_k=1 really made it through: exactly one group per candidate.
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  for (const JsonValue& candidate : parsed->Find("candidates")->array_items()) {
    EXPECT_LE(candidate.Find("groups")->array_items().size(), 1u);
  }
}

TEST_F(ServerTest, ExtraRepairStatsFlowThroughTheWire) {
  // MEAN decomposes into {mean} alone; the per-call extra adds count.
  ComplaintSpec complaint =
      ComplaintSpec::TooHigh("mean", "severity").Where("year", "y1");
  Result<ExploreResponse> direct =
      direct_.Recommend(complaint, BatchOptions().RepairAlso("count"));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  HttpClient client = Client();
  const std::string request_prefix =
      R"({"dataset":"panel","complaint":{"aggregate":"mean","measure":"severity",)"
      R"("where":[{"column":"year","value":"y1"}]},)"
      R"("options":{"zero_timings":true,"extra_repair_stats":)";
  Result<HttpClientResponse> with_extras =
      client.Post("/v1/recommend", request_prefix + R"(["count"]}})");
  ASSERT_TRUE(with_extras.ok()) << with_extras.status().ToString();
  EXPECT_EQ(with_extras->status, 200);
  EXPECT_EQ(with_extras->body, TimelessJson(*direct));
  EXPECT_NE(with_extras->body.find("\"count\":"), std::string::npos);

  // An explicitly empty list toggles extras off: same bytes as no option.
  Result<ExploreResponse> plain = direct_.Recommend(complaint);
  ASSERT_TRUE(plain.ok());
  Result<HttpClientResponse> without_extras =
      client.Post("/v1/recommend", request_prefix + R"([]}})");
  ASSERT_TRUE(without_extras.ok()) << without_extras.status().ToString();
  EXPECT_EQ(without_extras->body, TimelessJson(*plain));
  EXPECT_NE(with_extras->body, without_extras->body);
}

TEST_F(ServerTest, ViewByteIdenticalToDirectSession) {
  ViewRequest request;
  request.GroupBy("district").Measure("severity").Where("year", "y1");
  Result<ViewResponse> direct = direct_.View(request);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Post(
      "/v1/view",
      R"({"dataset":"panel","group_by":["district"],"measure":"severity",)"
      R"("where":[{"column":"year","value":"y1"}]})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, direct->ToJson());
}

TEST_F(ServerTest, CommitAdvancesDrillState) {
  HttpClient client = Client();
  Result<HttpClientResponse> commit =
      client.Post("/v1/commit", R"({"dataset":"fresh","hierarchy":"time"})");
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->status, 200);
  EXPECT_EQ(commit->body, R"({"hierarchy":"time","depth":1,"can_drill":false})");

  // The same commit again: the hierarchy is exhausted -> 409.
  ExpectError(client.Post("/v1/commit", R"({"dataset":"fresh","hierarchy":"time"})"), 409,
              "FAILED_PRECONDITION");
  // Unknown hierarchy name -> 404.
  ExpectError(client.Post("/v1/commit", R"({"dataset":"fresh","hierarchy":"nope"})"), 404,
              "NOT_FOUND");
}

TEST_F(ServerTest, RecommendOnExhaustedDatasetConflicts) {
  HttpClient client = Client();
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"exhausted","complaint":{"aggregate":"count"}})"),
              409, "FAILED_PRECONDITION");
}

TEST_F(ServerTest, RequestErrorSurface) {
  HttpClient client = Client();
  // Malformed JSON -> kParseError -> 400, message carries the byte offset.
  Result<HttpClientResponse> malformed =
      client.Post("/v1/recommend", R"({"dataset": "panel",)");
  ExpectError(malformed, 400, "PARSE_ERROR");
  EXPECT_NE(malformed->body.find("byte "), std::string::npos) << malformed->body;

  // Wrong-typed fields -> 400 naming the field.
  Result<HttpClientResponse> wrong_type = client.Post(
      "/v1/recommend_batch", R"({"dataset":"panel","complaints":{"aggregate":"std"}})");
  ExpectError(wrong_type, 400, "INVALID_ARGUMENT");
  EXPECT_NE(wrong_type->body.find("complaints must be an array, got object"),
            std::string::npos)
      << wrong_type->body;
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"std",)"
                          R"("measure":"severity"},"options":{"threads":"four"}})"),
              400, "INVALID_ARGUMENT");
  // Unknown fields are rejected, not ignored.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"std",)"
                          R"("measure":"severity"},"options":{"topk":1}})"),
              400, "INVALID_ARGUMENT");
  // Missing required fields.
  ExpectError(client.Post("/v1/recommend", R"({"complaint":{"aggregate":"std"}})"), 400,
              "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/recommend_batch",
                          R"({"dataset":"panel","complaints":[]})"),
              400, "INVALID_ARGUMENT");
  // Unknown dataset -> 404.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"nope","complaint":{"aggregate":"count"}})"),
              404, "NOT_FOUND");
  // Unknown complaint column -> the session's kNotFound -> 404.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"std",)"
                          R"("measure":"severity","where":[{"column":"nope","value":"x"}]}})"),
              404, "NOT_FOUND");
  // Bad aggregate name -> the session's kInvalidArgument -> 400.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"median"}})"),
              400, "INVALID_ARGUMENT");
  // Unknown route -> 404; known route with the wrong method -> 405 + Allow.
  ExpectError(client.Get("/v1/unknown"), 404, "NOT_FOUND");
  Result<HttpClientResponse> wrong_method = client.Get("/v1/recommend");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
  ASSERT_NE(wrong_method->FindHeader("allow"), nullptr);
  EXPECT_EQ(*wrong_method->FindHeader("allow"), "POST");
  Result<HttpClientResponse> post_healthz = client.Post("/healthz", "{}");
  ASSERT_TRUE(post_healthz.ok());
  EXPECT_EQ(post_healthz->status, 405);
}

// Every StatusCode -> HTTP pair, asserted over loopback via the debug route
// (kIoError / kInternal have no healthy data-route trigger).
TEST_F(ServerTest, StatusCodeToHttpMappingOverLoopback) {
  const std::pair<const char*, int> expected[] = {
      {"INVALID_ARGUMENT", 400}, {"PARSE_ERROR", 400},        {"NOT_FOUND", 404},
      {"FAILED_PRECONDITION", 409}, {"IO_ERROR", 500},        {"INTERNAL", 500},
  };
  HttpClient client = Client();
  for (const auto& [code, http] : expected) {
    Result<HttpClientResponse> response = client.Post(
        "/v1/_debug/status",
        std::string(R"({"code":")") + code + R"(","message":"mapped"})");
    ExpectError(response, http, code);
  }
  // And the mapping function itself, including kOk.
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kParseError), 400);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kNotFound), 404);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kFailedPrecondition), 409);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kIoError), 500);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kInternal), 500);
}

TEST_F(ServerTest, FramingErrors) {
  {
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw("THIS IS NOT HTTP\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
  }
  {
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("501 Not Implemented"), std::string::npos) << *raw;
  }
  {
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
  }
  {
    // Whitespace between a header name and the colon (and obs-fold
    // continuation lines) are smuggling vectors and must be rejected.
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length : 4\r\n\r\nabcd");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
    HttpClient folded = Client();
    Result<std::string> fold_raw = folded.SendRaw(
        "GET /healthz HTTP/1.1\r\nX-A: 1\r\n \tcontinued\r\n\r\n");
    ASSERT_TRUE(fold_raw.ok()) << fold_raw.status().ToString();
    EXPECT_NE(fold_raw->find("400 Bad Request"), std::string::npos) << *fold_raw;
  }
  {
    // A negative Content-Length must be a 400, not wrap through unsigned
    // parsing into a nonsense 413.
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
  }
  {
    // Duplicate Content-Length (even agreeing ones) is a smuggling vector
    // and must be rejected, not first-wins-accepted.
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 4\r\n\r\nabcd");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
    EXPECT_NE(raw->find("multiple Content-Length"), std::string::npos) << *raw;
  }
}

TEST_F(ServerTest, KeepAliveReusesOneConnection) {
  HttpClient client = Client();
  for (int i = 0; i < 3; ++i) {
    Result<HttpClientResponse> response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  EXPECT_EQ(server_->connections_accepted(), 1);
}

// The acceptance criterion's concurrency half: >= 4 client threads issuing
// recommend_batch (plus interleaved healthz/view noise) all receive correct,
// uncorrupted bodies. scripts/check.sh re-runs this under TSan.
TEST_F(ServerTest, ConcurrentClientsGetCorrectResponses) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Result<BatchExploreResponse> direct = direct_.RecommendAll(
      std::span<const ComplaintSpec>(complaints.data(), complaints.size()));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const std::string expected_batch = TimelessJson(*direct);
  ViewRequest view_request;
  view_request.GroupBy("district").Measure("severity");
  Result<ViewResponse> view = direct_.View(view_request);
  ASSERT_TRUE(view.ok());
  const std::string expected_view = view->ToJson();
  const std::string batch_body = PanelBatchBody();

  constexpr int kThreads = 5;
  constexpr int kIterations = 3;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kIterations; ++i) {
        Result<HttpClientResponse> batch = client.Post("/v1/recommend_batch", batch_body);
        if (!batch.ok() || batch->status != 200 || batch->body != expected_batch) {
          ++failures[t];
        }
        Result<HttpClientResponse> health = client.Get("/healthz");
        if (!health.ok() || health->status != 200) ++failures[t];
        Result<HttpClientResponse> seen = client.Post(
            "/v1/view", R"({"dataset":"panel","group_by":["district"],"measure":"severity"})");
        if (!seen.ok() || seen->status != 200 || seen->body != expected_view) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "client thread " << t << " saw corrupted responses";
  }
}

// ---- Dataset/session lifecycle routes --------------------------------------

// Extracts "field":"value" from a JSON response body via the parser.
std::string StringFieldOf(const std::string& body, const std::string& field) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok() || !parsed->is_object()) return std::string();
  const JsonValue* value = parsed->Find(field);
  if (value == nullptr || !value->is_string()) return std::string();
  return value->string_value();
}

// The acceptance criterion's lifecycle half: upload a dataset inline, open a
// per-client session restoring committed state, recommend, commit, snapshot,
// restore the snapshot into a second session (byte-identical recommendations),
// delete — all over loopback, with the default session's drill state isolated
// from the per-client session throughout.
TEST_F(ServerTest, DatasetUploadAndFullSessionLifecycle) {
  HttpClient client = Client();

  // Upload: a small deterministic region/city/year sales panel, inline.
  std::string csv = "region,city,year,sales\n";
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (int y = 0; y < 3; ++y) {
        for (int i = 0; i < 2; ++i) {
          csv += "r" + std::to_string(r) + ",c" + std::to_string(r) + std::to_string(c) +
                 ",y" + std::to_string(y) + "," +
                 std::to_string(10 * r + 3 * c + y + 0.25 * i) + "\n";
        }
      }
    }
  }
  std::string upload = std::string(R"({"name":"sales","csv":)") + JsonQuote(csv) +
                       R"(,"dimensions":["region","city","year"],"measures":["sales"],)"
                       R"("hierarchies":[{"name":"geo","attributes":["region","city"]},)"
                       R"({"name":"time","attributes":["year"]}],"commits":["time"]})";
  Result<HttpClientResponse> uploaded = client.Post("/v1/datasets", upload);
  ASSERT_TRUE(uploaded.ok()) << uploaded.status().ToString();
  EXPECT_EQ(uploaded->status, 201) << uploaded->body;
  EXPECT_EQ(uploaded->body,
            R"({"dataset":"sales","rows":36,"session":"default:sales"})");

  // The registry and the default session are live.
  Result<HttpClientResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"datasets\":4,\"sessions\":4"), std::string::npos)
      << health->body;

  // Create: a per-client session restoring the committed-depth map.
  Result<HttpClientResponse> created =
      client.Post("/v1/sessions", R"({"dataset":"sales","committed":{"time":1}})");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->status, 201) << created->body;
  EXPECT_EQ(created->body,
            R"({"session":"s-1","dataset":"sales","dataset_version":1,"default":false,"committed":{"geo":0,"time":1}})");

  // Recommend: via the session id.
  const std::string complaint =
      R"("complaint":{"aggregate":"mean","measure":"sales",)"
      R"("where":[{"column":"year","value":"y1"}]},"options":{"zero_timings":true})";
  Result<HttpClientResponse> recommended =
      client.Post("/v1/recommend", R"({"session":"s-1",)" + complaint + "}");
  ASSERT_TRUE(recommended.ok()) << recommended.status().ToString();
  EXPECT_EQ(recommended->status, 200) << recommended->body;
  EXPECT_NE(recommended->body.find("\"best_index\""), std::string::npos);

  // Commit: drills the per-client session only.
  Result<HttpClientResponse> committed =
      client.Post("/v1/commit", R"({"session":"s-1","hierarchy":"geo"})");
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->body, R"({"hierarchy":"geo","depth":1,"can_drill":true})");

  // Snapshot: the per-client session advanced; the default session did not
  // (drill-state isolation — the PR 3 follow-on this redesign exists for).
  Result<HttpClientResponse> snapshot = client.Get("/v1/sessions/s-1");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->body,
            R"({"session":"s-1","dataset":"sales","dataset_version":1,"default":false,"committed":{"geo":1,"time":1}})");
  Result<HttpClientResponse> default_snapshot = client.Get("/v1/sessions/default:sales");
  ASSERT_TRUE(default_snapshot.ok());
  EXPECT_EQ(default_snapshot->body,
            R"({"session":"default:sales","dataset":"sales","dataset_version":1,"default":true,"committed":{"geo":0,"time":1}})");

  // Restore: the snapshot's committed map opens a second session at the same
  // drill state; its recommendations are byte-identical to the first's.
  Result<HttpClientResponse> restored =
      client.Post("/v1/sessions", R"({"dataset":"sales","committed":{"geo":1,"time":1}})");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->status, 201);
  EXPECT_EQ(StringFieldOf(restored->body, "session"), "s-2");
  const std::string deep_complaint =
      R"("complaint":{"aggregate":"mean","measure":"sales",)"
      R"("where":[{"column":"region","value":"r1"}]},"options":{"zero_timings":true})";
  Result<HttpClientResponse> from_first =
      client.Post("/v1/recommend", R"({"session":"s-1",)" + deep_complaint + "}");
  Result<HttpClientResponse> from_restored =
      client.Post("/v1/recommend", R"({"session":"s-2",)" + deep_complaint + "}");
  ASSERT_TRUE(from_first.ok());
  ASSERT_TRUE(from_restored.ok());
  EXPECT_EQ(from_first->status, 200) << from_first->body;
  EXPECT_EQ(from_first->body, from_restored->body);

  // Delete: the session is gone from every route; the default session stays
  // and cannot be deleted.
  Result<std::string> removed = client.SendRaw(
      "DELETE /v1/sessions/s-1 HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_NE(removed->find(R"({"deleted":"s-1"})"), std::string::npos) << *removed;
  ExpectError(client.Get("/v1/sessions/s-1"), 404, "NOT_FOUND");
  ExpectError(client.Post("/v1/recommend", R"({"session":"s-1",)" + complaint + "}"), 404,
              "NOT_FOUND");
  Result<std::string> default_delete = Client().SendRaw(
      "DELETE /v1/sessions/default:sales HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(default_delete.ok());
  EXPECT_NE(default_delete->find("400 Bad Request"), std::string::npos) << *default_delete;
}

// The deprecation shim: the old {"dataset": name} form routes to the default
// session and returns byte-identical bodies to both the PR 3 behavior (the
// direct-session golden) and the new {"session": id} form at the same drill
// state.
TEST_F(ServerTest, SessionFormByteIdenticalToDeprecatedDatasetForm) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Result<BatchExploreResponse> direct = direct_.RecommendAll(
      std::span<const ComplaintSpec>(complaints.data(), complaints.size()));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const std::string expected = TimelessJson(*direct);

  HttpClient client = Client();
  Result<HttpClientResponse> created =
      client.Post("/v1/sessions", R"({"dataset":"panel","committed":{"time":1}})");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201) << created->body;
  const std::string id = StringFieldOf(created->body, "session");
  ASSERT_FALSE(id.empty());

  Result<HttpClientResponse> dataset_form =
      client.Post("/v1/recommend_batch", PanelBatchBody());
  Result<HttpClientResponse> session_form = client.Post(
      "/v1/recommend_batch",
      PanelBatchBody(std::string(), R"("session":")" + id + R"(")"));
  ASSERT_TRUE(dataset_form.ok());
  ASSERT_TRUE(session_form.ok());
  EXPECT_EQ(dataset_form->status, 200) << dataset_form->body;
  EXPECT_EQ(dataset_form->body, expected);
  EXPECT_EQ(session_form->body, expected);

  // Addressing both at once, or neither, is rejected.
  ExpectError(client.Post("/v1/recommend_batch",
                          PanelBatchBody(std::string(), R"("dataset":"panel","session":")" +
                                                            id + R"(")")),
              400, "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/commit", R"({"hierarchy":"geo"})"), 400, "INVALID_ARGUMENT");
}

// Deleting a dataset removes the registry entry AND every session over it —
// no orphaned default session may keep serving the deprecated alias (and
// pinning the dataset's memory) after the dataset is gone.
TEST_F(ServerTest, DatasetDeleteRemovesSessionsAndAlias) {
  HttpClient client = Client();
  Result<HttpClientResponse> created =
      client.Post("/v1/sessions", R"({"dataset":"fresh"})");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201);
  const std::string id = StringFieldOf(created->body, "session");

  Result<std::string> removed = client.SendRaw(
      "DELETE /v1/datasets/fresh HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(removed.ok());
  EXPECT_NE(removed->find(R"({"deleted":"fresh"})"), std::string::npos) << *removed;

  // Alias, per-client session, listing and health all reflect the removal.
  ExpectError(client.Post("/v1/commit", R"({"dataset":"fresh","hierarchy":"time"})"), 404,
              "NOT_FOUND");
  ExpectError(client.Get("/v1/sessions/" + id), 404, "NOT_FOUND");
  ExpectError(client.Post("/v1/sessions", R"({"dataset":"fresh"})"), 404, "NOT_FOUND");
  Result<HttpClientResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"datasets\":2,\"sessions\":2"), std::string::npos)
      << health->body;
  // Unknown dataset -> 404; the name can be re-registered cleanly.
  Result<std::string> missing = Client().SendRaw(
      "DELETE /v1/datasets/fresh HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing->find("404"), std::string::npos) << *missing;
  EXPECT_TRUE(service_->AddDataset("fresh", MakePanel()).ok());
  Result<HttpClientResponse> again =
      client.Post("/v1/view", R"({"dataset":"fresh","group_by":["district"]})");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200) << again->body;
}

TEST_F(ServerTest, SessionListShowsDefaults) {
  HttpClient client = Client();
  Result<HttpClientResponse> listed = client.Get("/v1/sessions");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->status, 200);
  Result<JsonValue> parsed = ParseJson(listed->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<JsonValue>& sessions = parsed->Find("sessions")->array_items();
  ASSERT_EQ(sessions.size(), 3u);  // the three default sessions
  for (const JsonValue& session : sessions) {
    EXPECT_TRUE(session.Find("default")->bool_value());
  }
}

TEST_F(ServerTest, DatasetUploadErrorSurface) {
  HttpClient client = Client();
  // Neither csv nor path, or both.
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","dimensions":["a"],"hierarchies":[]})"),
              400, "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","csv":"a\n1","path":"/tmp/x.csv",)"
                          R"("dimensions":["a"],"hierarchies":[]})"),
              400, "INVALID_ARGUMENT");
  // Duplicate dataset name.
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"panel","csv":"a,m\nv,1\n","dimensions":["a"],)"
                          R"("measures":["m"],"hierarchies":[{"name":"h","attributes":["a"]}]})"),
              400, "INVALID_ARGUMENT");
  // Malformed CSV (non-numeric measure) -> the parser's kParseError -> 400.
  Result<HttpClientResponse> bad_csv = client.Post(
      "/v1/datasets",
      R"({"name":"x","csv":"a,m\nv,banana\n","dimensions":["a"],"measures":["m"],)"
      R"("hierarchies":[{"name":"h","attributes":["a"]}]})");
  ExpectError(bad_csv, 400, "PARSE_ERROR");
  EXPECT_NE(bad_csv->body.find("inline csv"), std::string::npos) << bad_csv->body;
  // Hierarchy naming a missing column -> Dataset::Make's kNotFound.
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","csv":"a,m\nv,1\n","dimensions":["a"],)"
                          R"("measures":["m"],"hierarchies":[{"name":"h","attributes":["nope"]}]})"),
              404, "NOT_FOUND");
  // Server-side path under the configured root that does not exist ->
  // kIoError -> 500.
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","path":"nonexistent-data.csv","dimensions":["a"],)"
                          R"("measures":["m"],"hierarchies":[{"name":"h","attributes":["a"]}]})"),
              500, "IO_ERROR");
  // Escaping the dataset root is rejected: absolute paths and "..".
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","path":"/etc/passwd","dimensions":["a"],)"
                          R"("measures":["m"],"hierarchies":[{"name":"h","attributes":["a"]}]})"),
              400, "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","path":"../../../etc/passwd","dimensions":["a"],)"
                          R"("measures":["m"],"hierarchies":[{"name":"h","attributes":["a"]}]})"),
              400, "INVALID_ARGUMENT");
  // A symlink under the root pointing outside must not escape either.
  std::string link = ::testing::TempDir() + "/reptile-escape-link";
  ::unlink(link.c_str());
  ASSERT_EQ(::symlink("/etc", link.c_str()), 0);
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","path":"reptile-escape-link/passwd",)"
                          R"("dimensions":["a"],"measures":["m"],)"
                          R"("hierarchies":[{"name":"h","attributes":["a"]}]})"),
              400, "INVALID_ARGUMENT");
  ::unlink(link.c_str());
  // Unknown session-create dataset and bad committed entries.
  ExpectError(client.Post("/v1/sessions", R"({"dataset":"nope"})"), 404, "NOT_FOUND");
  ExpectError(client.Post("/v1/sessions",
                          R"({"dataset":"panel","committed":{"nope":1}})"),
              404, "NOT_FOUND");
  ExpectError(client.Post("/v1/sessions",
                          R"({"dataset":"panel","committed":{"geo":7}})"),
              400, "INVALID_ARGUMENT");
  // A failed create leaves no session behind.
  Result<HttpClientResponse> listed = client.Get("/v1/sessions");
  ASSERT_TRUE(listed.ok());
  Result<JsonValue> parsed = ParseJson(listed->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("sessions")->array_items().size(), 3u);
}

// Without a configured --dataset-root, the server-side "path" form must be
// off entirely — otherwise any client could read (and exfiltrate through
// parse-error echoes) arbitrary server files.
TEST(ServerSessions, ServerSidePathLoadingDisabledByDefault) {
  ReptileService service;
  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/datasets";
  request.body =
      R"({"name":"x","path":"data.csv","dimensions":["a"],"measures":["m"],)"
      R"("hierarchies":[{"name":"h","attributes":["a"]}]})";
  HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("disabled"), std::string::npos) << response.body;
}

// The snapshot write route is confined exactly like the "path" read route,
// and both snapshot forms reject malformed input with clean Statuses.
TEST_F(ServerTest, SnapshotRouteErrorPaths) {
  HttpClient client = Client();
  // Wrong method on the route.
  Result<HttpClientResponse> got = client.Get("/v1/datasets/panel/snapshot");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->status, 405);
  // Unknown dataset.
  ExpectError(client.Post("/v1/datasets/nope/snapshot", R"({"path":"x.snap"})"),
              404, "NOT_FOUND");
  // Escapes of the dataset root: absolute, "..", missing, unknown keys.
  ExpectError(client.Post("/v1/datasets/panel/snapshot", R"({"path":"/abs.snap"})"),
              400, "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/datasets/panel/snapshot", R"({"path":"../out.snap"})"),
              400, "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/datasets/panel/snapshot", "{}"), 400, "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/datasets/panel/snapshot", R"({"path":"x.snap","v":1})"),
              400, "INVALID_ARGUMENT");

  // Create-from-snapshot: a missing file is kIoError, a corrupt file is
  // kParseError — never UB.
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","snapshot":"never-written.snap"})"),
              500, "IO_ERROR");
  {
    std::ofstream garbage(::testing::TempDir() + "/garbage.snap", std::ios::binary);
    garbage << "this is not a snapshot at all, but it is long enough to try";
  }
  ExpectError(client.Post("/v1/datasets", R"({"name":"x","snapshot":"garbage.snap"})"),
              400, "PARSE_ERROR");
  // The snapshot carries the schema: CSV typing fields cannot be combined.
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","snapshot":"s.snap","dimensions":["a"]})"),
              400, "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/datasets",
                          R"({"name":"x","snapshot":"s.snap","csv":"a,m\nv,1\n"})"),
              400, "INVALID_ARGUMENT");
  // None of the failures registered a dataset.
  Result<HttpClientResponse> listed = client.Get("/v1/datasets");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->body.find("\"x\""), std::string::npos);
}

// Without a dataset root, the snapshot write route is off for the same
// reason server-side "path" reads are.
TEST(ServerSessions, SnapshotRouteDisabledWithoutDatasetRoot) {
  ReptileService service;
  ASSERT_TRUE(service.AddDataset("panel", MakePanel()).ok());
  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/datasets/panel/snapshot";
  request.body = R"({"path":"x.snap"})";
  HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("disabled"), std::string::npos) << response.body;
}

// Both creation routes are unauthenticated, so they are capped: exceeding
// max_sessions / max_datasets is a 409, and deleting frees the slot.
TEST(ServerSessions, SessionAndDatasetCapsAreEnforced) {
  ServiceOptions options;
  options.max_sessions = 1;
  options.max_datasets = 2;
  ReptileService service(options);
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());

  Result<std::string> first = service.CreateSession("panel");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<std::string> second = service.CreateSession("panel");
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.DeleteSession(*first).ok());
  EXPECT_TRUE(service.CreateSession("panel").ok());

  ASSERT_TRUE(service.AddDataset("panel2", MakePanel()).ok());
  EXPECT_EQ(service.AddDataset("panel3", MakePanel()).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.RemoveDataset("panel2").ok());
  EXPECT_TRUE(service.AddDataset("panel3", MakePanel()).ok());
}

// Idle-TTL eviction with an injected clock: a per-client session idle past
// the TTL is evicted on the next table access; touches keep it alive; the
// default session is exempt.
TEST(ServerSessions, IdleTtlEvictsIdleSessions) {
  auto fake_seconds = std::make_shared<std::atomic<int64_t>>(0);
  ServiceOptions options;
  options.session_ttl_seconds = 60;
  options.clock = [fake_seconds] {
    return std::chrono::steady_clock::time_point(
        std::chrono::seconds(fake_seconds->load()));
  };
  ReptileService service(options);
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());
  Result<std::string> id = service.CreateSession("panel");
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto get = [&service](const std::string& path) {
    HttpRequest request;
    request.method = "GET";
    request.path = path;
    return service.Handle(request).status;
  };

  // A touch at t=30 resets the idle clock: still alive at t=80.
  *fake_seconds = 30;
  EXPECT_EQ(get("/v1/sessions/" + *id), 200);
  *fake_seconds = 80;
  EXPECT_EQ(get("/v1/sessions/" + *id), 200);
  EXPECT_EQ(service.sessions_evicted(), 0);

  // Idle past the TTL: evicted on the next access; the default survives.
  *fake_seconds = 80 + 61;
  EXPECT_EQ(get("/v1/sessions/" + *id), 404);
  EXPECT_EQ(get("/v1/sessions/default:panel"), 200);
  EXPECT_EQ(service.sessions_evicted(), 1);
}

// The concurrency half of the lifecycle: client threads creating,
// recommending on, committing, snapshotting and deleting their own sessions
// over one shared registry dataset — scripts/check.sh re-runs this under
// TSan. Every thread's recommendation must equal the direct golden (shared
// immutable state, isolated drill state).
TEST_F(ServerTest, ConcurrentSessionLifecycleIsSafeAndIsolated) {
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y1");
  Result<ExploreResponse> direct = direct_.Recommend(complaint);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const std::string expected = TimelessJson(*direct);
  const std::string complaint_json =
      R"("complaint":{"aggregate":"std","measure":"severity",)"
      R"("where":[{"column":"year","value":"y1"}]},"options":{"zero_timings":true})";

  constexpr int kThreads = 4;
  constexpr int kIterations = 2;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kIterations; ++i) {
        Result<HttpClientResponse> created = client.Post(
            "/v1/sessions", R"({"dataset":"panel","committed":{"time":1}})");
        if (!created.ok() || created->status != 201) {
          ++failures[t];
          continue;
        }
        std::string id = StringFieldOf(created->body, "session");
        Result<HttpClientResponse> recommended = client.Post(
            "/v1/recommend", R"({"session":")" + id + R"(",)" + complaint_json + "}");
        if (!recommended.ok() || recommended->status != 200 ||
            recommended->body != expected) {
          ++failures[t];
        }
        Result<HttpClientResponse> committed = client.Post(
            "/v1/commit", R"({"session":")" + id + R"(","hierarchy":"geo"})");
        if (!committed.ok() || committed->status != 200) ++failures[t];
        Result<HttpClientResponse> snapshot = client.Get("/v1/sessions/" + id);
        if (!snapshot.ok() || snapshot->status != 200 ||
            snapshot->body.find(R"("geo":1)") == std::string::npos) {
          ++failures[t];
        }
        Result<std::string> deleted = client.SendRaw("DELETE /v1/sessions/" + id +
                                                     " HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        if (!deleted.ok() || deleted->find(R"({"deleted":")") == std::string::npos) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "client thread " << t << " saw failures";
  }
  // All per-client sessions are gone; the three defaults remain.
  HttpClient client = Client();
  Result<HttpClientResponse> listed = client.Get("/v1/sessions");
  ASSERT_TRUE(listed.ok());
  Result<JsonValue> parsed = ParseJson(listed->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("sessions")->array_items().size(), 3u);
}

TEST(ServerLimits, OversizedBodyIsRejected) {
  ReptileService service;
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  options.max_body_bytes = 128;
  HttpServer server(options,
                    [&service](const HttpRequest& request) { return service.Handle(request); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  std::string big_body = R"({"dataset":"panel","complaint":{"aggregate":"std","measure":")" +
                         std::string(512, 'x') + R"("}})";
  Result<HttpClientResponse> response = client.Post("/v1/recommend", big_body);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 413);
  EXPECT_NE(response->body.find("exceeds"), std::string::npos) << response->body;
  // A fresh, small request still works: the limit didn't wedge the server.
  Result<HttpClientResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  server.Stop();
}

TEST(ServerLimits, OversizedHeaderSectionIsRejected) {
  ReptileService service;
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.max_header_bytes = 256;
  HttpServer server(options,
                    [&service](const HttpRequest& request) { return service.Handle(request); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  std::string raw = "GET /healthz HTTP/1.1\r\nX-Padding: " + std::string(1024, 'p') +
                    "\r\n\r\n";
  Result<std::string> response = client.SendRaw(raw);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("431"), std::string::npos) << *response;
  server.Stop();
}

TEST(ServerLifecycle, StopFinishesInFlightAndRefusesNewConnections) {
  ReptileService service;
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  auto server = std::make_unique<HttpServer>(
      options, [&service](const HttpRequest& request) { return service.Handle(request); });
  ASSERT_TRUE(server->Start().ok());
  int port = server->port();
  {
    HttpClient client("127.0.0.1", port);
    Result<HttpClientResponse> response = client.Get("/healthz");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  }
  server->Stop();
  HttpClient client("127.0.0.1", port);
  Result<HttpClientResponse> after = client.Get("/healthz");
  EXPECT_FALSE(after.ok());  // connection refused (or immediately dropped)
  server.reset();            // double-stop via destructor is safe
}

// ---- The options.model wire schema -----------------------------------------

// Every options.model field round-trips: the request's values come back in
// the response's model echo, byte-identical to the equivalent direct
// BatchOptions::Model call.
TEST_F(ServerTest, OptionsModelRoundTripsEveryField) {
  ModelSpec spec = ModelSpec()
                       .Linear()
                       .Dense()
                       .EmIterations(9)
                       .EmTolerance(0.25)
                       .FitCache(false)
                       .RepairAlso(AggFn::kCount);
  ComplaintSpec complaint =
      ComplaintSpec::TooHigh("mean", "severity").Where("year", "y2");
  Result<ExploreResponse> direct = direct_.Recommend(complaint, BatchOptions().Model(spec));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Post(
      "/v1/recommend",
      R"({"dataset":"panel","complaint":{"aggregate":"mean","measure":"severity",)"
      R"("where":[{"column":"year","value":"y2"}]},)"
      R"("options":{"zero_timings":true,"model":{"kind":"linear","backend":"dense",)"
      R"("em_iterations":9,"em_tolerance":0.25,"fit_cache":false,)"
      R"("extra_repair_stats":["count"]}}})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200) << response->body;
  EXPECT_EQ(response->body, TimelessJson(*direct));

  // The echo carries every field back.
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* model = parsed->Find("model");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->Find("kind")->string_value(), "linear");
  EXPECT_EQ(model->Find("backend")->string_value(), "dense");
  EXPECT_EQ(model->Find("em_iterations")->IntValue(), 9);
  EXPECT_DOUBLE_EQ(model->Find("em_tolerance")->number_value(), 0.25);
  EXPECT_FALSE(model->Find("fit_cache")->bool_value());
  ASSERT_EQ(model->Find("extra_repair_stats")->array_items().size(), 1u);
  EXPECT_EQ(model->Find("extra_repair_stats")->array_items()[0].string_value(), "count");
}

TEST_F(ServerTest, OptionsModelRejectsUnknownAndWrongTypedFields) {
  HttpClient client = Client();
  const std::string prefix =
      R"({"dataset":"panel","complaint":{"aggregate":"mean","measure":"severity"},)"
      R"("options":{"model":)";

  // Unknown field, named in the error.
  Result<HttpClientResponse> unknown =
      client.Post("/v1/recommend", prefix + R"({"iterations":5}}})");
  ExpectError(unknown, 400, "INVALID_ARGUMENT");
  EXPECT_NE(unknown->body.find("iterations"), std::string::npos) << unknown->body;
  EXPECT_NE(unknown->body.find("options.model"), std::string::npos) << unknown->body;

  // Wrong-typed fields.
  ExpectError(client.Post("/v1/recommend", prefix + R"({"em_iterations":"many"}}})"), 400,
              "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/recommend", prefix + R"({"em_tolerance":"tiny"}}})"), 400,
              "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/recommend", prefix + R"({"fit_cache":"yes"}}})"), 400,
              "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/recommend", prefix + R"(["dense"]}})"), 400,
              "INVALID_ARGUMENT");

  // Unknown enum names.
  Result<HttpClientResponse> bad_backend =
      client.Post("/v1/recommend", prefix + R"({"backend":"gpu"}}})");
  ExpectError(bad_backend, 400, "INVALID_ARGUMENT");
  EXPECT_NE(bad_backend->body.find("gpu"), std::string::npos);
  ExpectError(client.Post("/v1/recommend", prefix + R"({"kind":"deep_net"}}})"), 400,
              "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/recommend",
                          prefix + R"({"extra_repair_stats":["median"]}}})"),
              400, "INVALID_ARGUMENT");

  // Range errors surface through the plan stage.
  ExpectError(client.Post("/v1/recommend", prefix + R"({"em_iterations":0}}})"), 400,
              "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/recommend", prefix + R"({"em_tolerance":-0.5}}})"), 400,
              "INVALID_ARGUMENT");

  // model + deprecated extra_repair_stats conflict.
  ExpectError(
      client.Post(
          "/v1/recommend",
          R"({"dataset":"panel","complaint":{"aggregate":"mean","measure":"severity"},)"
          R"("options":{"model":{},"extra_repair_stats":["count"]}})"),
      400, "INVALID_ARGUMENT");

  // Malformed JSON inside the options still reports the byte offset.
  Result<HttpClientResponse> malformed = client.Post(
      "/v1/recommend",
      R"({"dataset":"panel","complaint":{"aggregate":"mean"},"options":{"model":{,}}})");
  ExpectError(malformed, 400, "PARSE_ERROR");
  EXPECT_NE(malformed->body.find("byte "), std::string::npos) << malformed->body;
}

// The warm-path acceptance criterion over the wire: the same request served
// cold and cache-warm returns byte-identical bodies under zero_timings, and
// /healthz exposes the cache traffic.
TEST_F(ServerTest, WarmCacheResponsesByteIdenticalAndObservable) {
  HttpClient client = Client();
  const std::string body = PanelBatchBody();

  Result<HttpClientResponse> cold = client.Post("/v1/recommend_batch", body);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->status, 200);

  Result<HttpClientResponse> health_after_cold = client.Get("/healthz");
  ASSERT_TRUE(health_after_cold.ok());
  Result<JsonValue> cold_health = ParseJson(health_after_cold->body);
  ASSERT_TRUE(cold_health.ok());
  const JsonValue* model_cache = cold_health->Find("model_cache");
  ASSERT_NE(model_cache, nullptr);
  int64_t fits_after_cold = model_cache->Find("fits")->IntValue();
  EXPECT_GT(fits_after_cold, 0);
  EXPECT_EQ(model_cache->Find("entries")->IntValue(), fits_after_cold);
  EXPECT_GT(cold_health->Find("aggregate_cache")->Find("entries")->IntValue(), 0);

  // Same request again: warm — zero new fits, hits instead, identical bytes.
  Result<HttpClientResponse> warm = client.Post("/v1/recommend_batch", body);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->body, cold->body);

  Result<HttpClientResponse> health_after_warm = client.Get("/healthz");
  ASSERT_TRUE(health_after_warm.ok());
  Result<JsonValue> warm_health = ParseJson(health_after_warm->body);
  ASSERT_TRUE(warm_health.ok());
  const JsonValue* warm_model_cache = warm_health->Find("model_cache");
  EXPECT_EQ(warm_model_cache->Find("fits")->IntValue(), fits_after_cold);
  EXPECT_EQ(warm_model_cache->Find("hits")->IntValue(), fits_after_cold);

  // A per-client session over the same dataset is warm from its first call.
  Result<HttpClientResponse> created =
      client.Post("/v1/sessions", R"({"dataset":"panel"})");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->status, 201);
  Result<JsonValue> session = ParseJson(created->body);
  ASSERT_TRUE(session.ok());
  std::string id = session->Find("session")->string_value();
  // The default session is committed to time depth 1; match it.
  Result<HttpClientResponse> committed = client.Post(
      "/v1/commit", R"({"session":")" + id + R"(","hierarchy":"time"})");
  ASSERT_TRUE(committed.ok());
  Result<HttpClientResponse> warm_session = client.Post(
      "/v1/recommend_batch",
      PanelBatchBody("", R"("session":")" + id + R"(")"));
  ASSERT_TRUE(warm_session.ok()) << warm_session.status().ToString();
  EXPECT_EQ(warm_session->body, cold->body);
  Result<HttpClientResponse> final_health = client.Get("/healthz");
  ASSERT_TRUE(final_health.ok());
  Result<JsonValue> final_parsed = ParseJson(final_health->body);
  ASSERT_TRUE(final_parsed.ok());
  EXPECT_EQ(final_parsed->Find("model_cache")->Find("fits")->IntValue(), fits_after_cold);
}

// A session created with options.model runs that spec on every call.
TEST_F(ServerTest, SessionCreateAcceptsModelOptions) {
  HttpClient client = Client();
  Result<HttpClientResponse> created = client.Post(
      "/v1/sessions",
      R"({"dataset":"panel","committed":{"time":1},)"
      R"("options":{"model":{"kind":"linear","backend":"dense"}}})");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_EQ(created->status, 201) << created->body;
  Result<JsonValue> session = ParseJson(created->body);
  ASSERT_TRUE(session.ok());
  std::string id = session->Find("session")->string_value();

  Result<HttpClientResponse> response = client.Post(
      "/v1/recommend",
      R"({"session":")" + id +
          R"(","complaint":{"aggregate":"mean","measure":"severity",)"
          R"("where":[{"column":"year","value":"y1"}]}})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200) << response->body;
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("model")->Find("kind")->string_value(), "linear");
  EXPECT_EQ(parsed->Find("model")->Find("backend")->string_value(), "dense");

  // Bad model options are rejected at creation, naming the field.
  ExpectError(client.Post("/v1/sessions",
                          R"({"dataset":"panel","options":{"model":{"backend":"gpu"}}})"),
              400, "INVALID_ARGUMENT");
}

// ---------------------------------------------------------------------------
// Observability: /metricsz, X-Request-Id, Server-Timing, the debug ring, and
// the per-request log line.

// The value of `name` among a response's extra headers, or nullptr.
const std::string* FindExtraHeader(const HttpResponse& response, const std::string& name) {
  for (const auto& [header, value] : response.extra_headers) {
    if (header == name) return &value;
  }
  return nullptr;
}

// A single-complaint recommend body against the "panel" dataset.
std::string SingleRecommendBody(const std::string& extra_options = std::string()) {
  return R"({"dataset":"panel","complaint":{"aggregate":"std","measure":"severity",)"
         R"("where":[{"column":"year","value":"y1"}]},"options":{"zero_timings":false)" +
         extra_options + "}}";
}

HttpRequest MakeRequest(const std::string& method, const std::string& path,
                        std::string body = std::string()) {
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = std::move(body);
  return request;
}

TEST_F(ServerTest, MetricszOverHttp) {
  HttpClient client = Client();
  Result<HttpClientResponse> posted =
      client.Post("/v1/recommend_batch", PanelBatchBody());
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();
  ASSERT_EQ(posted->status, 200) << posted->body;

  Result<HttpClientResponse> scraped = client.Get("/metricsz");
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  EXPECT_EQ(scraped->status, 200);
  ASSERT_NE(scraped->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*scraped->FindHeader("content-type"),
            "text/plain; version=0.0.4; charset=utf-8");
  const std::string& body = scraped->body;
  // The request-latency family counted the POST (the scrape itself is only
  // observed after rendering).
  EXPECT_NE(body.find("# TYPE reptile_http_request_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(body.find("reptile_http_request_duration_seconds_count 1\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("reptile_http_requests_total{code=\"2xx\"} 1\n"),
            std::string::npos)
      << body;
  // Stage histograms fed from the recommend's trace spans.
  for (const char* stage : {"parse", "validate", "plan", "fit", "rank", "serialize"}) {
    EXPECT_NE(body.find("reptile_request_stage_duration_seconds_count{stage=\"" +
                        std::string(stage) + "\"} 1\n"),
              std::string::npos)
        << stage << " missing in:\n"
        << body;
  }
  // Cache/session/process series rendered at scrape time.
  EXPECT_NE(body.find("reptile_aggregate_cache_hits "), std::string::npos);
  EXPECT_NE(body.find("reptile_model_cache_fits "), std::string::npos);
  EXPECT_NE(body.find("reptile_datasets 3\n"), std::string::npos) << body;
  EXPECT_NE(body.find("reptile_sessions 3\n"), std::string::npos) << body;
  EXPECT_NE(body.find("reptile_shared_pool_queue_depth "), std::string::npos);

  // The route is GET-only.
  Result<HttpClientResponse> posted_scrape = client.Post("/metricsz", "{}");
  ASSERT_TRUE(posted_scrape.ok());
  EXPECT_EQ(posted_scrape->status, 405);
}

TEST(ServerObservability, RequestIdAdoptedEchoedRetainedAndLogged) {
  const std::string log_path = ::testing::TempDir() + "/reptile_server_obs_test.jsonl";
  std::remove(log_path.c_str());
  ASSERT_TRUE(Logger::Global().Configure(LogLevel::kDebug, log_path));

  ServiceOptions options;
  options.debug_request_ring = 8;
  ReptileService service(options);
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());

  HttpRequest request = MakeRequest("POST", "/v1/recommend", SingleRecommendBody());
  request.headers.emplace_back("x-request-id", "trace-abc-42");
  HttpResponse response = service.Handle(request);
  ASSERT_TRUE(Logger::Global().Configure(LogLevel::kInfo, ""));
  EXPECT_EQ(response.status, 200) << response.body;

  // Echoed on the response, with the request's stage timings alongside.
  const std::string* id = FindExtraHeader(response, "X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(*id, "trace-abc-42");
  const std::string* timing = FindExtraHeader(response, "Server-Timing");
  ASSERT_NE(timing, nullptr);
  for (const char* stage : {"parse;", "validate;", "plan;", "fit;", "rank;",
                            "serialize;", "total;dur="}) {
    EXPECT_NE(timing->find(stage), std::string::npos) << *timing;
  }

  // Retained in the debug ring.
  HttpResponse ring = service.Handle(MakeRequest("GET", "/v1/debug/requests"));
  ASSERT_EQ(ring.status, 200) << ring.body;
  EXPECT_NE(ring.body.find("\"trace_id\":\"trace-abc-42\""), std::string::npos)
      << ring.body;
  EXPECT_NE(ring.body.find("\"path\":\"/v1/recommend\""), std::string::npos);
  EXPECT_NE(ring.body.find("\"name\":\"fit\""), std::string::npos) << ring.body;

  // And joined to the structured log line.
  std::ifstream log_file(log_path);
  std::string contents((std::istreambuf_iterator<char>(log_file)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"event\":\"request\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"trace_id\":\"trace-abc-42\""), std::string::npos)
      << contents;
  EXPECT_NE(contents.find("\"status\":200"), std::string::npos) << contents;
  std::remove(log_path.c_str());
}

TEST(ServerObservability, HostileRequestIdIsReplacedWithMintedId) {
  ReptileService service;
  HttpRequest request = MakeRequest("GET", "/healthz");
  request.headers.emplace_back("x-request-id", "bad id\r\nX-Evil: 1");
  HttpResponse response = service.Handle(request);
  EXPECT_EQ(response.status, 200);
  const std::string* id = FindExtraHeader(response, "X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_NE(*id, "bad id\r\nX-Evil: 1");
  EXPECT_EQ(id->size(), 16u);
  EXPECT_TRUE(ValidTraceId(*id)) << *id;
}

TEST(ServerObservability, ZeroTimingsZeroesRenderedTimingsButNotMetrics) {
  ServiceOptions options;
  options.debug_request_ring = 4;
  ReptileService service(options);
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());

  HttpRequest request = MakeRequest(
      "POST", "/v1/recommend",
      R"({"dataset":"panel","complaint":{"aggregate":"std","measure":"severity",)"
      R"("where":[{"column":"year","value":"y1"}]},"options":{"zero_timings":true}})");
  HttpResponse response = service.Handle(request);
  ASSERT_EQ(response.status, 200) << response.body;

  // Every Server-Timing duration renders as 0.000 — span names still prove
  // the stages ran.
  const std::string* timing = FindExtraHeader(response, "Server-Timing");
  ASSERT_NE(timing, nullptr);
  EXPECT_NE(timing->find("fit;"), std::string::npos) << *timing;
  for (size_t pos = timing->find("dur="); pos != std::string::npos;
       pos = timing->find("dur=", pos + 1)) {
    EXPECT_EQ(timing->substr(pos, 9), "dur=0.000") << *timing;
  }

  // Ring records obey the same contract: durations and offsets zeroed.
  HttpResponse ring = service.Handle(MakeRequest("GET", "/v1/debug/requests"));
  ASSERT_EQ(ring.status, 200);
  EXPECT_NE(ring.body.find("\"duration_ms\":0,"), std::string::npos) << ring.body;
  EXPECT_NE(ring.body.find("\"start_ms\":0,"), std::string::npos) << ring.body;

  // Metrics still observed the real duration: the latency sum is not zero.
  HttpResponse scraped = service.Handle(MakeRequest("GET", "/metricsz"));
  ASSERT_EQ(scraped.status, 200);
  EXPECT_NE(scraped.body.find("reptile_http_request_duration_seconds_count"),
            std::string::npos);
  EXPECT_EQ(scraped.body.find("reptile_http_request_duration_seconds_sum 0\n"),
            std::string::npos)
      << scraped.body;
}

TEST(ServerObservability, DebugRequestsRouteIsOptInAndAuthGated) {
  // Off by default: the route does not exist.
  {
    ReptileService service;
    HttpResponse response = service.Handle(MakeRequest("GET", "/v1/debug/requests"));
    EXPECT_EQ(response.status, 404);
  }
  // On with auth configured: bearer-gated, unlike /healthz.
  ServiceOptions options;
  options.debug_request_ring = 4;
  options.auth_token = "sekrit";
  ReptileService service(options);

  HttpResponse denied = service.Handle(MakeRequest("GET", "/v1/debug/requests"));
  EXPECT_EQ(denied.status, 401);

  HttpRequest authed = MakeRequest("GET", "/v1/debug/requests");
  authed.headers.emplace_back("authorization", "Bearer sekrit");
  HttpResponse granted = service.Handle(authed);
  EXPECT_EQ(granted.status, 200) << granted.body;
  EXPECT_NE(granted.body.find("\"capacity\":4"), std::string::npos) << granted.body;

  HttpResponse open_health = service.Handle(MakeRequest("GET", "/healthz"));
  EXPECT_EQ(open_health.status, 200);

  HttpRequest posted = MakeRequest("POST", "/v1/debug/requests");
  posted.headers.emplace_back("authorization", "Bearer sekrit");
  EXPECT_EQ(service.Handle(posted).status, 405);
}

TEST(ServerObservability, SlowRequestThresholdLogsAtWarnWithSpans) {
  const std::string log_path = ::testing::TempDir() + "/reptile_slow_req_test.jsonl";
  std::remove(log_path.c_str());
  // Level warn: ordinary per-request debug lines are filtered out, so
  // anything in the file came from the slow-request path.
  ASSERT_TRUE(Logger::Global().Configure(LogLevel::kWarn, log_path));

  ServiceOptions options;
  options.slow_request_ms = 1e-6;  // everything is "slow"
  ReptileService service(options);
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());
  HttpResponse response =
      service.Handle(MakeRequest("POST", "/v1/recommend", SingleRecommendBody()));
  ASSERT_TRUE(Logger::Global().Configure(LogLevel::kInfo, ""));
  ASSERT_EQ(response.status, 200) << response.body;

  std::ifstream log_file(log_path);
  std::string contents((std::istreambuf_iterator<char>(log_file)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"level\":\"warn\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"event\":\"slow_request\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"spans\":[{\"name\":\"parse\""), std::string::npos)
      << contents;
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace reptile
