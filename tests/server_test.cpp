// Loopback integration tests for the HTTP front end (src/server/): routing,
// request mapping, the StatusCode -> HTTP error contract, request framing
// limits, keep-alive, concurrent clients, and — the core guarantee — that
// HTTP response bodies are byte-identical to direct Session calls.

#include <string>
#include <thread>
#include <vector>

#include "datagen/panel_gen.h"
#include "gtest/gtest.h"
#include "reptile/reptile.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/json.h"
#include "server/service.h"

namespace reptile {
namespace {

constexpr int kDistricts = 4;
constexpr int kVillages = 3;
constexpr int kYears = 4;
constexpr int kRowsPerGroup = 3;

// The fig08 panel shape (district x village x year severity), scaled down
// for test speed. MakeSeverityPanel is deterministic in its spec, so
// independently built copies are bit-identical — the basis of every
// byte-equality assertion below.
Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = kDistricts;
  spec.villages_per_district = kVillages;
  spec.years = kYears;
  spec.rows_per_group = kRowsPerGroup;
  return MakeSeverityPanel(spec);
}

Session MakePanelSession(bool commit_time = true) {
  Result<Session> session = Session::Create(MakePanel());
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (commit_time) {
    Status committed = session->Commit("time");
    EXPECT_TRUE(committed.ok()) << committed.ToString();
  }
  return std::move(session).value();
}

// The fig08 complaint panel: one STD complaint per year.
std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < kYears; ++y) {
    complaints.push_back(ComplaintSpec::TooHigh("std", "severity")
                             .Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

// The same complaint panel as a recommend_batch request body.
std::string PanelBatchBody(const std::string& extra_options = std::string()) {
  std::string body = R"({"dataset":"panel","complaints":[)";
  for (int y = 0; y < kYears; ++y) {
    if (y > 0) body += ',';
    body += R"({"aggregate":"std","measure":"severity","where":[{"column":"year","value":"y)" +
            std::to_string(y) + R"("}]})";
  }
  body += R"(],"options":{"zero_timings":true)";
  body += extra_options;
  body += "}}";
  return body;
}

// Serialisation with the (scheduling-dependent) timing fields zeroed, to
// match the wire's zero_timings option.
std::string TimelessJson(BatchExploreResponse batch) {
  batch.train_seconds = 0.0;
  batch.wall_seconds = 0.0;
  for (ExploreResponse& response : batch.responses) {
    for (HierarchyResponse& candidate : response.candidates) {
      candidate.train_seconds = 0.0;
      candidate.total_seconds = 0.0;
    }
  }
  return batch.ToJson();
}

std::string TimelessJson(ExploreResponse response) {
  for (HierarchyResponse& candidate : response.candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
  return response.ToJson();
}

// One served ReptileService (datasets "panel", "fresh", "exhausted") plus an
// identically constructed direct Session for byte-equality comparisons.
class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : direct_(MakePanelSession()) {
    ServiceOptions service_options;
    service_options.enable_debug_status_route = true;
    service_ = std::make_unique<ReptileService>(service_options);
    EXPECT_TRUE(service_->AddSession("panel", MakePanelSession()).ok());
    EXPECT_TRUE(service_->AddSession("fresh", MakePanelSession(false)).ok());
    Session exhausted = MakePanelSession();
    EXPECT_TRUE(exhausted.Commit("geo").ok());
    EXPECT_TRUE(exhausted.Commit("geo").ok());
    EXPECT_TRUE(service_->AddSession("exhausted", std::move(exhausted)).ok());

    HttpServerOptions options;
    options.port = 0;
    options.num_threads = 4;
    server_ = std::make_unique<HttpServer>(
        options, [this](const HttpRequest& request) { return service_->Handle(request); });
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~ServerTest() override { server_->Stop(); }

  HttpClient Client() { return HttpClient("127.0.0.1", server_->port()); }

  Session direct_;
  std::unique_ptr<ReptileService> service_;
  std::unique_ptr<HttpServer> server_;
};

// Expects a response with the given HTTP status whose error body names the
// given code.
void ExpectError(const Result<HttpClientResponse>& response, int http_status,
                 const std::string& code) {
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, http_status);
  EXPECT_NE(response->body.find("\"code\":\"" + code + "\""), std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"http\":" + std::to_string(http_status)),
            std::string::npos)
      << response->body;
}

TEST_F(ServerTest, Healthz) {
  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "{\"status\":\"ok\",\"datasets\":3}");
  ASSERT_NE(response->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*response->FindHeader("content-type"), "application/json");
}

TEST_F(ServerTest, DatasetsEndpoint) {
  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Get("/v1/datasets");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<JsonValue>& datasets = parsed->Find("datasets")->array_items();
  ASSERT_EQ(datasets.size(), 3u);  // sorted: exhausted, fresh, panel
  EXPECT_EQ(datasets[0].Find("name")->string_value(), "exhausted");
  EXPECT_EQ(datasets[2].Find("name")->string_value(), "panel");
  const JsonValue& panel = datasets[2];
  EXPECT_EQ(panel.Find("rows")->IntValue(),
            kDistricts * kVillages * kYears * kRowsPerGroup);
  EXPECT_EQ(panel.Find("columns")->array_items().size(), 4u);
  const std::vector<JsonValue>& hierarchies = panel.Find("hierarchies")->array_items();
  ASSERT_EQ(hierarchies.size(), 2u);
  EXPECT_EQ(hierarchies[1].Find("name")->string_value(), "time");
  EXPECT_EQ(hierarchies[1].Find("drill_depth")->IntValue(), 1);
  EXPECT_FALSE(hierarchies[1].Find("can_drill")->bool_value());
  EXPECT_TRUE(hierarchies[0].Find("can_drill")->bool_value());
}

// The acceptance criterion: the recommend_batch response body over loopback
// is byte-identical (timing fields zeroed) to a direct Session::RecommendAll
// on the fig08 complaint panel.
TEST_F(ServerTest, RecommendBatchByteIdenticalToDirectSession) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Result<BatchExploreResponse> direct = direct_.RecommendAll(
      std::span<const ComplaintSpec>(complaints.data(), complaints.size()));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  std::string expected = TimelessJson(*direct);

  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Post("/v1/recommend_batch", PanelBatchBody());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, expected);
}

TEST_F(ServerTest, RecommendSingleByteIdenticalWithPerCallOverrides) {
  ComplaintSpec complaint =
      ComplaintSpec::TooHigh("std", "severity").Where("year", "y2");
  Result<ExploreResponse> direct =
      direct_.Recommend(complaint, BatchOptions().TopK(1).Threads(2));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Post(
      "/v1/recommend",
      R"({"dataset":"panel","complaint":{"aggregate":"std","measure":"severity",)"
      R"("where":[{"column":"year","value":"y2"}]},)"
      R"("options":{"zero_timings":true,"top_k":1,"threads":2}})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, TimelessJson(*direct));
  // top_k=1 really made it through: exactly one group per candidate.
  Result<JsonValue> parsed = ParseJson(response->body);
  ASSERT_TRUE(parsed.ok());
  for (const JsonValue& candidate : parsed->Find("candidates")->array_items()) {
    EXPECT_LE(candidate.Find("groups")->array_items().size(), 1u);
  }
}

TEST_F(ServerTest, ExtraRepairStatsFlowThroughTheWire) {
  // MEAN decomposes into {mean} alone; the per-call extra adds count.
  ComplaintSpec complaint =
      ComplaintSpec::TooHigh("mean", "severity").Where("year", "y1");
  Result<ExploreResponse> direct =
      direct_.Recommend(complaint, BatchOptions().RepairAlso("count"));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  HttpClient client = Client();
  const std::string request_prefix =
      R"({"dataset":"panel","complaint":{"aggregate":"mean","measure":"severity",)"
      R"("where":[{"column":"year","value":"y1"}]},)"
      R"("options":{"zero_timings":true,"extra_repair_stats":)";
  Result<HttpClientResponse> with_extras =
      client.Post("/v1/recommend", request_prefix + R"(["count"]}})");
  ASSERT_TRUE(with_extras.ok()) << with_extras.status().ToString();
  EXPECT_EQ(with_extras->status, 200);
  EXPECT_EQ(with_extras->body, TimelessJson(*direct));
  EXPECT_NE(with_extras->body.find("\"count\":"), std::string::npos);

  // An explicitly empty list toggles extras off: same bytes as no option.
  Result<ExploreResponse> plain = direct_.Recommend(complaint);
  ASSERT_TRUE(plain.ok());
  Result<HttpClientResponse> without_extras =
      client.Post("/v1/recommend", request_prefix + R"([]}})");
  ASSERT_TRUE(without_extras.ok()) << without_extras.status().ToString();
  EXPECT_EQ(without_extras->body, TimelessJson(*plain));
  EXPECT_NE(with_extras->body, without_extras->body);
}

TEST_F(ServerTest, ViewByteIdenticalToDirectSession) {
  ViewRequest request;
  request.GroupBy("district").Measure("severity").Where("year", "y1");
  Result<ViewResponse> direct = direct_.View(request);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  HttpClient client = Client();
  Result<HttpClientResponse> response = client.Post(
      "/v1/view",
      R"({"dataset":"panel","group_by":["district"],"measure":"severity",)"
      R"("where":[{"column":"year","value":"y1"}]})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, direct->ToJson());
}

TEST_F(ServerTest, CommitAdvancesDrillState) {
  HttpClient client = Client();
  Result<HttpClientResponse> commit =
      client.Post("/v1/commit", R"({"dataset":"fresh","hierarchy":"time"})");
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->status, 200);
  EXPECT_EQ(commit->body, R"({"hierarchy":"time","depth":1,"can_drill":false})");

  // The same commit again: the hierarchy is exhausted -> 409.
  ExpectError(client.Post("/v1/commit", R"({"dataset":"fresh","hierarchy":"time"})"), 409,
              "FAILED_PRECONDITION");
  // Unknown hierarchy name -> 404.
  ExpectError(client.Post("/v1/commit", R"({"dataset":"fresh","hierarchy":"nope"})"), 404,
              "NOT_FOUND");
}

TEST_F(ServerTest, RecommendOnExhaustedDatasetConflicts) {
  HttpClient client = Client();
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"exhausted","complaint":{"aggregate":"count"}})"),
              409, "FAILED_PRECONDITION");
}

TEST_F(ServerTest, RequestErrorSurface) {
  HttpClient client = Client();
  // Malformed JSON -> kParseError -> 400, message carries the byte offset.
  Result<HttpClientResponse> malformed =
      client.Post("/v1/recommend", R"({"dataset": "panel",)");
  ExpectError(malformed, 400, "PARSE_ERROR");
  EXPECT_NE(malformed->body.find("byte "), std::string::npos) << malformed->body;

  // Wrong-typed fields -> 400 naming the field.
  Result<HttpClientResponse> wrong_type = client.Post(
      "/v1/recommend_batch", R"({"dataset":"panel","complaints":{"aggregate":"std"}})");
  ExpectError(wrong_type, 400, "INVALID_ARGUMENT");
  EXPECT_NE(wrong_type->body.find("complaints must be an array, got object"),
            std::string::npos)
      << wrong_type->body;
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"std",)"
                          R"("measure":"severity"},"options":{"threads":"four"}})"),
              400, "INVALID_ARGUMENT");
  // Unknown fields are rejected, not ignored.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"std",)"
                          R"("measure":"severity"},"options":{"topk":1}})"),
              400, "INVALID_ARGUMENT");
  // Missing required fields.
  ExpectError(client.Post("/v1/recommend", R"({"complaint":{"aggregate":"std"}})"), 400,
              "INVALID_ARGUMENT");
  ExpectError(client.Post("/v1/recommend_batch",
                          R"({"dataset":"panel","complaints":[]})"),
              400, "INVALID_ARGUMENT");
  // Unknown dataset -> 404.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"nope","complaint":{"aggregate":"count"}})"),
              404, "NOT_FOUND");
  // Unknown complaint column -> the session's kNotFound -> 404.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"std",)"
                          R"("measure":"severity","where":[{"column":"nope","value":"x"}]}})"),
              404, "NOT_FOUND");
  // Bad aggregate name -> the session's kInvalidArgument -> 400.
  ExpectError(client.Post("/v1/recommend",
                          R"({"dataset":"panel","complaint":{"aggregate":"median"}})"),
              400, "INVALID_ARGUMENT");
  // Unknown route -> 404; known route with the wrong method -> 405 + Allow.
  ExpectError(client.Get("/v1/unknown"), 404, "NOT_FOUND");
  Result<HttpClientResponse> wrong_method = client.Get("/v1/recommend");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
  ASSERT_NE(wrong_method->FindHeader("allow"), nullptr);
  EXPECT_EQ(*wrong_method->FindHeader("allow"), "POST");
  Result<HttpClientResponse> post_healthz = client.Post("/healthz", "{}");
  ASSERT_TRUE(post_healthz.ok());
  EXPECT_EQ(post_healthz->status, 405);
}

// Every StatusCode -> HTTP pair, asserted over loopback via the debug route
// (kIoError / kInternal have no healthy data-route trigger).
TEST_F(ServerTest, StatusCodeToHttpMappingOverLoopback) {
  const std::pair<const char*, int> expected[] = {
      {"INVALID_ARGUMENT", 400}, {"PARSE_ERROR", 400},        {"NOT_FOUND", 404},
      {"FAILED_PRECONDITION", 409}, {"IO_ERROR", 500},        {"INTERNAL", 500},
  };
  HttpClient client = Client();
  for (const auto& [code, http] : expected) {
    Result<HttpClientResponse> response = client.Post(
        "/v1/_debug/status",
        std::string(R"({"code":")") + code + R"(","message":"mapped"})");
    ExpectError(response, http, code);
  }
  // And the mapping function itself, including kOk.
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kParseError), 400);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kNotFound), 404);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kFailedPrecondition), 409);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kIoError), 500);
  EXPECT_EQ(ReptileService::HttpStatusFor(StatusCode::kInternal), 500);
}

TEST_F(ServerTest, FramingErrors) {
  {
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw("THIS IS NOT HTTP\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
  }
  {
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("501 Not Implemented"), std::string::npos) << *raw;
  }
  {
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
  }
  {
    // Whitespace between a header name and the colon (and obs-fold
    // continuation lines) are smuggling vectors and must be rejected.
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length : 4\r\n\r\nabcd");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
    HttpClient folded = Client();
    Result<std::string> fold_raw = folded.SendRaw(
        "GET /healthz HTTP/1.1\r\nX-A: 1\r\n \tcontinued\r\n\r\n");
    ASSERT_TRUE(fold_raw.ok()) << fold_raw.status().ToString();
    EXPECT_NE(fold_raw->find("400 Bad Request"), std::string::npos) << *fold_raw;
  }
  {
    // A negative Content-Length must be a 400, not wrap through unsigned
    // parsing into a nonsense 413.
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
  }
  {
    // Duplicate Content-Length (even agreeing ones) is a smuggling vector
    // and must be rejected, not first-wins-accepted.
    HttpClient client = Client();
    Result<std::string> raw = client.SendRaw(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 4\r\n\r\nabcd");
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_NE(raw->find("400 Bad Request"), std::string::npos) << *raw;
    EXPECT_NE(raw->find("multiple Content-Length"), std::string::npos) << *raw;
  }
}

TEST_F(ServerTest, KeepAliveReusesOneConnection) {
  HttpClient client = Client();
  for (int i = 0; i < 3; ++i) {
    Result<HttpClientResponse> response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  EXPECT_EQ(server_->connections_accepted(), 1);
}

// The acceptance criterion's concurrency half: >= 4 client threads issuing
// recommend_batch (plus interleaved healthz/view noise) all receive correct,
// uncorrupted bodies. scripts/check.sh re-runs this under TSan.
TEST_F(ServerTest, ConcurrentClientsGetCorrectResponses) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Result<BatchExploreResponse> direct = direct_.RecommendAll(
      std::span<const ComplaintSpec>(complaints.data(), complaints.size()));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const std::string expected_batch = TimelessJson(*direct);
  ViewRequest view_request;
  view_request.GroupBy("district").Measure("severity");
  Result<ViewResponse> view = direct_.View(view_request);
  ASSERT_TRUE(view.ok());
  const std::string expected_view = view->ToJson();
  const std::string batch_body = PanelBatchBody();

  constexpr int kThreads = 5;
  constexpr int kIterations = 3;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kIterations; ++i) {
        Result<HttpClientResponse> batch = client.Post("/v1/recommend_batch", batch_body);
        if (!batch.ok() || batch->status != 200 || batch->body != expected_batch) {
          ++failures[t];
        }
        Result<HttpClientResponse> health = client.Get("/healthz");
        if (!health.ok() || health->status != 200) ++failures[t];
        Result<HttpClientResponse> seen = client.Post(
            "/v1/view", R"({"dataset":"panel","group_by":["district"],"measure":"severity"})");
        if (!seen.ok() || seen->status != 200 || seen->body != expected_view) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "client thread " << t << " saw corrupted responses";
  }
}

TEST(ServerLimits, OversizedBodyIsRejected) {
  ReptileService service;
  ASSERT_TRUE(service.AddSession("panel", MakePanelSession()).ok());
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  options.max_body_bytes = 128;
  HttpServer server(options,
                    [&service](const HttpRequest& request) { return service.Handle(request); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  std::string big_body = R"({"dataset":"panel","complaint":{"aggregate":"std","measure":")" +
                         std::string(512, 'x') + R"("}})";
  Result<HttpClientResponse> response = client.Post("/v1/recommend", big_body);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 413);
  EXPECT_NE(response->body.find("exceeds"), std::string::npos) << response->body;
  // A fresh, small request still works: the limit didn't wedge the server.
  Result<HttpClientResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  server.Stop();
}

TEST(ServerLimits, OversizedHeaderSectionIsRejected) {
  ReptileService service;
  ASSERT_TRUE(service.AddSession("panel", MakePanelSession()).ok());
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.max_header_bytes = 256;
  HttpServer server(options,
                    [&service](const HttpRequest& request) { return service.Handle(request); });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  std::string raw = "GET /healthz HTTP/1.1\r\nX-Padding: " + std::string(1024, 'p') +
                    "\r\n\r\n";
  Result<std::string> response = client.SendRaw(raw);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("431"), std::string::npos) << *response;
  server.Stop();
}

TEST(ServerLifecycle, StopFinishesInFlightAndRefusesNewConnections) {
  ReptileService service;
  ASSERT_TRUE(service.AddSession("panel", MakePanelSession()).ok());
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  auto server = std::make_unique<HttpServer>(
      options, [&service](const HttpRequest& request) { return service.Handle(request); });
  ASSERT_TRUE(server->Start().ok());
  int port = server->port();
  {
    HttpClient client("127.0.0.1", port);
    Result<HttpClientResponse> response = client.Get("/healthz");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  }
  server->Stop();
  HttpClient client("127.0.0.1", port);
  Result<HttpClientResponse> after = client.Get("/healthz");
  EXPECT_FALSE(after.ok());  // connection refused (or immediately dropped)
  server.reset();            // double-stop via destructor is safe
}

}  // namespace
}  // namespace reptile
