// Tests for the observability primitives (src/obs/): histogram determinism
// under concurrency, the Prometheus text golden (pinning the exact wire
// bytes /metricsz emits), trace ids and Server-Timing rendering, the debug
// request ring, the JSON-lines logger, and build identity.
//
// The concurrency tests are the TSan targets named by scripts/check.sh's
// sanitizer stage (ctest -R 'Obs...').

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/build_info.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_ring.h"
#include "obs/trace.h"

namespace reptile {
namespace {

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogram, BucketIndexBracketsTheLadder) {
  // `seconds <= bound[i]` semantics: exact bounds land in their own bucket.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e-7), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e-6), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.1e-6), 1);
  EXPECT_EQ(Histogram::BucketIndex(0.0015), 10);  // -> le="0.002"
  EXPECT_EQ(Histogram::BucketIndex(100.0), Histogram::kNumBounds - 1);
  EXPECT_EQ(Histogram::BucketIndex(100.1), Histogram::kNumBounds);  // overflow
  // Bounds and their label spellings stay index-aligned.
  ASSERT_EQ(Histogram::BucketBounds().size(), Histogram::BucketLabels().size());
}

TEST(ObsHistogram, CountSumAndBucketsAreExact) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum_seconds(), 0.0);
  h.Observe(0.0015);
  h.Observe(0.003);
  h.Observe(0.25);
  h.Observe(200.0);  // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.BucketCount(10), 1);
  EXPECT_EQ(h.BucketCount(11), 1);
  EXPECT_EQ(h.BucketCount(17), 1);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBounds), 1);
  // Sum accumulates in integer nanoseconds: exact, not approximately-equal.
  // Compare against the same nanos -> seconds computation the getter uses so
  // the equality is bitwise, independent of decimal-literal rounding.
  EXPECT_EQ(h.sum_seconds(), static_cast<double>(INT64_C(200254500000)) * 1e-9);
}

TEST(ObsHistogram, QuantileReturnsBucketUpperBounds) {
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);

  Histogram one;
  one.Observe(0.003);  // bucket le="0.005"
  EXPECT_EQ(one.Quantile(0.5), 0.005);
  EXPECT_EQ(one.Quantile(0.99), 0.005);

  Histogram overflow;
  overflow.Observe(500.0);
  EXPECT_EQ(overflow.Quantile(0.99), 100.0);  // clamped to the last finite bound

  Histogram spread;
  for (int i = 0; i < 90; ++i) spread.Observe(0.0008);  // le="0.001"
  for (int i = 0; i < 10; ++i) spread.Observe(0.04);    // le="0.05"
  EXPECT_EQ(spread.Quantile(0.50), 0.001);
  EXPECT_EQ(spread.Quantile(0.90), 0.001);  // rank 90 still in the first bucket
  EXPECT_EQ(spread.Quantile(0.99), 0.05);
}

// The determinism anchor: N threads recording a fixed multiset of values
// produce a snapshot identical to a sequential replay — same count, same
// per-bucket counts, and the same sum to the nanosecond. Run under TSan by
// scripts/check.sh.
TEST(ObsHistogram, ConcurrentObservationsMatchSequentialReplay) {
  std::vector<double> values;
  values.reserve(8000);
  for (int i = 0; i < 8000; ++i) {
    // Deterministic spread over ~5 decades, including overflow outliers.
    values.push_back(1e-6 * static_cast<double>((i % 997) * (i % 97) + 1));
  }
  values[123] = 250.0;  // overflow
  values[456] = 101.0;  // overflow

  Histogram concurrent;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, &values, t] {
      for (size_t i = static_cast<size_t>(t); i < values.size(); i += kThreads) {
        concurrent.Observe(values[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  Histogram sequential;
  for (double v : values) sequential.Observe(v);

  EXPECT_EQ(concurrent.count(), sequential.count());
  EXPECT_EQ(concurrent.count(), static_cast<int64_t>(values.size()));
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(concurrent.BucketCount(i), sequential.BucketCount(i)) << "bucket " << i;
  }
  EXPECT_EQ(concurrent.sum_seconds(), sequential.sum_seconds());
}

// Counters and gauges under contention: totals are exact.
TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  Counter counter;
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Add(2);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(gauge.value(), 2 * kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(ObsMetricsRegistry, GetIsGetOrCreate) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "x", {{"code", "2xx"}});
  Counter* b = registry.GetCounter("x_total", "x", {{"code", "2xx"}});
  Counter* c = registry.GetCounter("x_total", "x", {{"code", "5xx"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  Histogram* h1 = registry.GetHistogram("y_seconds", "y");
  Histogram* h2 = registry.GetHistogram("y_seconds", "y");
  EXPECT_EQ(h1, h2);
}

// Pins the /metricsz wire format byte-for-byte: HELP/TYPE preamble, family
// ordering (sorted by name), label rendering, the exact `le` spellings of
// the 1-2-5 ladder, cumulative buckets, and the %.9g `_sum`.
TEST(ObsMetricsRegistry, PrometheusTextGolden) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("test_requests_total", "requests served",
                                          {{"code", "2xx"}});
  requests->Increment(3);
  Gauge* depth = registry.GetGauge("test_queue_depth", "queue depth");
  depth->Set(7);
  registry.RegisterCallbackGauge("test_cb_items", "sampled at render time", {},
                                 [] { return int64_t{42}; });
  Histogram* latency = registry.GetHistogram("test_latency_seconds", "request latency");
  latency->Observe(0.0015);  // le="0.002"
  latency->Observe(0.003);   // le="0.005"
  latency->Observe(0.25);    // le="0.5"
  latency->Observe(200.0);   // +Inf

  // An independent copy of the ladder's spellings: if the renderer (or the
  // ladder) drifts, this test — not a scrape consumer — catches it.
  const char* kLe[25] = {"1e-06",  "2e-06",  "5e-06", "1e-05", "2e-05", "5e-05",
                         "0.0001", "0.0002", "0.0005", "0.001", "0.002", "0.005",
                         "0.01",   "0.02",   "0.05",   "0.1",   "0.2",   "0.5",
                         "1",      "2",      "5",      "10",    "20",    "50",
                         "100"};
  const int kCumulative[25] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 2,
                               2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3};
  std::string expected;
  expected += "# HELP test_cb_items sampled at render time\n";
  expected += "# TYPE test_cb_items gauge\n";
  expected += "test_cb_items 42\n";
  expected += "# HELP test_latency_seconds request latency\n";
  expected += "# TYPE test_latency_seconds histogram\n";
  for (int i = 0; i < 25; ++i) {
    expected += std::string("test_latency_seconds_bucket{le=\"") + kLe[i] + "\"} " +
                std::to_string(kCumulative[i]) + "\n";
  }
  expected += "test_latency_seconds_bucket{le=\"+Inf\"} 4\n";
  expected += "test_latency_seconds_sum 200.2545\n";
  expected += "test_latency_seconds_count 4\n";
  expected += "# HELP test_queue_depth queue depth\n";
  expected += "# TYPE test_queue_depth gauge\n";
  expected += "test_queue_depth 7\n";
  expected += "# HELP test_requests_total requests served\n";
  expected += "# TYPE test_requests_total counter\n";
  expected += "test_requests_total{code=\"2xx\"} 3\n";

  EXPECT_EQ(registry.RenderPrometheus(), expected);
}

TEST(ObsMetricsRegistry, HistogramWithLabelsSplicesLeCorrectly) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("stage_seconds", "stage", {{"stage", "fit"}});
  h->Observe(0.003);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"fit\",le=\"0.005\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stage_seconds_count{stage=\"fit\"} 1\n"), std::string::npos);
}

TEST(ObsMetricsRegistry, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("esc_total", "esc", {{"path", "a\"b\\c"}})->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\"} 1\n"), std::string::npos) << text;
}

TEST(ObsMetricsRegistry, RenderJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("j_total", "j")->Increment(2);
  Histogram* h = registry.GetHistogram("j_seconds", "j", {{"stage", "fit"}});
  h->Observe(0.003);
  EXPECT_EQ(registry.RenderJson(),
            "{\"j_seconds\":[{\"labels\":{\"stage\":\"fit\"},\"count\":1,"
            "\"sum_seconds\":0.003,\"p50\":0.005,\"p90\":0.005,\"p99\":0.005}],"
            "\"j_total\":[{\"labels\":{},\"value\":2}]}");
}

TEST(ObsMetricsRegistry, GlobalCarriesTheSharedPoolGauge) {
  EnsureProcessMetrics();
  EnsureProcessMetrics();  // idempotent
  const std::string text = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(text.find("# TYPE reptile_shared_pool_queue_depth gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("reptile_shared_pool_queue_depth "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace

TEST(ObsTrace, MintTraceIdIsSixteenHexAndUnique) {
  const std::string a = MintTraceId();
  const std::string b = MintTraceId();
  EXPECT_NE(a, b);
  for (const std::string& id : {a, b}) {
    ASSERT_EQ(id.size(), 16u) << id;
    for (char c : id) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
    }
    EXPECT_TRUE(ValidTraceId(id));
  }
}

TEST(ObsTrace, ValidTraceIdRejectsHostileInput) {
  EXPECT_TRUE(ValidTraceId("abc123"));
  EXPECT_TRUE(ValidTraceId("A-1_b.c"));
  EXPECT_TRUE(ValidTraceId(std::string(64, 'x')));
  EXPECT_FALSE(ValidTraceId(""));
  EXPECT_FALSE(ValidTraceId(std::string(65, 'x')));
  EXPECT_FALSE(ValidTraceId("a b"));          // header-splitting fodder
  EXPECT_FALSE(ValidTraceId("a\r\nX: y"));    // CRLF injection
  EXPECT_FALSE(ValidTraceId("a\"b"));         // breaks JSON/log quoting
  EXPECT_FALSE(ValidTraceId("caf\xc3\xa9"));  // non-ASCII
}

TEST(ObsTrace, ScopedSpanRecordsOnDestruction) {
  TraceContext trace("tid");
  EXPECT_EQ(trace.id(), "tid");
  {
    ScopedSpan span(&trace, "fit");
    span.SetDetail("hits=3 misses=1");
    EXPECT_TRUE(trace.Spans().empty());  // not yet: records at destruction
  }
  std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "fit");
  EXPECT_EQ(spans[0].detail, "hits=3 misses=1");
  EXPECT_GE(spans[0].start_seconds, 0.0);
  EXPECT_GE(spans[0].duration_seconds, 0.0);
}

TEST(ObsTrace, NullTraceMakesScopedSpanANoOp) {
  ScopedSpan span(nullptr, "anything");
  span.SetDetail("ignored");
  // Destruction must not crash; nothing to assert beyond surviving.
}

TEST(ObsTrace, ServerTimingHeaderFormat) {
  TraceContext trace("tid");
  trace.AddSpan("parse", 0.0, 0.012);
  trace.AddSpan("fit", 0.012, 1.2005, "hits=3 misses=1");
  EXPECT_EQ(ServerTimingHeader(trace, 2.5),
            "parse;dur=12.000, fit;desc=\"hits=3 misses=1\";dur=1200.500, "
            "total;dur=2500.000");
}

TEST(ObsTrace, ZeroDurationsZeroesEveryDur) {
  TraceContext trace("tid");
  trace.AddSpan("parse", 0.0, 0.012);
  trace.AddSpan("rank", 0.012, 0.5, "rows=10");
  trace.set_zero_durations(true);
  EXPECT_EQ(ServerTimingHeader(trace, 2.5),
            "parse;dur=0.000, rank;desc=\"rows=10\";dur=0.000, total;dur=0.000");
}

// AddSpan is advertised thread-safe: hammer it and check nothing is lost.
TEST(ObsTrace, ConcurrentAddSpanLosesNothing) {
  TraceContext trace("tid");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kPerThread; ++i) trace.AddSpan("s", 0.0, 0.001);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(trace.Spans().size(), static_cast<size_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// RequestRing

RequestRecord MakeRecord(const std::string& id) {
  RequestRecord record;
  record.trace_id = id;
  record.method = "POST";
  record.path = "/v1/recommend";
  record.http_status = 200;
  record.duration_seconds = 0.5;
  return record;
}

TEST(ObsRing, CapacityClampsToOne) {
  RequestRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Add(MakeRecord("a"));
  ring.Add(MakeRecord("b"));
  std::vector<RequestRecord> records = ring.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, "b");
}

TEST(ObsRing, OverwritesOldestKeepsOrderAndSequence) {
  RequestRing ring(3);
  for (const char* id : {"a", "b", "c", "d", "e"}) ring.Add(MakeRecord(id));
  std::vector<RequestRecord> records = ring.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].trace_id, "c");
  EXPECT_EQ(records[1].trace_id, "d");
  EXPECT_EQ(records[2].trace_id, "e");
  EXPECT_EQ(records[0].sequence, 3);
  EXPECT_EQ(records[1].sequence, 4);
  EXPECT_EQ(records[2].sequence, 5);
}

TEST(ObsRing, ToJsonShape) {
  RequestRing ring(2);
  RequestRecord record = MakeRecord("abc");
  record.spans.push_back(TraceSpan{"fit", 0.001, 0.25, "hits=3"});
  record.spans.push_back(TraceSpan{"rank", 0.251, 0.125, ""});
  ring.Add(std::move(record));
  EXPECT_EQ(ring.ToJson(),
            "{\"capacity\":2,\"requests\":[{\"seq\":1,\"trace_id\":\"abc\","
            "\"method\":\"POST\",\"path\":\"/v1/recommend\",\"status\":200,"
            "\"duration_ms\":500,\"spans\":[{\"name\":\"fit\",\"start_ms\":1,"
            "\"duration_ms\":250,\"detail\":\"hits=3\"},{\"name\":\"rank\","
            "\"start_ms\":251,\"duration_ms\":125}]}]}");
}

// ---------------------------------------------------------------------------
// Logger

TEST(ObsLog, ParseLogLevelCoversAllNamesAndRejectsJunk) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

TEST(ObsLog, LogFieldsRenderAsJsonFragments) {
  EXPECT_EQ(LogField::Str("k", "a\"b").json_value, "\"a\\\"b\"");
  EXPECT_EQ(LogField::Num("k", 1.5).json_value, "1.5");
  EXPECT_EQ(LogField::Int("k", -3).json_value, "-3");
  EXPECT_EQ(LogField::Bool("k", true).json_value, "true");
  EXPECT_EQ(LogField::Raw("k", "{\"x\":1}").json_value, "{\"x\":1}");
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(ObsLog, WritesJsonLinesAndFiltersByLevel) {
  const std::string path = testing::TempDir() + "/reptile_obs_log_test.jsonl";
  std::remove(path.c_str());
  Logger& logger = Logger::Global();
  ASSERT_TRUE(logger.Configure(LogLevel::kInfo, path));

  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.Enabled(LogLevel::kInfo));
  LogEvent(LogLevel::kDebug, "dropped", {});
  LogEvent(LogLevel::kInfo, "hello",
           {LogField::Str("trace_id", "abc123"), LogField::Int("status", 200),
            LogField::Num("duration_ms", 1.5)});

  // Restore the default sink before asserting, so a failure's own logging
  // cannot deadlock on the file and later tests see the stock logger.
  ASSERT_TRUE(logger.Configure(LogLevel::kInfo, ""));

  const std::string contents = ReadFileOrDie(path);
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.find("dropped"), std::string::npos);
  // One complete JSON line: starts with a ts field, ends with a newline.
  EXPECT_EQ(contents.rfind("{\"ts\":\"", 0), 0u) << contents;
  EXPECT_EQ(contents.back(), '\n');
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 1);
  EXPECT_NE(contents.find("\"level\":\"info\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"event\":\"hello\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"trace_id\":\"abc123\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"status\":200"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"duration_ms\":1.5"), std::string::npos) << contents;
  std::remove(path.c_str());
}

TEST(ObsLog, OffLevelSilencesEverything) {
  const std::string path = testing::TempDir() + "/reptile_obs_log_off_test.jsonl";
  std::remove(path.c_str());
  Logger& logger = Logger::Global();
  ASSERT_TRUE(logger.Configure(LogLevel::kOff, path));
  LogEvent(LogLevel::kError, "silenced", {});
  ASSERT_TRUE(logger.Configure(LogLevel::kInfo, ""));
  EXPECT_EQ(ReadFileOrDie(path), "");
  std::remove(path.c_str());
}

TEST(ObsLog, ConfigureFailsOnUnopenablePathAndKeepsOldSink) {
  Logger& logger = Logger::Global();
  EXPECT_FALSE(logger.Configure(LogLevel::kInfo, "/nonexistent-dir/x/y.log"));
  // Still usable afterwards (writes to the previous sink without crashing).
  LogEvent(LogLevel::kInfo, "still_alive", {});
  ASSERT_TRUE(logger.Configure(LogLevel::kInfo, ""));
}

// ---------------------------------------------------------------------------
// Build info

TEST(ObsBuildInfo, ValuesAreBakedIn) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_NE(info.git_hash, nullptr);
  EXPECT_NE(info.compile_flags, nullptr);
  EXPECT_GT(std::string(info.git_hash).size(), 0u);
  EXPECT_GT(std::string(info.compile_flags).size(), 0u);
  const std::string json = BuildInfoJson();
  EXPECT_EQ(json.rfind("{\"git_hash\":\"", 0), 0u) << json;
  EXPECT_NE(json.find("\"compile_flags\":\""), std::string::npos) << json;
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace reptile
