// The LruByteCache contract both process-shared caches build on: byte
// accounting against a hard budget, LRU eviction order, insert-once racing,
// counter semantics, and — the safety property the shared_ptr design exists
// for — holders surviving eviction.

#include "common/lru_cache.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace reptile {
namespace {

using Cache = LruByteCache<std::string, std::string>;

std::shared_ptr<const std::string> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruByteCache, FindCountsHitsAndMissesAndInsertAccountsBytes) {
  Cache cache;
  EXPECT_EQ(cache.Find("a"), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  cache.Insert("a", Val("alpha"), 100);
  cache.Insert("b", Val("beta"), 50);
  EXPECT_EQ(cache.entries(), 2);
  EXPECT_EQ(cache.bytes(), 150u);
  ASSERT_NE(cache.Find("a"), nullptr);
  EXPECT_EQ(*cache.Find("a"), "alpha");
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
  // Peek is invisible to the counters.
  EXPECT_NE(cache.Peek("b"), nullptr);
  EXPECT_EQ(cache.Peek("nope"), nullptr);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LruByteCache, InsertIsInsertOnce) {
  Cache cache;
  auto first = cache.Insert("k", Val("first"), 10);
  auto second = cache.Insert("k", Val("second"), 10);
  // The loser adopts the resident value; bytes are not double-counted.
  EXPECT_EQ(*second, "first");
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.bytes(), 10u);
}

TEST(LruByteCache, EvictsLeastRecentlyUsedPastBudget) {
  Cache cache;
  cache.set_budget_bytes(250);
  cache.Insert("a", Val("a"), 100);
  cache.Insert("b", Val("b"), 100);
  // Touch "a" so "b" is the LRU tail.
  EXPECT_NE(cache.Find("a"), nullptr);
  cache.Insert("c", Val("c"), 100);  // 300 > 250: evicts "b"
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.bytes(), 200u);
  EXPECT_EQ(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("a"), nullptr);
  EXPECT_NE(cache.Peek("c"), nullptr);
}

TEST(LruByteCache, OversizedEntryIsNotRetained) {
  Cache cache;
  cache.set_budget_bytes(100);
  // The caller still receives a usable pointer; the cache just refuses to
  // keep it, so bytes() <= budget is a hard invariant.
  auto value = cache.Insert("huge", Val("huge"), 1000);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "huge");
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(LruByteCache, ShrinkingBudgetEvictsImmediately) {
  Cache cache;
  cache.Insert("a", Val("a"), 100);
  cache.Insert("b", Val("b"), 100);
  cache.Insert("c", Val("c"), 100);
  cache.set_budget_bytes(150);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_LE(cache.bytes(), 150u);
  // Most recently inserted survives.
  EXPECT_NE(cache.Peek("c"), nullptr);
}

TEST(LruByteCache, HoldersSurviveEviction) {
  Cache cache;
  cache.set_budget_bytes(100);
  auto held = cache.Insert("a", Val("still here"), 100);
  cache.Insert("b", Val("b"), 100);  // evicts "a"
  EXPECT_EQ(cache.Peek("a"), nullptr);
  // The cache dropped only its own reference.
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "still here");
}

TEST(LruByteCache, EraseDropsWithoutCountingEviction) {
  Cache cache;
  cache.Insert("a", Val("a"), 100);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(LruByteCache, KeysAndItemsAreSorted) {
  Cache cache;
  cache.Insert("c", Val("3"), 1);
  cache.Insert("a", Val("1"), 1);
  cache.Insert("b", Val("2"), 1);
  EXPECT_EQ(cache.Keys(), (std::vector<std::string>{"a", "b", "c"}));
  auto items = cache.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "a");
  EXPECT_EQ(*items[2].second, "3");
}

TEST(LruByteCache, ConcurrentInsertersAgreeOnOneResidentValue) {
  Cache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const std::string>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &results, t] {
      results[t] = cache.Insert("k", Val("from " + std::to_string(t)), 10);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t].get(), results[0].get());
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.bytes(), 10u);
}

}  // namespace
}  // namespace reptile
