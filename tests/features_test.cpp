// Tests for model/features: main-effect maps, auxiliary maps (single and
// multi attribute), and normalization.

#include "data/group_by.h"
#include "gtest/gtest.h"
#include "model/features.h"

namespace reptile {
namespace {

// Groups keyed by (year, village); measure = mean severity proxy.
GroupByResult MakeGroups() {
  Table t;
  int year = t.AddDimensionColumn("year");
  int village = t.AddDimensionColumn("village");
  int sev = t.AddMeasureColumn("sev");
  auto add = [&](const std::string& y, const std::string& v, double s) {
    t.SetDim(year, y);
    t.SetDim(village, v);
    t.SetMeasure(sev, s);
    t.CommitRow();
  };
  // year 0: villages 0,1,2 with severities 2, 4, 9.
  add("1984", "a", 2.0);
  add("1984", "b", 4.0);
  add("1984", "c", 9.0);
  // year 1: villages 0,1 with severities 6, 8.
  add("1985", "a", 6.0);
  add("1985", "b", 8.0);
  return GroupBy(t, {year, village}, sev);
}

TEST(MainEffectMap, MedianPerValue) {
  GroupByResult groups = MakeGroups();
  // Key position 0 = year; y = MEAN of each (year, village) group.
  std::vector<double> year_map = MainEffectMap(groups, 0, AggFn::kMean, 2);
  EXPECT_DOUBLE_EQ(year_map[0], 4.0);  // median{2,4,9}
  EXPECT_DOUBLE_EQ(year_map[1], 7.0);  // median{6,8}
  std::vector<double> village_map = MainEffectMap(groups, 1, AggFn::kMean, 3);
  EXPECT_DOUBLE_EQ(village_map[0], 4.0);  // median{2,6}
  EXPECT_DOUBLE_EQ(village_map[1], 6.0);  // median{4,8}
  EXPECT_DOUBLE_EQ(village_map[2], 9.0);  // single group
}

TEST(MainEffectMap, UnseenCodeGetsGlobalMedian) {
  GroupByResult groups = MakeGroups();
  std::vector<double> map = MainEffectMap(groups, 1, AggFn::kMean, 5);
  // Codes 3, 4 never appear: global median of {2,4,9,6,8} = 6.
  EXPECT_DOUBLE_EQ(map[3], 6.0);
  EXPECT_DOUBLE_EQ(map[4], 6.0);
}

TEST(MainEffectMap, CountStatistic) {
  GroupByResult groups = MakeGroups();
  std::vector<double> map = MainEffectMap(groups, 0, AggFn::kCount, 2);
  EXPECT_DOUBLE_EQ(map[0], 1.0);  // each (year,village) group has one row
  EXPECT_DOUBLE_EQ(map[1], 1.0);
}

TEST(CollectAttrValueStats, GroupsByCode) {
  GroupByResult groups = MakeGroups();
  AttrValueStats stats = CollectAttrValueStats(groups, 0, AggFn::kMean, 2);
  ASSERT_EQ(stats.y_per_code.size(), 2u);
  EXPECT_EQ(stats.y_per_code[0].size(), 3u);
  EXPECT_EQ(stats.y_per_code[1].size(), 2u);
}

Table MakeAuxTable() {
  Table aux;
  int v = aux.AddDimensionColumn("village");
  int rain = aux.AddMeasureColumn("rain");
  auto add = [&](const std::string& name, double r) {
    aux.SetDim(v, name);
    aux.SetMeasure(rain, r);
    aux.CommitRow();
  };
  add("a", 100.0);
  add("a", 200.0);  // averaged to 150
  add("b", 300.0);
  add("c", 600.0);
  return aux;
}

TEST(AuxiliaryMap, AveragesAndNormalizes) {
  Table aux = MakeAuxTable();
  std::vector<double> raw = AuxiliaryMap(aux, 0, 1, 3, /*normalize=*/false);
  EXPECT_DOUBLE_EQ(raw[0], 150.0);
  EXPECT_DOUBLE_EQ(raw[1], 300.0);
  EXPECT_DOUBLE_EQ(raw[2], 600.0);

  std::vector<double> norm = AuxiliaryMap(aux, 0, 1, 3, /*normalize=*/true);
  // mean 350, sd ~228.0; normalized values sum to ~0.
  EXPECT_NEAR(norm[0] + norm[1] + norm[2], 0.0, 1e-9);
  EXPECT_LT(norm[0], 0.0);
  EXPECT_GT(norm[2], 0.0);
}

TEST(AuxiliaryMap, MissingCodesReadZero) {
  Table aux = MakeAuxTable();
  std::vector<double> norm = AuxiliaryMap(aux, 0, 1, 5, /*normalize=*/true);
  EXPECT_DOUBLE_EQ(norm[3], 0.0);
  EXPECT_DOUBLE_EQ(norm[4], 0.0);
}

TEST(MultiAuxiliaryMap, TupleKeys) {
  Table aux;
  int s = aux.AddDimensionColumn("state");
  int d = aux.AddDimensionColumn("day");
  int m = aux.AddMeasureColumn("lag");
  auto add = [&](const std::string& sv, const std::string& dv, double v) {
    aux.SetDim(s, sv);
    aux.SetDim(d, dv);
    aux.SetMeasure(m, v);
    aux.CommitRow();
  };
  add("tx", "d1", 10.0);
  add("tx", "d2", 20.0);
  add("ny", "d1", 30.0);
  auto map = MultiAuxiliaryMap(aux, {s, d}, m, /*normalize=*/false);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_DOUBLE_EQ((map[{0, 0}]), 10.0);
  EXPECT_DOUBLE_EQ((map[{1, 0}]), 30.0);
}

TEST(NormalizeMap, ZeroMeanUnitVariance) {
  std::vector<double> map = {1.0, 2.0, 3.0, 4.0};
  NormalizeMap(&map);
  double sum = 0.0;
  for (double v : map) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(NormalizeMap, DegenerateNoOp) {
  std::vector<double> map = {5.0, 5.0, 5.0};
  NormalizeMap(&map);
  EXPECT_DOUBLE_EQ(map[0], 5.0);
}

}  // namespace
}  // namespace reptile
