// Tests for factor/decomposed: TOTAL / COUNT / COF values against a naive
// row-enumeration reference (Figure 4's worked example included).

#include "common/rng.h"
#include "factor/decomposed.h"
#include "factor/row_iterator.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace reptile {
namespace {

// The Figure 4 configuration: Time hierarchy T = {t0, t1}; Location hierarchy
// District -> Village with villages {v0, v1} under d0 and {v2} under d1.
struct Figure4 {
  FTree time = FTree::FromPaths({{0}, {1}}, 1);
  FTree geo = FTree::FromPaths({{0, 0}, {0, 1}, {1, 2}}, 2);
  LocalAggregates time_locals{&time};
  LocalAggregates geo_locals{&geo};
  FactorizedMatrix fm;
  Figure4() {
    fm.AddTree(&time);
    fm.AddTree(&geo);
  }
  DecomposedAggregates Agg() { return DecomposedAggregates(&fm, {&time_locals, &geo_locals}); }
};

TEST(Decomposed, Figure4Values) {
  Figure4 f;
  DecomposedAggregates agg = f.Agg();
  // n = 2 * 3 = 6 rows.
  EXPECT_EQ(agg.n(), 6);
  // TOTAL_T = 6, TOTAL_D = TOTAL_V = 3 (Figure 4's right column).
  EXPECT_EQ(agg.Total(AttrId{0, 0}), 6);
  EXPECT_EQ(agg.Total(AttrId{1, 0}), 3);
  EXPECT_EQ(agg.Total(AttrId{1, 1}), 3);
  // COUNT_T = {t0:3, t1:3}; COUNT_D = {d0:2, d1:1}; COUNT_V = 1 each.
  EXPECT_EQ(agg.Count(AttrId{0, 0}, 0), 3);
  EXPECT_EQ(agg.Count(AttrId{0, 0}, 1), 3);
  EXPECT_EQ(agg.Count(AttrId{1, 0}, 0), 2);
  EXPECT_EQ(agg.Count(AttrId{1, 0}, 1), 1);
  EXPECT_EQ(agg.Count(AttrId{1, 1}, 2), 1);
  // Prefix multiplicity: each suffix block of D repeats twice (once per t).
  EXPECT_EQ(agg.PrefixMultiplicity(AttrId{1, 0}), 2);
  EXPECT_EQ(agg.PrefixMultiplicity(AttrId{0, 0}), 1);
}

TEST(Decomposed, CofAncestorTables) {
  FTree tree = FTree::FromPaths({{0, 0, 0}, {0, 0, 1}, {0, 1, 2}, {1, 2, 3}}, 3);
  LocalAggregates locals(&tree);
  EXPECT_EQ(locals.num_cof_tables(), 3);
  // (0,1): parents of level-1 nodes.
  EXPECT_EQ(locals.AncestorTable(0, 1), (std::vector<int64_t>{0, 0, 1}));
  // (0,2): grandparents of leaves.
  EXPECT_EQ(locals.AncestorTable(0, 2), (std::vector<int64_t>{0, 0, 0, 1}));
  // (1,2): parents of leaves.
  EXPECT_EQ(locals.AncestorTable(1, 2), (std::vector<int64_t>{0, 0, 1, 2}));
  EXPECT_EQ(locals.Ancestor(0, 2, 3), 1);
}

// Property: COUNT/TOTAL from the decomposed aggregates equal naive counts
// obtained by enumerating every virtual row.
class DecomposedRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposedRandomTest, MatchesRowEnumeration) {
  Rng rng(GetParam());
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  DecomposedAggregates agg(&rm.fm, rm.LocalPtrs());

  // Naive: count per (flat attr, node) by enumerating rows; TOTAL via suffix
  // definition: number of distinct suffix combinations.
  RowIterator it(rm.fm);
  std::vector<AttrChange> changed;
  std::vector<int64_t> nodes(rm.fm.num_attrs());
  std::vector<std::vector<int64_t>> row_count(rm.fm.num_attrs());
  for (int flat = 0; flat < rm.fm.num_attrs(); ++flat) {
    AttrId a = rm.fm.FlatAttr(flat);
    row_count[flat].assign(rm.fm.tree(a.hierarchy).num_nodes(a.level), 0);
  }
  for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
    for (int flat = 0; flat < rm.fm.num_attrs(); ++flat) {
      row_count[flat][it.node(flat)] += 1;
    }
  }
  for (int flat = 0; flat < rm.fm.num_attrs(); ++flat) {
    AttrId a = rm.fm.FlatAttr(flat);
    // rows with node = COUNT_A[node] * PrefixMultiplicity.
    int64_t prefix = agg.PrefixMultiplicity(a);
    int64_t total = 0;
    for (int64_t node = 0; node < rm.fm.tree(a.hierarchy).num_nodes(a.level); ++node) {
      EXPECT_EQ(row_count[flat][node], agg.Count(a, node) * prefix)
          << "attr " << flat << " node " << node;
      total += agg.Count(a, node);
    }
    EXPECT_EQ(total, agg.Total(a));
    EXPECT_EQ(agg.Total(a) * prefix, agg.n());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposedRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace reptile
