// Integration tests: full engine sessions over the generators, exercising
// multi-step drill-downs, auxiliary registration, the drill-down caches, and
// detection outcomes that the benchmark harness relies on.

#include "baselines/sensitivity.h"
#include "baselines/support.h"
#include "common/rng.h"
#include "core/engine.h"
#include "datagen/accuracy_gen.h"
#include "datagen/covid_gen.h"
#include "datagen/fist_gen.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

TEST(Integration, AccuracyInstanceDetection) {
  // At strong auxiliary correlation, Reptile must find the corrupted group
  // in most instances; the baselines must not silently win.
  Rng rng(77);
  int reptile_hits = 0, sensitivity_hits = 0;
  const int kReps = 15;
  for (int rep = 0; rep < kReps; ++rep) {
    AccuracyOptions options;
    AccuracyInstance inst = MakeAccuracyInstance(options, ErrorType::kMissing, 0.95, &rng);
    Engine engine(&inst.dataset);
    AuxiliarySpec spec;
    spec.name = "aux_count";
    spec.table = &inst.aux_count;
    spec.join_attrs = {"group"};
    spec.measure = "aux";
    engine.RegisterAuxiliary(std::move(spec));
    Recommendation rec = engine.RecommendDrillDown(inst.complaint);
    ASSERT_FALSE(rec.best().top_groups.empty());
    reptile_hits += rec.best().top_groups[0].key[0] == inst.true_errors[0];

    GroupByResult siblings = GroupBy(inst.dataset.table(), {0}, -1);
    std::vector<ScoredGroup> sens = SensitivityRank(siblings, inst.complaint);
    sensitivity_hits += sens[0].key[0] == inst.true_errors[0];
  }
  EXPECT_GE(reptile_hits, 12) << "Reptile should detect missing records at rho=0.95";
  EXPECT_GE(reptile_hits, sensitivity_hits);
}

TEST(Integration, CovidTexasMissingReportsDetected) {
  CovidPanelConfig config;
  CovidIssueSpec issue = UsIssueList()[0];
  Dataset panel = MakeCorruptedPanel(config, issue);
  const Table& table = panel.table();
  Table lag1 = MakeCovidLagTable(panel, issue.measure, 1);
  Table lag7 = MakeCovidLagTable(panel, issue.measure, 7);

  EngineOptions options;
  options.random_effects = RandomEffects::kAllFeatures;
  Engine engine(&panel, options);
  engine.ExcludeFromRandomEffects("state");
  for (const auto& [name, lag] : {std::make_pair("lag1", &lag1),
                                  std::make_pair("lag7", &lag7)}) {
    AuxiliarySpec spec;
    spec.name = name;
    spec.table = lag;
    spec.join_attrs = {"state", "day"};
    spec.measure = lag->column_name(2);
    engine.RegisterAuxiliary(std::move(spec));
  }
  engine.CommitDrillDown(1);

  char day_name[16];
  std::snprintf(day_name, sizeof(day_name), "d%03d", issue.day);
  int day_col = table.ColumnIndex("day");
  RowFilter filter;
  filter.Add(day_col, *table.dict(day_col).Find(day_name));
  Complaint complaint;
  complaint.agg = AggFn::kSum;
  complaint.measure_column = table.ColumnIndex(issue.measure);
  complaint.filter = filter;
  complaint.direction = issue.direction;

  Recommendation rec = engine.RecommendDrillDown(complaint);
  ASSERT_FALSE(rec.best().top_groups.empty());
  EXPECT_NE(rec.best().top_groups[0].description.find("state=Texas"), std::string::npos)
      << rec.best().top_groups[0].description;
}

TEST(Integration, FistSessionTwoSteps) {
  // Replay a study case as a two-step session: drill to villages via the
  // engine, commit, and verify the session state advances.
  FistStudy study = MakeFistStudy();
  const FistComplaintCase& c = study.cases[0];
  Engine engine(&study.dataset);
  AuxiliarySpec spec;
  spec.name = "rainfall";
  spec.table = &study.rainfall;
  spec.join_attrs = {"village", "year"};
  spec.measure = "rainfall";
  engine.RegisterAuxiliary(std::move(spec));
  engine.CommitDrillDown(1);
  engine.CommitDrillDown(0);
  engine.CommitDrillDown(0);
  EXPECT_TRUE(engine.CanDrill(0));  // village level still available
  Recommendation rec = engine.RecommendDrillDown(c.complaint);
  EXPECT_EQ(rec.best().attribute, "village");
  ASSERT_FALSE(rec.best().top_groups.empty());
  EXPECT_NE(rec.best().top_groups[0].description.find(c.expected_substr), std::string::npos);
  engine.CommitDrillDown(0);
  EXPECT_FALSE(engine.CanDrill(0));
  // Only the time hierarchy is exhausted too (depth 1 of 1).
  EXPECT_FALSE(engine.CanDrill(1));
}

TEST(Integration, DrillModeInvariance) {
  // The caching policy must not change recommendations, only runtime.
  Rng rng(5);
  AccuracyOptions options;
  AccuracyInstance inst = MakeAccuracyInstance(options, ErrorType::kIncrease, 0.9, &rng);
  std::vector<std::string> tops;
  for (DrillDownState::Mode mode :
       {DrillDownState::Mode::kStatic, DrillDownState::Mode::kDynamic,
        DrillDownState::Mode::kCacheDynamic}) {
    EngineOptions eopts;
    eopts.drill_mode = mode;
    Engine engine(&inst.dataset, eopts);
    AuxiliarySpec spec;
    spec.name = "aux_mean";
    spec.table = &inst.aux_mean;
    spec.join_attrs = {"group"};
    spec.measure = "aux";
    engine.RegisterAuxiliary(std::move(spec));
    Recommendation rec = engine.RecommendDrillDown(inst.complaint);
    ASSERT_FALSE(rec.best().top_groups.empty());
    tops.push_back(rec.best().top_groups[0].description);
  }
  EXPECT_EQ(tops[0], tops[1]);
  EXPECT_EQ(tops[1], tops[2]);
}

TEST(Integration, SupportBaselineFavorsLargestState) {
  // Support must pick the sub-unit-richest location regardless of the
  // complaint (the designed-in property behind Table 1/2's SP column).
  CovidPanelConfig config;
  CovidIssueSpec issue = UsIssueList()[0];
  Dataset panel = MakeCorruptedPanel(config, issue);
  const Table& table = panel.table();
  char day_name[16];
  std::snprintf(day_name, sizeof(day_name), "d%03d", issue.day);
  int day_col = table.ColumnIndex("day");
  int loc_col = table.ColumnIndex("state");
  RowFilter filter;
  filter.Add(day_col, *table.dict(day_col).Find(day_name));
  GroupByResult siblings =
      GroupBy(table, {day_col, loc_col}, table.ColumnIndex("confirmed"), filter);
  std::vector<ScoredGroup> ranked = SupportRank(siblings);
  EXPECT_EQ(table.dict(loc_col).name(ranked[0].key[1]), "California");
}

}  // namespace
}  // namespace reptile
