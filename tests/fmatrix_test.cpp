// Equivalence tests for fmatrix/: materialisation, gram, left and right
// multiplication against dense references, across random forests with and
// without multi-attribute columns.

#include "common/rng.h"
#include "fmatrix/gram.h"
#include "fmatrix/left_mult.h"
#include "fmatrix/materialize.h"
#include "fmatrix/right_mult.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace reptile {
namespace {

TEST(Materialize, MatchesFeatureRows) {
  Rng rng(2);
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2, 3, 4, /*num_multi=*/1);
  Matrix x = MaterializeMatrix(rm.fm);
  ASSERT_EQ(static_cast<int64_t>(x.rows()), rm.fm.num_rows());
  std::vector<double> row;
  for (int64_t r = 0; r < rm.fm.num_rows(); ++r) {
    rm.fm.FeatureRow(r, &row);
    for (int c = 0; c < rm.fm.num_cols(); ++c) {
      EXPECT_DOUBLE_EQ(x(static_cast<size_t>(r), static_cast<size_t>(c)), row[c])
          << "row " << r << " col " << c;
    }
  }
}

struct OpsParam {
  int seed;
  int hierarchies;
  int num_multi;
};

class FmatrixOpsTest : public ::testing::TestWithParam<OpsParam> {};

TEST_P(FmatrixOpsTest, GramMatchesDense) {
  OpsParam p = GetParam();
  Rng rng(p.seed);
  testutil::RandomMatrix rm =
      testutil::MakeRandomMatrix(&rng, p.hierarchies, 3, 4, p.num_multi);
  DecomposedAggregates agg(&rm.fm, rm.LocalPtrs());
  Matrix x = MaterializeMatrix(rm.fm);
  Matrix expected = x.Transposed().Multiply(x);
  Matrix actual = FactorizedGram(rm.fm, agg);
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-8))
      << "factorized:\n" << actual.DebugString() << "\ndense:\n" << expected.DebugString();
}

TEST_P(FmatrixOpsTest, LeftMultiplyMatchesDense) {
  OpsParam p = GetParam();
  Rng rng(p.seed + 1000);
  testutil::RandomMatrix rm =
      testutil::MakeRandomMatrix(&rng, p.hierarchies, 3, 4, p.num_multi);
  Matrix x = MaterializeMatrix(rm.fm);
  Matrix a(2, static_cast<size_t>(rm.fm.num_rows()));
  for (size_t i = 0; i < a.size(); ++i) a.mutable_data()[i] = rng.Normal(0, 1);
  Matrix expected = a.Multiply(x);
  Matrix actual = FactorizedLeftMultiply(rm.fm, a);
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-8));

  // Vector form agrees with the matrix form.
  std::vector<double> r = a.Row(0);
  std::vector<double> xtr = FactorizedVecLeftMultiply(rm.fm, r);
  for (int c = 0; c < rm.fm.num_cols(); ++c) {
    EXPECT_NEAR(xtr[c], expected(0, static_cast<size_t>(c)), 1e-8);
  }
}

TEST_P(FmatrixOpsTest, RightMultiplyMatchesDense) {
  OpsParam p = GetParam();
  Rng rng(p.seed + 2000);
  testutil::RandomMatrix rm =
      testutil::MakeRandomMatrix(&rng, p.hierarchies, 3, 4, p.num_multi);
  Matrix x = MaterializeMatrix(rm.fm);
  Matrix b(static_cast<size_t>(rm.fm.num_cols()), 2);
  for (size_t i = 0; i < b.size(); ++i) b.mutable_data()[i] = rng.Normal(0, 1);
  Matrix expected = x.Multiply(b);
  Matrix actual = FactorizedRightMultiply(rm.fm, b);
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-8));

  std::vector<double> beta = b.Column(0);
  std::vector<double> xb = FactorizedVecRightMultiply(rm.fm, beta);
  for (int64_t r = 0; r < rm.fm.num_rows(); ++r) {
    EXPECT_NEAR(xb[static_cast<size_t>(r)], expected(static_cast<size_t>(r), 0), 1e-8);
  }
}

std::vector<OpsParam> MakeParams() {
  std::vector<OpsParam> params;
  for (int seed = 0; seed < 8; ++seed) {
    for (int h : {1, 2, 3}) {
      params.push_back(OpsParam{seed, h, 0});
    }
  }
  // Multi-attribute (hybrid) coverage.
  for (int seed = 100; seed < 104; ++seed) {
    params.push_back(OpsParam{seed, 2, 1});
    params.push_back(OpsParam{seed, 2, 2});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FmatrixOpsTest, ::testing::ValuesIn(MakeParams()));

TEST(WeightedColumnSum, MatchesDefinition) {
  FTree intercept = FTree::Singleton();
  FTree geo = FTree::FromPaths({{0, 0}, {0, 1}, {1, 2}}, 2);
  FactorizedMatrix fm;
  fm.AddTree(&intercept);
  fm.AddTree(&geo);
  FeatureColumn col;
  col.attr = AttrId{1, 0};  // district
  col.value_map = {2.0, 5.0};
  int c = fm.AddColumn(col);
  // d0 has 2 leaves, d1 has 1: WS = 2*2.0 + 1*5.0 = 9.
  EXPECT_DOUBLE_EQ(WeightedColumnSum(fm, c), 9.0);
}

TEST(Gram, InterceptCellCountsRows) {
  Rng rng(42);
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  // Make column 0 (on the intercept attr) a true all-ones column.
  // MakeRandomMatrix randomises it, so rebuild a fresh matrix here.
  FactorizedMatrix fm;
  for (const auto& t : rm.trees) fm.AddTree(t.get());
  FeatureColumn ones;
  ones.attr = AttrId{0, 0};
  ones.value_map = {1.0};
  int c = fm.AddColumn(ones);
  DecomposedAggregates agg(&fm, rm.LocalPtrs());
  Matrix gram = FactorizedGram(fm, agg);
  EXPECT_DOUBLE_EQ(gram(static_cast<size_t>(c), static_cast<size_t>(c)),
                   static_cast<double>(fm.num_rows()));
}

}  // namespace
}  // namespace reptile
