// Tests for factor/drilldown: the three caching policies and the correctness
// of the trees/aggregates they return.

#include "data/dataset.h"
#include "factor/drilldown.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

Dataset MakeDataset() {
  Table t;
  int a1 = t.AddDimensionColumn("a1");
  int a2 = t.AddDimensionColumn("a2");
  int b1 = t.AddDimensionColumn("b1");
  int m = t.AddMeasureColumn("m");
  auto add = [&](const std::string& x1, const std::string& x2, const std::string& y1) {
    t.SetDim(a1, x1);
    t.SetDim(a2, x2);
    t.SetDim(b1, y1);
    t.SetMeasure(m, 1.0);
    t.CommitRow();
  };
  add("p", "u", "x");
  add("p", "v", "x");
  add("q", "w", "y");
  add("q", "w", "z");
  return Dataset(std::move(t), {{"A", {"a1", "a2"}}, {"B", {"b1"}}});
}

TEST(DrillDownState, DepthBookkeeping) {
  Dataset ds = MakeDataset();
  DrillDownState state(&ds, DrillDownState::Mode::kCacheDynamic);
  EXPECT_EQ(state.depth(0), 0);
  EXPECT_TRUE(state.CanDrill(0));
  EXPECT_EQ(state.max_depth(0), 2);
  state.Commit(0);
  EXPECT_EQ(state.depth(0), 1);
  state.Commit(0);
  EXPECT_FALSE(state.CanDrill(0));
}

TEST(DrillDownState, BuildsCorrectTrees) {
  Dataset ds = MakeDataset();
  DrillDownState state(&ds, DrillDownState::Mode::kCacheDynamic);
  const HierarchyAggregates& a2 = state.Get(0, 2);
  EXPECT_EQ(a2.tree->depth(), 2);
  EXPECT_EQ(a2.tree->num_leaves(), 3);  // (p,u), (p,v), (q,w)
  EXPECT_EQ(a2.locals->total(), 3);
  const HierarchyAggregates& b1 = state.Get(1, 1);
  EXPECT_EQ(b1.tree->num_leaves(), 3);  // x, y, z
}

TEST(DrillDownState, CacheDynamicReusesEverything) {
  Dataset ds = MakeDataset();
  DrillDownState state(&ds, DrillDownState::Mode::kCacheDynamic);
  state.BeginInvocation();
  state.Get(0, 1);
  state.Get(1, 1);
  EXPECT_EQ(state.total_builds(), 2);
  state.BeginInvocation();
  state.Get(0, 1);
  state.Get(1, 1);
  EXPECT_EQ(state.total_builds(), 2);  // all cached
}

TEST(DrillDownState, StaticRebuildsEachInvocation) {
  Dataset ds = MakeDataset();
  DrillDownState state(&ds, DrillDownState::Mode::kStatic);
  state.BeginInvocation();
  state.Get(0, 1);
  state.Get(1, 1);
  EXPECT_EQ(state.total_builds(), 2);
  state.BeginInvocation();
  state.Get(0, 1);
  state.Get(1, 1);
  EXPECT_EQ(state.total_builds(), 4);  // rebuilt
}

TEST(DrillDownState, DynamicKeepsOnlyCommittedDepths) {
  Dataset ds = MakeDataset();
  DrillDownState state(&ds, DrillDownState::Mode::kDynamic);
  state.Commit(0);  // committed depth of A = 1
  state.BeginInvocation();
  state.Get(0, 1);  // committed depth: kept across invocations
  state.Get(0, 2);  // candidate depth: evicted
  state.Get(1, 1);  // candidate depth (B committed depth is 0): evicted
  EXPECT_EQ(state.total_builds(), 3);
  state.BeginInvocation();
  state.Get(0, 1);
  state.Get(0, 2);
  state.Get(1, 1);
  // Only the two candidate depths are rebuilt.
  EXPECT_EQ(state.total_builds(), 5);
}

TEST(DrillDownState, InvocationBuildSecondsTracked) {
  Dataset ds = MakeDataset();
  DrillDownState state(&ds, DrillDownState::Mode::kStatic);
  state.BeginInvocation();
  EXPECT_DOUBLE_EQ(state.InvocationBuildSeconds(1), 0.0);
  state.Get(1, 1);
  EXPECT_GE(state.InvocationBuildSeconds(1), 0.0);
  EXPECT_DOUBLE_EQ(state.InvocationBuildSeconds(0), 0.0);
}

}  // namespace
}  // namespace reptile
