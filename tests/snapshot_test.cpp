// Snapshot correctness at both layers: the container format (magic, version,
// trailer, per-section CRCs, sticky-error readers) and the PreparedDataset
// codec on top of it — lossless warm restarts: a dataset loaded from a
// snapshot answers byte-identically to the one that wrote it, with zero
// fits, and every corruption mode comes back as a clean Status.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/dataset_snapshot.h"
#include "data/snapshot.h"
#include "datagen/panel_gen.h"
#include "gtest/gtest.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("reptile_snapshot_test." + name)).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << bytes;
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- Container layer --------------------------------------------------------

TEST(SnapshotContainer, RoundTripsSectionsByLabel) {
  ScopedFile file(TempPath("container"));
  SnapshotWriter writer;
  ByteWriter a;
  a.U32(7);
  a.Str("hello");
  a.VecF64({1.5, -2.25});
  writer.AddSection("alpha", a.TakeBytes());
  writer.AddSection("beta", std::string("\x00\xff raw", 7));
  ASSERT_TRUE(writer.WriteFile(file.path()).ok());

  Result<SnapshotReader> reader = SnapshotReader::Open(file.path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->sections(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(reader->Contains("beta"));
  EXPECT_FALSE(reader->Contains("gamma"));
  Result<ByteReader> alpha = reader->Find("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha->U32(), 7u);
  EXPECT_EQ(alpha->Str(), "hello");
  EXPECT_EQ(alpha->VecF64(), (std::vector<double>{1.5, -2.25}));
  EXPECT_TRUE(alpha->AtEnd());
  EXPECT_TRUE(alpha->status().ok());
  EXPECT_FALSE(reader->Find("gamma").ok());
}

TEST(SnapshotContainer, ReaderErrorsAreStickyAndBoundsChecked) {
  ByteWriter w;
  w.U32(42);
  std::string payload = w.TakeBytes();
  ByteReader reader(payload.data(), payload.size(), "test");
  EXPECT_EQ(reader.U32(), 42u);
  // Past the end: latches kParseError, returns zeros forever after.
  EXPECT_EQ(reader.U64(), 0u);
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
  EXPECT_EQ(reader.U32(), 0u);
  EXPECT_TRUE(reader.Str().empty());
  EXPECT_TRUE(reader.VecF64().empty());
}

TEST(SnapshotContainer, CorruptCountCannotForceHugeAllocation) {
  ByteWriter w;
  w.U64(uint64_t{1} << 60);  // claims 2^60 doubles follow
  std::string payload = w.TakeBytes();
  ByteReader reader(payload.data(), payload.size(), "test");
  EXPECT_TRUE(reader.VecF64().empty());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
}

TEST(SnapshotContainer, RejectsBadMagicVersionCrcAndTruncation) {
  ScopedFile file(TempPath("corrupt"));
  SnapshotWriter writer;
  writer.AddSection("payload", std::string(256, 'x'));
  ASSERT_TRUE(writer.WriteFile(file.path()).ok());
  const std::string good = ReadFile(file.path());

  // Flipped magic.
  std::string bad = good;
  bad[0] ^= 0x40;
  WriteFileBytes(file.path(), bad);
  Result<SnapshotReader> r = SnapshotReader::Open(file.path());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  // Unknown future version (strict reject).
  bad = good;
  bad[8] = 99;
  WriteFileBytes(file.path(), bad);
  r = SnapshotReader::Open(file.path());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  // A flipped payload byte is caught by the section CRC on access.
  bad = good;
  bad[12 + 100] ^= 0x01;  // inside the first (only) payload
  WriteFileBytes(file.path(), bad);
  r = SnapshotReader::Open(file.path());
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // index still intact
  EXPECT_FALSE(r->Find("payload").ok());

  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{11}, good.size() / 2, good.size() - 1}) {
    WriteFileBytes(file.path(), good.substr(0, cut));
    Result<SnapshotReader> truncated = SnapshotReader::Open(file.path());
    EXPECT_FALSE(truncated.ok()) << "cut=" << cut;
  }

  // Missing file is kIoError, not kParseError.
  Result<SnapshotReader> missing = SnapshotReader::Open(TempPath("nope.missing"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

// --- PreparedDataset codec ---------------------------------------------------

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 4;
  spec.villages_per_district = 3;
  spec.years = 4;
  spec.rows_per_group = 3;
  return MakeSeverityPanel(spec);
}

std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < 4; ++y) {
    complaints.push_back(
        ComplaintSpec::TooHigh("std", "severity").Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

std::string TimelessBatchJson(BatchExploreResponse batch) {
  batch.models_trained = 0;
  batch.fit_cache_hits = 0;
  batch.train_seconds = 0.0;
  batch.wall_seconds = 0.0;
  for (ExploreResponse& response : batch.responses) {
    for (HierarchyResponse& candidate : response.candidates) {
      candidate.train_seconds = 0.0;
      candidate.total_seconds = 0.0;
    }
  }
  return batch.ToJson();
}

// Warms a dataset (aggregates + fits), snapshots it, reloads, and asserts
// the loaded dataset answers byte-identically with ZERO fits — the caches
// crossed the file boundary intact.
TEST(DatasetSnapshot, RoundTripIsLosslessAndWarm) {
  ScopedFile file(TempPath("roundtrip.snap"));
  Result<DatasetHandle> original = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(original.ok());
  std::vector<ComplaintSpec> complaints = PanelComplaints();

  Result<Session> cold = Session::Open(original.value());
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->Commit("time").ok());
  Result<BatchExploreResponse> cold_batch =
      cold->RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(cold_batch.ok());
  EXPECT_GT(cold->models_trained(), 0);

  ASSERT_TRUE(SavePreparedDataset(**original, file.path()).ok());
  Result<DatasetHandle> loaded = LoadPreparedDataset(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The persisted caches came back: entries, not just data.
  EXPECT_EQ((*loaded)->cache_entries(), (*original)->cache_entries());
  EXPECT_EQ((*loaded)->model_cache_entries(), (*original)->model_cache_entries());

  Result<Session> warm = Session::Open(*loaded);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Commit("time").ok());
  Result<BatchExploreResponse> warm_batch =
      warm->RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(warm_batch.ok());
  EXPECT_EQ(warm->models_trained(), 0) << "snapshot failed to carry fitted models";
  EXPECT_EQ(TimelessBatchJson(*warm_batch), TimelessBatchJson(*cold_batch));
}

// A snapshot of a NEVER-warmed dataset is also valid — it just carries empty
// caches, and the loaded copy trains from scratch to the same answers.
TEST(DatasetSnapshot, ColdSnapshotRoundTripsData) {
  ScopedFile file(TempPath("cold.snap"));
  Result<DatasetHandle> original = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SavePreparedDataset(**original, file.path()).ok());
  Result<DatasetHandle> loaded = LoadPreparedDataset(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->model_cache_entries(), 0);

  std::vector<ComplaintSpec> complaints = PanelComplaints();
  Result<Session> a = Session::Open(original.value());
  Result<Session> b = Session::Open(*loaded);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->Commit("time").ok() && b->Commit("time").ok());
  Result<BatchExploreResponse> batch_a =
      a->RecommendAll(std::span<const ComplaintSpec>(complaints));
  Result<BatchExploreResponse> batch_b =
      b->RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(batch_a.ok() && batch_b.ok());
  EXPECT_EQ(TimelessBatchJson(*batch_b), TimelessBatchJson(*batch_a));
}

TEST(DatasetSnapshot, CorruptedFileIsRejectedWithStatusNotUB) {
  ScopedFile file(TempPath("flip.snap"));
  Result<DatasetHandle> original = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(original.ok());

  // Warm it so every section kind (ftrees, models) is present.
  Result<Session> session = Session::Open(original.value());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Commit("time").ok());
  std::vector<ComplaintSpec> complaints = PanelComplaints();
  ASSERT_TRUE(session->RecommendAll(std::span<const ComplaintSpec>(complaints)).ok());
  ASSERT_TRUE(SavePreparedDataset(**original, file.path()).ok());
  const std::string good = ReadFile(file.path());

  // Flip one byte at a spread of offsets across the whole file: every load
  // must fail cleanly (CRC or structural validation) or — only when the flip
  // lands in dead space — succeed; it must never crash.
  for (size_t offset = 13; offset + 16 < good.size(); offset += good.size() / 23) {
    std::string bad = good;
    bad[offset] ^= 0x10;
    WriteFileBytes(file.path(), bad);
    Result<DatasetHandle> loaded = LoadPreparedDataset(file.path());
    if (!loaded.ok()) {
      StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError || code == StatusCode::kIoError)
          << "offset=" << offset << ": " << loaded.status().ToString();
    }
  }

  // Truncations too.
  for (size_t cut : {good.size() / 4, good.size() / 2, good.size() - 3}) {
    WriteFileBytes(file.path(), good.substr(0, cut));
    EXPECT_FALSE(LoadPreparedDataset(file.path()).ok()) << "cut=" << cut;
  }
}

// Budgeted caches under live holders: sessions keep working while their
// entries are evicted beneath them, and reported bytes respect the budget.
TEST(DatasetSnapshot, EvictionUnderBudgetKeepsSessionsCorrect) {
  Result<DatasetHandle> handle = PreparedDataset::Prepare(MakePanel());
  ASSERT_TRUE(handle.ok());
  std::vector<ComplaintSpec> complaints = PanelComplaints();

  // Unbudgeted reference answer.
  Result<Session> reference = Session::Open(handle.value());
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->Commit("time").ok());
  Result<BatchExploreResponse> expected =
      reference->RecommendAll(std::span<const ComplaintSpec>(complaints));
  ASSERT_TRUE(expected.ok());

  // A budget strictly below the warmed working set, so BOTH caches are over
  // their halves and must evict (sized from the actual workload rather than
  // a constant, which would silently stop applying pressure if the test
  // panel shrank).
  const size_t agg_warmed = static_cast<size_t>((*handle)->cache_bytes());
  const size_t model_warmed = static_cast<size_t>((*handle)->model_cache_bytes());
  ASSERT_GT(agg_warmed, 0u);
  ASSERT_GT(model_warmed, 0u);
  const size_t budget = std::min(agg_warmed, model_warmed);
  (*handle)->SetCacheBudgetBytes(budget);
  for (int round = 0; round < 3; ++round) {
    Result<Session> session = Session::Open(handle.value());
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->Commit("time").ok());
    Result<BatchExploreResponse> batch =
        session->RecommendAll(std::span<const ComplaintSpec>(complaints));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(TimelessBatchJson(*batch), TimelessBatchJson(*expected));
    EXPECT_LE(static_cast<size_t>((*handle)->cache_bytes() +
                                  (*handle)->model_cache_bytes()),
              budget);
  }
  EXPECT_GT((*handle)->cache_evictions() + (*handle)->model_cache_evictions(), 0);
}

}  // namespace
}  // namespace reptile
