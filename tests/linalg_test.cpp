// Tests for linalg/: dense matrix kernels and solvers.

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"

namespace reptile {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  m(2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(2, 1), 7.0);
}

TEST(Matrix, Multiply) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix b = {{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a.Multiply(b);
  Matrix expected = {{58, 64}, {139, 154}};
  EXPECT_TRUE(c.ApproxEquals(expected, 1e-12)) << c.DebugString();
}

TEST(Matrix, MultiplyIdentity) {
  Matrix a = {{1, 2}, {3, 4}};
  EXPECT_TRUE(a.Multiply(Matrix::Identity(2)).ApproxEquals(a, 1e-12));
  EXPECT_TRUE(Matrix::Identity(2).Multiply(a).ApproxEquals(a, 1e-12));
}

TEST(Matrix, TransposeAddSubtractScaleTrace) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix at = a.Transposed();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
  Matrix sum = a.Add(at);
  EXPECT_DOUBLE_EQ(sum(0, 1), 5.0);
  Matrix diff = a.Subtract(a);
  EXPECT_DOUBLE_EQ(diff.FrobeniusDistance(Matrix(2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(a.Scale(2.0)(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(a.Trace(), 5.0);
}

TEST(Matrix, RowColumnVectors) {
  Matrix col = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(col.rows(), 3u);
  EXPECT_EQ(col.cols(), 1u);
  Matrix row = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.Row(0), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(col.Column(0), (std::vector<double>{1, 2, 3}));
}

TEST(Dot, Basic) { EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0); }

TEST(Solve, KnownSystem) {
  Matrix a = {{2, 1}, {1, 3}};
  Matrix b = Matrix::ColumnVector({3, 5});
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)(0, 0), 0.8, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 1.4, 1e-12);
}

TEST(Solve, SingularReturnsNullopt) {
  Matrix a = {{1, 2}, {2, 4}};
  EXPECT_FALSE(SolveLinearSystem(a, Matrix::ColumnVector({1, 1})).has_value());
  EXPECT_FALSE(Inverse(a).has_value());
}

TEST(Solve, NeedsPivoting) {
  // Zero on the first diagonal position requires a row swap.
  Matrix a = {{0, 1}, {1, 0}};
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(inv->Multiply(a).ApproxEquals(Matrix::Identity(2), 1e-12));
}

TEST(Solve, RandomInverseRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 8));
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = rng.Normal(0, 1);
      a(i, i) += 3.0;  // keep well-conditioned
    }
    auto inv = Inverse(a);
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(a.Multiply(*inv).ApproxEquals(Matrix::Identity(n), 1e-8));
  }
}

TEST(Solve, InverseSymmetricRidgeHandlesSingular) {
  Matrix a = {{1, 1}, {1, 1}};  // singular
  Matrix inv = InverseSymmetricRidge(a, 1e-8);
  // With ridge the result is finite and symmetric-ish.
  EXPECT_TRUE(std::isfinite(inv(0, 0)));
  EXPECT_TRUE(std::isfinite(inv(1, 1)));
}

TEST(Cholesky, FactorAndLogDet) {
  Matrix a = {{4, 2}, {2, 3}};
  auto l = Cholesky(a);
  ASSERT_TRUE(l.has_value());
  Matrix reconstructed = l->Multiply(l->Transposed());
  EXPECT_TRUE(reconstructed.ApproxEquals(a, 1e-12));
  auto log_det = LogDetSpd(a);
  ASSERT_TRUE(log_det.has_value());
  EXPECT_NEAR(*log_det, std::log(8.0), 1e-12);  // det = 4*3 - 2*2 = 8
}

TEST(Cholesky, RejectsNonPd) {
  Matrix a = {{1, 2}, {2, 1}};  // indefinite
  EXPECT_FALSE(Cholesky(a).has_value());
  EXPECT_FALSE(LogDetSpd(a).has_value());
}

}  // namespace
}  // namespace reptile
