// The dataset/session split (api/registry.h): DatasetRegistry CRUD,
// cross-session sharing of f-trees and committed-depth aggregates (pointer
// identity and build counters — the single-copy memory check), per-session
// drill-state isolation, warm-vs-cold byte-identical responses, session
// persist/restore, and the concurrent session lifecycle scripts/check.sh
// re-runs under TSan.

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/panel_gen.h"
#include "factor/agg_cache.h"
#include "gtest/gtest.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 4;
  spec.villages_per_district = 3;
  spec.years = 4;
  spec.rows_per_group = 3;
  return MakeSeverityPanel(spec);
}

ComplaintSpec YearComplaint(int year) {
  return ComplaintSpec::TooHigh("std", "severity")
      .Where("year", "y" + std::to_string(year));
}

// Serialization with the scheduling-dependent timing fields zeroed, for
// byte-equality across sessions.
std::string TimelessJson(ExploreResponse response) {
  for (HierarchyResponse& candidate : response.candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
  return response.ToJson();
}

TEST(DatasetRegistry, AddFindRemove) {
  DatasetRegistry registry;
  EXPECT_EQ(registry.size(), 0);
  Result<DatasetHandle> added = registry.Add("panel", MakePanel());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_TRUE(registry.Contains("panel"));
  EXPECT_EQ(registry.size(), 1);

  // Find hands out the same prepared dataset, not a copy.
  Result<DatasetHandle> found = registry.Find("panel");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->get(), added->get());

  // Name errors.
  EXPECT_EQ(registry.Add("", MakePanel()).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Add("panel", MakePanel()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Find("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Remove("nope").code(), StatusCode::kNotFound);

  // Remove drops the name but not the dataset: live handles stay valid.
  ASSERT_TRUE(registry.Remove("panel").ok());
  EXPECT_FALSE(registry.Contains("panel"));
  EXPECT_EQ((*found)->table().num_rows(), 4u * 3u * 4u * 3u);

  // Validation happens at registration.
  EXPECT_EQ(registry.Add("bad", Dataset()).status().code(), StatusCode::kInvalidArgument);
}

// The tentpole acceptance criterion: two sessions over one registry dataset
// share the f-trees and committed-depth aggregate caches — asserted via the
// cache's entry pointers (single copy in memory) and per-session build
// counters — while responses stay byte-identical between the cold (built the
// cache) and warm (found it) session.
TEST(DatasetRegistry, SessionsShareAggregatesAndStayByteIdentical) {
  DatasetRegistry registry;
  Result<DatasetHandle> handle = registry.Add("panel", MakePanel());
  ASSERT_TRUE(handle.ok());

  Result<Session> cold = Session::Open(*handle);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->Commit("time").ok());
  Result<ExploreResponse> cold_response = cold->Recommend(YearComplaint(1));
  ASSERT_TRUE(cold_response.ok()) << cold_response.status().ToString();
  EXPECT_GT(cold->aggregate_builds(), 0);

  // The cache now holds the entries the cold session built; remember owning
  // handles to them (under the default unlimited budget nothing is evicted,
  // so the same objects must still be resident later).
  const SharedAggregateCache& cache = (*handle)->cache();
  const int64_t entries_after_cold = cache.entries();
  ASSERT_GT(entries_after_cold, 0);
  std::map<SharedAggregateCache::Key, HierarchyAggregatesPtr> cold_entries;
  for (const SharedAggregateCache::Key& key : cache.Keys()) {
    const auto& [epoch, hierarchy, depth] = key;
    cold_entries[key] = cache.Find(epoch, hierarchy, depth);
  }

  // A second session at the same drill state: identical bytes, ZERO builds
  // of its own, and the very same cached aggregate objects.
  Result<Session> warm = Session::Open(*handle);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Commit("time").ok());
  Result<ExploreResponse> warm_response = warm->Recommend(YearComplaint(1));
  ASSERT_TRUE(warm_response.ok());
  EXPECT_EQ(TimelessJson(*warm_response), TimelessJson(*cold_response));
  EXPECT_EQ(warm->aggregate_builds(), 0);
  EXPECT_EQ(cache.entries(), entries_after_cold);
  for (const auto& [key, entry] : cold_entries) {
    const auto& [epoch, hierarchy, depth] = key;
    EXPECT_EQ(cache.Find(epoch, hierarchy, depth).get(), entry.get())
        << "aggregate (" << hierarchy << ", " << depth << ") was rebuilt or moved";
  }

  // The warm session trains NOTHING: beyond the aggregate/f-tree layer, the
  // shared fitted-model cache hands it the cold session's models (same
  // committed depths, same default ModelSpec -> same keys).
  EXPECT_GT(cold->models_trained(), 0);
  EXPECT_EQ(warm->models_trained(), 0);
  EXPECT_EQ(warm->fit_cache_hits(), cold->models_trained());
}

TEST(DatasetRegistry, DrillStateIsPerSession) {
  DatasetRegistry registry;
  Result<DatasetHandle> handle = registry.Add("panel", MakePanel());
  ASSERT_TRUE(handle.ok());
  Result<Session> a = Session::Open(*handle);
  Result<Session> b = Session::Open(*handle);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // a drills geo twice and time once; b drills nothing.
  ASSERT_TRUE(a->Commit("geo").ok());
  ASSERT_TRUE(a->Commit("geo").ok());
  ASSERT_TRUE(a->Commit("time").ok());
  EXPECT_EQ(*a->DrillDepth("geo"), 2);
  EXPECT_EQ(*b->DrillDepth("geo"), 0);
  EXPECT_EQ(*b->DrillDepth("time"), 0);
  EXPECT_TRUE(*b->CanDrill("geo"));
  EXPECT_FALSE(*a->CanDrill("geo"));

  // a is exhausted; b still recommends.
  EXPECT_EQ(a->Recommend(YearComplaint(0)).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(b->Commit("time").ok());
  EXPECT_TRUE(b->Recommend(YearComplaint(0)).ok());

  // Per-session auxiliaries: registering on a does not leak into b.
  Table aux;
  int district = aux.AddDimensionColumn("district");
  int rainfall = aux.AddMeasureColumn("rainfall");
  for (int d = 0; d < 4; ++d) {
    aux.SetDim(district, "d" + std::to_string(d));
    aux.SetMeasure(rainfall, 10.0 * d);
    aux.CommitRow();
  }
  AuxiliaryRequest request;
  request.name = "rain";
  request.table = std::move(aux);
  request.join_attributes = {"district"};
  request.measure = "rainfall";
  EXPECT_TRUE(b->RegisterAuxiliary(std::move(request)).ok());
  EXPECT_EQ(b->ExcludeFromRandomEffects("rain").code(), StatusCode::kOk);
  EXPECT_EQ(a->ExcludeFromRandomEffects("rain").code(), StatusCode::kNotFound);
}

TEST(DatasetRegistry, CommittedDepthsSnapshotAndRestore) {
  DatasetRegistry registry;
  Result<DatasetHandle> handle = registry.Add("panel", MakePanel());
  ASSERT_TRUE(handle.ok());
  Result<Session> original = Session::Open(*handle);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(original->Commit("time").ok());
  ASSERT_TRUE(original->Commit("geo").ok());

  std::map<std::string, int> snapshot = original->CommittedDepths();
  EXPECT_EQ(snapshot, (std::map<std::string, int>{{"geo", 1}, {"time", 1}}));

  // Restore into a fresh session: same drill state, same recommendations.
  Result<Session> restored = Session::Open(*handle);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored->RestoreCommitted(snapshot).ok());
  EXPECT_EQ(restored->CommittedDepths(), snapshot);
  ComplaintSpec complaint =
      ComplaintSpec::TooHigh("mean", "severity").Where("district", "d1");
  Result<ExploreResponse> original_response = original->Recommend(complaint);
  Result<ExploreResponse> restored_response = restored->Recommend(complaint);
  ASSERT_TRUE(original_response.ok()) << original_response.status().ToString();
  ASSERT_TRUE(restored_response.ok());
  EXPECT_EQ(TimelessJson(*restored_response), TimelessJson(*original_response));

  // Restore errors: unknown hierarchy, out-of-range depth, undrilling.
  Result<Session> fresh = Session::Open(*handle);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->RestoreCommitted({{"nope", 1}}).code(), StatusCode::kNotFound);
  EXPECT_EQ(fresh->RestoreCommitted({{"geo", 3}}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fresh->RestoreCommitted({{"geo", -1}}).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(fresh->Commit("geo").ok());
  EXPECT_EQ(fresh->RestoreCommitted({{"geo", 0}}).code(),
            StatusCode::kFailedPrecondition);
  // A failed restore leaves the session untouched.
  EXPECT_EQ(*fresh->DrillDepth("geo"), 1);
  EXPECT_EQ(*fresh->DrillDepth("time"), 0);
}

// The satellite regression: Session::dataset() returns the shared handle, so
// the result survives move-assignment over the session (the old reference
// return dangled when the session's guts were replaced) and even outliving
// the session and the registry entry.
TEST(DatasetRegistry, DatasetHandleSurvivesSessionMoveAndDeath) {
  DatasetRegistry registry;
  Result<DatasetHandle> handle = registry.Add("panel", MakePanel());
  ASSERT_TRUE(handle.ok());
  Result<Session> a = Session::Open(*handle);
  Result<Session> b = Session::Open(*handle);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  DatasetHandle seen = a->dataset();
  EXPECT_EQ(seen.get(), handle->get());
  const Table* table = &seen->table();

  // Move-assigning over the session replaces its guts; the handle (and
  // everything reached through it) stays valid.
  *a = std::move(*b);
  EXPECT_EQ(seen->table().num_rows(), 4u * 3u * 4u * 3u);
  EXPECT_EQ(&seen->table(), table);
  EXPECT_EQ(a->dataset().get(), seen.get());

  // Registry removal and session death still leave the handle alive.
  ASSERT_TRUE(registry.Remove("panel").ok());
  handle = Status::NotFound("dropped");
  a = Status::NotFound("dropped");
  EXPECT_EQ(&seen->table(), table);
  EXPECT_EQ(seen->table().num_rows(), 4u * 3u * 4u * 3u);
}

TEST(DatasetRegistry, OpenValidation) {
  EXPECT_EQ(Session::Open(DatasetHandle()).status().code(), StatusCode::kInvalidArgument);
  DatasetRegistry registry;
  Result<DatasetHandle> handle = registry.Add("panel", MakePanel());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(Session::Open(*handle, ExploreRequest().TopK(0)).status().code(),
            StatusCode::kInvalidArgument);
}

// The TSan half of the acceptance criterion: N client threads running the
// full lifecycle — open, restore, recommend, commit deeper, recommend again,
// snapshot, drop — concurrently over ONE registry dataset. Every thread's
// responses must equal the single-threaded golden; the shared cache may be
// racing to build the same entries underneath.
TEST(DatasetRegistry, ConcurrentSessionLifecycleOverOneDataset) {
  DatasetRegistry registry;
  Result<DatasetHandle> handle = registry.Add("panel", MakePanel());
  ASSERT_TRUE(handle.ok());

  // Golden responses, computed single-threaded on a private dataset copy so
  // the shared cache starts COLD for the concurrent phase below.
  Result<Session> golden = Session::Create(MakePanel());
  ASSERT_TRUE(golden.ok());
  ASSERT_TRUE(golden->Commit("time").ok());
  Result<ExploreResponse> golden_shallow = golden->Recommend(YearComplaint(1));
  ASSERT_TRUE(golden_shallow.ok()) << golden_shallow.status().ToString();
  ASSERT_TRUE(golden->Commit("geo").ok());
  ComplaintSpec deep = ComplaintSpec::TooHigh("mean", "severity").Where("district", "d2");
  Result<ExploreResponse> golden_deep = golden->Recommend(deep);
  ASSERT_TRUE(golden_deep.ok()) << golden_deep.status().ToString();
  const std::string expected_shallow = TimelessJson(*golden_shallow);
  const std::string expected_deep = TimelessJson(*golden_deep);

  constexpr int kThreads = 4;
  constexpr int kIterations = 3;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        Result<Session> session = Session::Open(*handle);
        if (!session.ok()) {
          ++failures[t];
          continue;
        }
        if (!session->RestoreCommitted({{"time", 1}}).ok()) ++failures[t];
        Result<ExploreResponse> shallow = session->Recommend(YearComplaint(1));
        if (!shallow.ok() || TimelessJson(*shallow) != expected_shallow) ++failures[t];
        if (!session->Commit("geo").ok()) ++failures[t];
        Result<ExploreResponse> got_deep = session->Recommend(deep);
        if (!got_deep.ok() || TimelessJson(*got_deep) != expected_deep) ++failures[t];
        if (session->CommittedDepths() !=
            (std::map<std::string, int>{{"geo", 1}, {"time", 1}})) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "worker " << t << " diverged from the golden responses";
  }

  // Whatever the interleaving, the cache converged to one copy per entry.
  const SharedAggregateCache& cache = (*handle)->cache();
  EXPECT_GT(cache.entries(), 0);
  EXPECT_GT(cache.hits(), 0);
}

}  // namespace
}  // namespace reptile
