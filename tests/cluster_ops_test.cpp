// Tests for fmatrix/cluster_ops: the cluster iterator and the per-cluster
// gram / left / right operators against dense per-cluster references.

#include "common/rng.h"
#include "fmatrix/cluster_ops.h"
#include "fmatrix/materialize.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace reptile {
namespace {

TEST(ClusterIterator, CoversAllRowsContiguously) {
  Rng rng(3);
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  ClusterIterator it(rm.fm);
  int64_t expected_cluster = 0;
  int64_t expected_row = 0;
  for (bool ok = it.Start(); ok; ok = it.Next()) {
    EXPECT_EQ(it.cluster(), expected_cluster);
    EXPECT_EQ(it.row_begin(), expected_row);
    EXPECT_GT(it.num_children(), 0);
    // Every row of the cluster maps back to this cluster id.
    for (int64_t r = it.row_begin(); r < it.row_begin() + it.num_children(); ++r) {
      EXPECT_EQ(rm.fm.ClusterOfRow(r), it.cluster());
    }
    expected_row += it.num_children();
    ++expected_cluster;
  }
  EXPECT_EQ(expected_row, rm.fm.num_rows());
  EXPECT_EQ(expected_cluster, rm.fm.num_clusters());
}

TEST(ClusterIterator, InterCodesMatchRowCodes) {
  Rng rng(17);
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  int intra_flat = rm.fm.FlatAttrIndex(rm.fm.IntraAttr());
  ClusterIterator it(rm.fm);
  std::vector<int32_t> codes;
  for (bool ok = it.Start(); ok; ok = it.Next()) {
    rm.fm.DecodeRowToCodes(it.row_begin(), &codes);
    for (int flat = 0; flat < rm.fm.num_attrs(); ++flat) {
      if (flat == intra_flat) continue;
      EXPECT_EQ(it.inter_code(flat), codes[flat]) << "cluster " << it.cluster();
    }
  }
}

struct ClusterParam {
  int seed;
  int hierarchies;
  int num_multi;
};

class ClusterOpsTest : public ::testing::TestWithParam<ClusterParam> {};

TEST_P(ClusterOpsTest, GramAndLeftMatchDense) {
  ClusterParam p = GetParam();
  Rng rng(p.seed);
  testutil::RandomMatrix rm =
      testutil::MakeRandomMatrix(&rng, p.hierarchies, 3, 4, p.num_multi);
  Matrix x = MaterializeMatrix(rm.fm);
  std::vector<double> r = testutil::RandomVector(&rng, rm.fm.num_rows());

  // Use a random subset of columns as the random-effect columns.
  std::vector<int> cols;
  for (int c = 0; c < rm.fm.num_cols(); ++c) {
    if (rng.Bernoulli(0.7) || c == 0) cols.push_back(c);
  }

  int64_t clusters_seen = 0;
  ForEachClusterGram(rm.fm, cols, &r, [&](const ClusterData& data) {
    ++clusters_seen;
    size_t q = cols.size();
    // Dense reference on the cluster's row slice.
    Matrix xi(static_cast<size_t>(data.size), q);
    std::vector<double> ri(static_cast<size_t>(data.size));
    for (int64_t i = 0; i < data.size; ++i) {
      for (size_t j = 0; j < q; ++j) {
        xi(static_cast<size_t>(i), j) =
            x(static_cast<size_t>(data.row_begin + i), static_cast<size_t>(cols[j]));
      }
      ri[static_cast<size_t>(i)] = r[static_cast<size_t>(data.row_begin + i)];
    }
    Matrix expected_gram = xi.Transposed().Multiply(xi);
    EXPECT_TRUE(data.gram->ApproxEquals(expected_gram, 1e-8))
        << "cluster " << data.cluster << "\nactual " << data.gram->DebugString()
        << "\nexpected " << expected_gram.DebugString();
    ASSERT_NE(data.ztr, nullptr);
    Matrix expected_ztr = xi.Transposed().Multiply(Matrix::ColumnVector(ri));
    for (size_t j = 0; j < q; ++j) {
      EXPECT_NEAR((*data.ztr)[j], expected_ztr(j, 0), 1e-8) << "cluster " << data.cluster;
    }
  });
  EXPECT_EQ(clusters_seen, rm.fm.num_clusters());
}

TEST_P(ClusterOpsTest, RightMultiplyMatchesDense) {
  ClusterParam p = GetParam();
  Rng rng(p.seed + 500);
  testutil::RandomMatrix rm =
      testutil::MakeRandomMatrix(&rng, p.hierarchies, 3, 4, p.num_multi);
  Matrix x = MaterializeMatrix(rm.fm);
  std::vector<int> cols;
  for (int c = 0; c < rm.fm.num_cols(); ++c) {
    if (rng.Bernoulli(0.7) || c == 0) cols.push_back(c);
  }
  int64_t num_clusters = rm.fm.num_clusters();
  Matrix b(static_cast<size_t>(num_clusters), cols.size());
  for (size_t i = 0; i < b.size(); ++i) b.mutable_data()[i] = rng.Normal(0, 1);

  std::vector<double> out(static_cast<size_t>(rm.fm.num_rows()), 0.0);
  ClusterRightMultiply(rm.fm, cols, b, &out);

  for (int64_t row = 0; row < rm.fm.num_rows(); ++row) {
    int64_t cluster = rm.fm.ClusterOfRow(row);
    double expected = 0.0;
    for (size_t j = 0; j < cols.size(); ++j) {
      expected += x(static_cast<size_t>(row), static_cast<size_t>(cols[j])) *
                  b(static_cast<size_t>(cluster), j);
    }
    EXPECT_NEAR(out[static_cast<size_t>(row)], expected, 1e-8) << "row " << row;
  }
}

std::vector<ClusterParam> MakeParams() {
  std::vector<ClusterParam> params;
  for (int seed = 0; seed < 8; ++seed) {
    for (int h : {1, 2, 3}) params.push_back(ClusterParam{seed, h, 0});
  }
  for (int seed = 50; seed < 54; ++seed) params.push_back(ClusterParam{seed, 2, 2});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusterOpsTest, ::testing::ValuesIn(MakeParams()));

TEST_P(ClusterOpsTest, LeftOnlyMatchesDense) {
  ClusterParam p = GetParam();
  Rng rng(p.seed + 900);
  testutil::RandomMatrix rm =
      testutil::MakeRandomMatrix(&rng, p.hierarchies, 3, 4, p.num_multi);
  Matrix x = MaterializeMatrix(rm.fm);
  std::vector<double> r = testutil::RandomVector(&rng, rm.fm.num_rows());
  std::vector<int> cols;
  for (int c = 0; c < rm.fm.num_cols(); ++c) cols.push_back(c);
  int64_t clusters_seen = 0;
  ForEachClusterLeft(rm.fm, cols, r, [&](const ClusterData& data) {
    ++clusters_seen;
    for (size_t j = 0; j < cols.size(); ++j) {
      double expected = 0.0;
      for (int64_t i = 0; i < data.size; ++i) {
        expected += x(static_cast<size_t>(data.row_begin + i), static_cast<size_t>(cols[j])) *
                    r[static_cast<size_t>(data.row_begin + i)];
      }
      EXPECT_NEAR((*data.ztr)[j], expected, 1e-8) << "cluster " << data.cluster;
    }
  });
  EXPECT_EQ(clusters_seen, rm.fm.num_clusters());
}

TEST(ClusterIterator, ReportsChangedAttrs) {
  Rng rng(31);
  testutil::RandomMatrix rm = testutil::MakeRandomMatrix(&rng, 2);
  int intra_flat = rm.fm.FlatAttrIndex(rm.fm.IntraAttr());
  ClusterIterator it(rm.fm);
  std::vector<int32_t> tracked(rm.fm.num_attrs(), 0);
  std::vector<int32_t> expected;
  ASSERT_TRUE(it.Start());
  for (int flat : it.changed_attrs()) tracked[flat] = it.inter_code(flat);
  while (it.Next()) {
    for (int flat : it.changed_attrs()) tracked[flat] = it.inter_code(flat);
    rm.fm.DecodeRowToCodes(it.row_begin(), &expected);
    for (int flat = 0; flat < rm.fm.num_attrs(); ++flat) {
      if (flat == intra_flat) continue;
      EXPECT_EQ(tracked[flat], expected[flat])
          << "cluster " << it.cluster() << " attr " << flat;
    }
  }
}

TEST(ClusterOps, SingleClusterWhenLastTreeDepthOne) {
  FTree intercept = FTree::Singleton();
  FTree flat = FTree::FromPaths({{0}, {1}, {2}}, 1);
  FactorizedMatrix fm;
  fm.AddTree(&intercept);
  fm.AddTree(&flat);
  FeatureColumn ones;
  ones.attr = AttrId{0, 0};
  ones.value_map = {1.0};
  fm.AddColumn(ones);
  ClusterIterator it(fm);
  ASSERT_TRUE(it.Start());
  EXPECT_EQ(it.num_children(), 3);
  EXPECT_FALSE(it.Next());
}

}  // namespace
}  // namespace reptile
