// Tests for agg/: moment sketches and the Appendix A distributive merge laws.

#include <cmath>

#include "agg/aggregates.h"
#include "common/rng.h"
#include "common/stats.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

TEST(Moments, ObserveAndDerive) {
  Moments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Observe(v);
  EXPECT_DOUBLE_EQ(m.Value(AggFn::kCount), 8.0);
  EXPECT_DOUBLE_EQ(m.Value(AggFn::kSum), 40.0);
  EXPECT_DOUBLE_EQ(m.Value(AggFn::kMean), 5.0);
  EXPECT_NEAR(m.Value(AggFn::kStd), 2.13809, 1e-4);
  EXPECT_NEAR(m.Value(AggFn::kVar), 4.571428, 1e-4);
}

TEST(Moments, AddSubtractInverse) {
  Moments a, b;
  for (double v : {1.0, 2.0, 3.0}) a.Observe(v);
  for (double v : {10.0, 20.0}) b.Observe(v);
  Moments merged = a;
  merged.Add(b);
  EXPECT_DOUBLE_EQ(merged.count, 5.0);
  EXPECT_DOUBLE_EQ(merged.sum, 36.0);
  merged.Subtract(b);
  EXPECT_DOUBLE_EQ(merged.count, a.count);
  EXPECT_DOUBLE_EQ(merged.sum, a.sum);
  EXPECT_DOUBLE_EQ(merged.sumsq, a.sumsq);
}

TEST(Moments, EmptyGroupStatistics) {
  Moments m;
  EXPECT_DOUBLE_EQ(m.Value(AggFn::kMean), 0.0);
  EXPECT_DOUBLE_EQ(m.Value(AggFn::kStd), 0.0);
  Moments one;
  one.Observe(5.0);
  EXPECT_DOUBLE_EQ(one.Value(AggFn::kStd), 0.0);  // n<2
}

TEST(Moments, FromStatsRoundTrip) {
  Moments m;
  for (double v : {3.0, 7.0, 8.0, 1.0, 4.0}) m.Observe(v);
  Moments rebuilt = Moments::FromStats(m.count, m.Mean(), m.SampleStd());
  EXPECT_NEAR(rebuilt.sum, m.sum, 1e-9);
  EXPECT_NEAR(rebuilt.sumsq, m.sumsq, 1e-9);
  EXPECT_NEAR(rebuilt.SampleStd(), m.SampleStd(), 1e-9);
}

TEST(AggFnName, Names) {
  EXPECT_EQ(AggFnName(AggFn::kCount), "COUNT");
  EXPECT_EQ(AggFnName(AggFn::kStd), "STD");
}

// Property: merging per-subset (mean, count, std) triples with the Appendix A
// formulas reproduces the statistics of the concatenated data, for random
// partitions.
class MergeTriplesTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeTriplesTest, MatchesDirectComputation) {
  Rng rng(GetParam());
  int num_subsets = static_cast<int>(rng.UniformInt(1, 6));
  std::vector<AggTriple> triples;
  std::vector<double> all;
  for (int s = 0; s < num_subsets; ++s) {
    int n = static_cast<int>(rng.UniformInt(1, 40));
    std::vector<double> subset(n);
    for (double& v : subset) v = rng.Normal(rng.Uniform(-5, 5), 2.0);
    all.insert(all.end(), subset.begin(), subset.end());
    triples.push_back(AggTriple{Mean(subset), static_cast<double>(n), SampleStd(subset)});
  }
  AggTriple merged = MergeTriples(triples);
  EXPECT_NEAR(merged.count, static_cast<double>(all.size()), 1e-9);
  EXPECT_NEAR(merged.mean, Mean(all), 1e-9);
  EXPECT_NEAR(merged.std, SampleStd(all), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeTriplesTest, ::testing::Range(0, 25));

TEST(MergeTriples, IgnoresEmptySubsets) {
  AggTriple a{5.0, 3.0, 1.0};
  AggTriple empty{0.0, 0.0, 0.0};
  AggTriple merged = MergeTriples({a, empty});
  EXPECT_DOUBLE_EQ(merged.count, 3.0);
  EXPECT_DOUBLE_EQ(merged.mean, 5.0);
  EXPECT_NEAR(merged.std, 1.0, 1e-12);
}

// Property: the Moments sketch and the Appendix A triple algebra agree.
TEST(MergeTriples, AgreesWithMoments) {
  Rng rng(99);
  std::vector<AggTriple> triples;
  Moments total;
  for (int s = 0; s < 4; ++s) {
    Moments part;
    for (int i = 0; i < 20; ++i) {
      double v = rng.Normal(0, 3);
      part.Observe(v);
      total.Observe(v);
    }
    triples.push_back(AggTriple{part.Mean(), part.count, part.SampleStd()});
  }
  AggTriple merged = MergeTriples(triples);
  EXPECT_NEAR(merged.mean, total.Mean(), 1e-9);
  EXPECT_NEAR(merged.std, total.SampleStd(), 1e-9);
}

}  // namespace
}  // namespace reptile
