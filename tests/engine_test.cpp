// End-to-end tests for core/engine on a Figure-1-style drought dataset with
// injected group-wise errors.

#include <algorithm>

#include "common/rng.h"
#include "core/engine.h"
#include "gtest/gtest.h"

namespace reptile {
namespace {

// 4 districts x 5 villages x 6 years; severity = district + year effects +
// noise. Optionally injects errors before building the dataset.
struct DroughtData {
  Table table;
  int district_col, village_col, year_col, severity_col;

  explicit DroughtData(Rng* rng,
                       const std::function<double(int d, int v, int y, double base)>& severity_fn,
                       const std::function<int(int d, int v, int y)>& rows_fn) {
    district_col = table.AddDimensionColumn("district");
    village_col = table.AddDimensionColumn("village");
    year_col = table.AddDimensionColumn("year");
    severity_col = table.AddMeasureColumn("severity");
    for (int d = 0; d < 4; ++d) {
      for (int v = 0; v < 5; ++v) {
        std::string district = "d" + std::to_string(d);
        std::string village = district + "_v" + std::to_string(v);
        for (int y = 0; y < 6; ++y) {
          std::string year = "y" + std::to_string(y);
          int rows = rows_fn(d, v, y);
          for (int r = 0; r < rows; ++r) {
            double base = 5.0 + 0.5 * d + 0.3 * y + rng->Normal(0.0, 0.2);
            table.SetDim(district_col, district);
            table.SetDim(village_col, village);
            table.SetDim(year_col, year);
            table.SetMeasure(severity_col, severity_fn(d, v, y, base));
            table.CommitRow();
          }
        }
      }
    }
  }

  Dataset MakeDataset() {
    return Dataset(std::move(table),
                   {{"geo", {"district", "village"}}, {"time", {"year"}}});
  }
};

// Severity drift error: village (0, 0) in year 3 reports +5.
DroughtData MakeDriftData(Rng* rng) {
  return DroughtData(
      rng,
      [](int d, int v, int y, double base) {
        return (d == 0 && v == 0 && y == 3) ? base + 5.0 : base;
      },
      [](int, int, int) { return 8; });
}

TEST(Engine, FindsDriftedDistrictThenVillage) {
  Rng rng(7);
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();
  Engine engine(&ds);
  // Session state: the user has already drilled time to years.
  engine.CommitDrillDown(1);

  RowFilter filter;
  filter.Add(ds.table().ColumnIndex("year"), *ds.table().dict(2).Find("y3"));
  Complaint complaint =
      Complaint::TooHigh(AggFn::kMean, ds.table().ColumnIndex("severity"), filter);

  Recommendation rec = engine.RecommendDrillDown(complaint);
  ASSERT_EQ(rec.candidates.size(), 1u);  // only geo can still drill
  const HierarchyRecommendation& best = rec.best();
  EXPECT_EQ(best.hierarchy, 0);
  EXPECT_EQ(best.attribute, "district");
  ASSERT_FALSE(best.top_groups.empty());
  // The drifted village lives in district d0.
  EXPECT_NE(best.top_groups[0].description.find("district=d0"), std::string::npos)
      << best.top_groups[0].description;

  // Drill to district, then villages: the drifted village tops the list.
  engine.CommitDrillDown(0);
  RowFilter filter2 = filter;
  filter2.Add(ds.table().ColumnIndex("district"), *ds.table().dict(0).Find("d0"));
  Complaint complaint2 =
      Complaint::TooHigh(AggFn::kMean, ds.table().ColumnIndex("severity"), filter2);
  Recommendation rec2 = engine.RecommendDrillDown(complaint2);
  const HierarchyRecommendation& best2 = rec2.best();
  EXPECT_EQ(best2.attribute, "village");
  ASSERT_FALSE(best2.top_groups.empty());
  EXPECT_NE(best2.top_groups[0].description.find("village=d0_v0"), std::string::npos)
      << best2.top_groups[0].description;
  // The repair lowers the group's mean toward its expectation.
  EXPECT_LT(best2.top_groups[0].predicted.at(AggFn::kMean),
            best2.top_groups[0].observed.Mean() - 2.0);
}

TEST(Engine, FindsMissingRowsWithCountComplaint) {
  Rng rng(11);
  // Missing-records error: village (1, 2) in year 2 lost 6 of its 8 rows.
  DroughtData data(
      &rng, [](int, int, int, double base) { return base; },
      [](int d, int v, int y) { return (d == 1 && v == 2 && y == 2) ? 2 : 8; });
  Dataset ds = data.MakeDataset();
  Engine engine(&ds);
  engine.CommitDrillDown(1);

  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y2"));
  Complaint complaint = Complaint::TooLow(AggFn::kCount, -1, filter);
  Recommendation rec = engine.RecommendDrillDown(complaint);
  const HierarchyRecommendation& best = rec.best();
  ASSERT_FALSE(best.top_groups.empty());
  EXPECT_NE(best.top_groups[0].description.find("district=d1"), std::string::npos);
  // Predicted count is near the healthy 5 villages * 8 rows = 40.
  EXPECT_GT(best.top_groups[0].predicted.at(AggFn::kCount), 34.0);
}

TEST(Engine, DenseBackendAgreesWithFactorized) {
  Rng rng(13);
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();

  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y3"));
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 3, filter);

  EngineOptions fopts;
  fopts.model.Factorized();
  Engine fengine(&ds, fopts);
  fengine.CommitDrillDown(1);
  Recommendation frec = fengine.RecommendDrillDown(complaint);

  EngineOptions dopts;
  dopts.model.Dense();
  Engine dengine(&ds, dopts);
  dengine.CommitDrillDown(1);
  Recommendation drec = dengine.RecommendDrillDown(complaint);

  ASSERT_EQ(frec.candidates.size(), drec.candidates.size());
  const auto& fg = frec.best().top_groups;
  const auto& dg = drec.best().top_groups;
  ASSERT_EQ(fg.size(), dg.size());
  for (size_t i = 0; i < fg.size(); ++i) {
    EXPECT_EQ(fg[i].description, dg[i].description);
    EXPECT_NEAR(fg[i].score, dg[i].score, 1e-6);
  }
}

TEST(Engine, LinearModelRuns) {
  Rng rng(17);
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();
  EngineOptions opts;
  opts.model.Linear();
  Engine engine(&ds, opts);
  engine.CommitDrillDown(1);
  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y3"));
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 3, filter);
  Recommendation rec = engine.RecommendDrillDown(complaint);
  ASSERT_FALSE(rec.best().top_groups.empty());
  EXPECT_NE(rec.best().top_groups[0].description.find("d0"), std::string::npos);
}

TEST(Engine, AuxiliaryDataImprovesRepairs) {
  Rng rng(23);
  // Severity is driven by a per-(village, year) latent rainfall; villages
  // with low rainfall report high severity. One village-year has a genuine
  // reporting error unrelated to rainfall.
  Table aux;
  int av = aux.AddDimensionColumn("village");
  int ar = aux.AddMeasureColumn("rainfall");
  std::vector<double> rainfall(20);
  for (int i = 0; i < 20; ++i) rainfall[static_cast<size_t>(i)] = rng.Uniform(50.0, 400.0);

  DroughtData data(
      &rng,
      [&](int d, int v, int y, double base) {
        double rain_effect = -rainfall[static_cast<size_t>(d * 5 + v)] / 100.0;
        double error = (d == 2 && v == 1 && y == 4) ? 4.0 : 0.0;
        return base + rain_effect + error + static_cast<double>(y) * 0.0;
      },
      [](int, int, int) { return 6; });
  Dataset ds = data.MakeDataset();
  for (int d = 0; d < 4; ++d) {
    for (int v = 0; v < 5; ++v) {
      aux.SetDim(av, "d" + std::to_string(d) + "_v" + std::to_string(v));
      aux.SetMeasure(ar, rainfall[static_cast<size_t>(d * 5 + v)]);
      aux.CommitRow();
    }
  }

  Engine engine(&ds);
  AuxiliarySpec spec;
  spec.name = "rainfall";
  spec.table = &aux;
  spec.join_attrs = {"village"};
  spec.measure = "rainfall";
  engine.RegisterAuxiliary(std::move(spec));

  engine.CommitDrillDown(1);  // years
  engine.CommitDrillDown(0);  // districts
  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y4"));
  filter.Add(0, *ds.table().dict(0).Find("d2"));
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 3, filter);
  Recommendation rec = engine.RecommendDrillDown(complaint);
  const HierarchyRecommendation& best = rec.best();
  EXPECT_EQ(best.attribute, "village");
  ASSERT_FALSE(best.top_groups.empty());
  EXPECT_NE(best.top_groups[0].description.find("village=d2_v1"), std::string::npos)
      << best.top_groups[0].description;
}

TEST(Engine, CustomFeatureParticipates) {
  Rng rng(41);
  // Severity follows a per-village baseline the model can only learn through
  // a custom feature: the trimmed mean of the village's own group statistics
  // (a robust location estimate, like the paper's "previous year's severity
  // may be predictive" example).
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();
  Engine engine(&ds);
  CustomFeatureSpec spec;
  spec.name = "village_trimmed_mean";
  spec.attr = "village";
  spec.fn = [](const AttrValueStats& stats) {
    std::vector<double> map(stats.y_per_code.size(), 0.0);
    for (size_t code = 0; code < stats.y_per_code.size(); ++code) {
      std::vector<double> ys = stats.y_per_code[code];
      if (ys.size() >= 3) {
        std::sort(ys.begin(), ys.end());
        ys.erase(ys.end() - 1);
        ys.erase(ys.begin());
      }
      double sum = 0.0;
      for (double y : ys) sum += y;
      map[code] = ys.empty() ? 0.0 : sum / static_cast<double>(ys.size());
    }
    return map;
  };
  engine.RegisterCustomFeature(std::move(spec));

  engine.CommitDrillDown(1);
  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y3"));
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 3, filter);
  Recommendation rec = engine.RecommendDrillDown(complaint);
  ASSERT_FALSE(rec.best().top_groups.empty());
  EXPECT_NE(rec.best().top_groups[0].description.find("district=d0"), std::string::npos);

  engine.CommitDrillDown(0);
  RowFilter filter2 = filter;
  filter2.Add(0, *ds.table().dict(0).Find("d0"));
  Recommendation rec2 =
      engine.RecommendDrillDown(Complaint::TooHigh(AggFn::kMean, 3, filter2));
  ASSERT_FALSE(rec2.best().top_groups.empty());
  EXPECT_NE(rec2.best().top_groups[0].description.find("village=d0_v0"), std::string::npos);
}

TEST(Engine, EqualsComplaintPicksClosestRepair) {
  Rng rng(43);
  // Missing-rows error; the complaint states the expected exact count
  // (Example 8's fcomp(t) = |t[agg] - v| form).
  DroughtData data(
      &rng, [](int, int, int, double base) { return base; },
      [](int d, int v, int y) { return (d == 2 && v == 3 && y == 1) ? 2 : 8; });
  Dataset ds = data.MakeDataset();
  Engine engine(&ds);
  engine.CommitDrillDown(1);
  engine.CommitDrillDown(0);
  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y1"));
  filter.Add(0, *ds.table().dict(0).Find("d2"));
  // Clean district-year count would be 5 villages * 8 rows = 40.
  Complaint complaint = Complaint::Equals(AggFn::kCount, -1, filter, 40.0);
  Recommendation rec = engine.RecommendDrillDown(complaint);
  ASSERT_FALSE(rec.best().top_groups.empty());
  const GroupRecommendation& top = rec.best().top_groups[0];
  EXPECT_NE(top.description.find("village=d2_v3"), std::string::npos);
  // The repair should bring the count close to the stated 40.
  EXPECT_NEAR(top.repaired_complaint_value, 40.0, 3.0);
}

TEST(Engine, NoDrillableHierarchyYieldsNoCandidates) {
  Rng rng(47);
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();
  Engine engine(&ds);
  engine.CommitDrillDown(0);
  engine.CommitDrillDown(0);
  engine.CommitDrillDown(1);
  EXPECT_FALSE(engine.CanDrill(0));
  EXPECT_FALSE(engine.CanDrill(1));
  Recommendation rec =
      engine.RecommendDrillDown(Complaint::TooHigh(AggFn::kMean, 3, RowFilter()));
  EXPECT_TRUE(rec.candidates.empty());
  EXPECT_EQ(rec.best_index, -1);
}

TEST(Engine, TopKClampedToGroupCount) {
  Rng rng(53);
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();
  EngineOptions opts;
  opts.top_k = 10000;
  Engine engine(&ds, opts);
  engine.CommitDrillDown(1);
  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y3"));
  Recommendation rec =
      engine.RecommendDrillDown(Complaint::TooHigh(AggFn::kMean, 3, filter));
  // Groups = 4 districts within y3.
  EXPECT_EQ(rec.best().top_groups.size(), 4u);
}

TEST(Engine, ExtraRepairStatsAddPredictions) {
  Rng rng(59);
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();
  EngineOptions opts;
  opts.model.extra_repair_stats = {AggFn::kCount};
  Engine engine(&ds, opts);
  engine.CommitDrillDown(1);
  RowFilter filter;
  filter.Add(2, *ds.table().dict(2).Find("y3"));
  Recommendation rec =
      engine.RecommendDrillDown(Complaint::TooHigh(AggFn::kMean, 3, filter));
  ASSERT_FALSE(rec.best().top_groups.empty());
  const auto& predicted = rec.best().top_groups[0].predicted;
  EXPECT_TRUE(predicted.count(AggFn::kMean));
  EXPECT_TRUE(predicted.count(AggFn::kCount));
}

TEST(Engine, RecommendationBookkeeping) {
  Rng rng(29);
  DroughtData data = MakeDriftData(&rng);
  Dataset ds = data.MakeDataset();
  Engine engine(&ds);
  EXPECT_EQ(engine.drill_depth(0), 0);
  EXPECT_TRUE(engine.CanDrill(0));

  // First invocation with no committed drill: both hierarchies are
  // candidates and groups are single-attribute.
  Complaint complaint = Complaint::TooHigh(AggFn::kMean, 3, RowFilter());
  Recommendation rec = engine.RecommendDrillDown(complaint);
  EXPECT_EQ(rec.candidates.size(), 2u);
  for (const auto& cand : rec.candidates) {
    EXPECT_GT(cand.model_rows, 0);
    EXPECT_GE(cand.total_seconds, cand.train_seconds);
  }
  EXPECT_GE(rec.best_index, 0);
}

}  // namespace
}  // namespace reptile
