// Tests for the event-driven serving tier (src/net/): the epoll reactor
// front end run differentially against the thread-per-connection server
// (byte-identical bodies over the full dataset/session lifecycle, serial and
// under concurrent clients), hostile-client behavior (slow-loris trickle,
// mid-body disconnects, stalled readers, oversized streamed uploads),
// backpressure and admission-control counters, the 256-idle-connection
// fixed-thread guarantee, bearer-token auth, and the streaming building
// blocks (CsvStreamParser chunk-split equivalence, ToJsonPieces ==
// ToJson).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "data/csv.h"
#include "datagen/panel_gen.h"
#include "gtest/gtest.h"
#include "net/reactor_server.h"
#include "reptile/reptile.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/json.h"
#include "server/service.h"

namespace reptile {
namespace {

constexpr int kDistricts = 4;
constexpr int kVillages = 3;
constexpr int kYears = 4;
constexpr int kRowsPerGroup = 3;

// MakeSeverityPanel is deterministic in its spec, so the two service stacks
// below hold bit-identical datasets — the basis of every byte-equality
// assertion in the differential suite.
Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = kDistricts;
  spec.villages_per_district = kVillages;
  spec.years = kYears;
  spec.rows_per_group = kRowsPerGroup;
  return MakeSeverityPanel(spec);
}

std::string RecommendBody(const std::string& address, int year) {
  return "{" + address +
         R"(,"complaint":{"aggregate":"std","measure":"severity",)"
         R"("where":[{"column":"year","value":"y)" +
         std::to_string(year) +
         R"("}]},"options":{"zero_timings":true}})";
}

std::string BatchBody(const std::string& address) {
  std::string body = "{" + address + R"(,"complaints":[)";
  for (int y = 0; y < kYears; ++y) {
    if (y > 0) body += ',';
    body += R"({"aggregate":"std","measure":"severity","where":[{"column":"year","value":"y)" +
            std::to_string(y) + R"("}]})";
  }
  body += R"(],"options":{"zero_timings":true}})";
  return body;
}

const char kUploadCsv[] =
    "d,y,m\n"
    "d0,y0,1\nd0,y0,2\nd0,y1,3\nd0,y1,4\n"
    "d1,y0,5\nd1,y0,3\nd1,y1,2\nd1,y1,6\n"
    "d2,y0,4\nd2,y0,2\nd2,y1,5\nd2,y1,1\n";

// One service + front end. `reactor=true` serves through the epoll reactor,
// false through the thread-per-connection oracle; everything else (datasets,
// options, handler) is identical, so responses must be byte-identical.
struct Stack {
  explicit Stack(bool reactor, ServiceOptions service_options = ServiceOptions(),
                 size_t max_stream_body_bytes = size_t{1} << 30)
      : service(std::move(service_options)) {
    EXPECT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());
    HttpHandler handler = [this](const HttpRequest& request) {
      return service.Handle(request);
    };
    HttpStreamFactory factory = [this](const HttpRequest& head) {
      return service.StartStreamingBody(head);
    };
    if (reactor) {
      ReactorServerOptions options;
      options.num_threads = 2;
      options.tick_interval_ms = 50;
      options.max_stream_body_bytes = max_stream_body_bytes;
      options.stream_factory = factory;
      reactor_server = std::make_unique<ReactorServer>(std::move(options), handler);
      EXPECT_TRUE(reactor_server->Start().ok());
      port = reactor_server->port();
    } else {
      HttpServerOptions options;
      options.num_threads = 4;  // >= concurrent clients below
      options.max_stream_body_bytes = max_stream_body_bytes;
      options.stream_factory = factory;
      http_server = std::make_unique<HttpServer>(std::move(options), handler);
      EXPECT_TRUE(http_server->Start().ok());
      port = http_server->port();
    }
  }

  ReptileService service;
  std::unique_ptr<HttpServer> http_server;
  std::unique_ptr<ReactorServer> reactor_server;
  int port = 0;
};

// A blocking loopback socket with explicit timeouts — for clients that must
// misbehave in ways HttpClient cannot (trickled bytes, half-finished bodies,
// refusing to read).
class RawSocket {
 public:
  explicit RawSocket(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Close();
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~RawSocket() { Close(); }
  RawSocket(RawSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  RawSocket& operator=(RawSocket&&) = delete;

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until EOF or until `deadline_ms` passes with no data.
  std::string ReadUntilClosed(int deadline_ms) {
    std::string out;
    for (;;) {
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, deadline_ms);
      if (ready <= 0) return out;  // timed out (or error): give back what we have
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return out;  // EOF
      out.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the peer has closed (EOF observed within `deadline_ms`).
  bool WaitForEof(int deadline_ms) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
    for (;;) {
      int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count());
      if (remaining <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, remaining) <= 0) return false;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) return true;
      if (n < 0) return false;
      // Data (e.g. an error response) before the close: keep draining.
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

int ProcessThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) return std::atoi(line.c_str() + 8);
  }
  return -1;
}

// ---- Differential suite ----------------------------------------------------

struct WireCall {
  std::string label;
  std::string method;  // "GET", "POST", "DELETE"
  std::string path;
  std::string body;
  std::string content_type = "application/json";
};

// /healthz carries fields that are volatile across two independently
// constructed service instances — uptime_seconds can straddle a second
// boundary and the per-service "metrics" object accumulates real latencies —
// so scrub exactly those two before byte-comparing; every other healthz byte
// stays pinned.
std::string NormalizeHealthz(const std::string& body) {
  std::string out = body;
  constexpr std::string_view kUptime = "\"uptime_seconds\":";
  size_t pos = out.find(kUptime);
  if (pos != std::string::npos) {
    size_t begin = pos + kUptime.size();
    size_t end = begin;
    while (end < out.size() && out[end] >= '0' && out[end] <= '9') ++end;
    out.replace(begin, end - begin, "0");
  }
  constexpr std::string_view kMetrics = "\"metrics\":";
  pos = out.find(kMetrics);
  if (pos != std::string::npos && pos + kMetrics.size() < out.size() &&
      out[pos + kMetrics.size()] == '{') {
    // String-aware brace matching: histogram help text could hold braces.
    size_t begin = pos + kMetrics.size();
    size_t end = begin;
    int depth = 0;
    bool in_string = false, escaped = false;
    for (; end < out.size(); ++end) {
      char c = out[end];
      if (in_string) {
        if (escaped) escaped = false;
        else if (c == '\\') escaped = true;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) { ++end; break; }
      }
    }
    out.replace(begin, end - begin, "{}");
  }
  return out;
}

void RunDifferentialSequence(const std::vector<WireCall>& calls, Stack& a, Stack& b) {
  HttpClient client_a("127.0.0.1", a.port);
  HttpClient client_b("127.0.0.1", b.port);
  for (const WireCall& call : calls) {
    auto run = [&call](HttpClient& client) {
      if (call.method == "GET") return client.Get(call.path);
      if (call.method == "DELETE") return client.Delete(call.path);
      return client.Post(call.path, call.body, call.content_type);
    };
    Result<HttpClientResponse> ra = run(client_a);
    Result<HttpClientResponse> rb = run(client_b);
    ASSERT_TRUE(ra.ok()) << call.label << ": " << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << call.label << ": " << rb.status().ToString();
    EXPECT_EQ(ra->status, rb->status) << call.label;
    if (call.path == "/healthz" && call.method == "GET") {
      EXPECT_EQ(NormalizeHealthz(ra->body), NormalizeHealthz(rb->body)) << call.label;
    } else {
      EXPECT_EQ(ra->body, rb->body) << call.label;
    }
  }
}

TEST(NetDifferentialTest, FullLifecycleByteIdenticalAcrossFrontEnds) {
  Stack threaded(/*reactor=*/false);
  Stack reactor(/*reactor=*/true);

  const std::string session_address = R"("session":"s-1")";
  std::vector<WireCall> calls = {
      {"healthz", "GET", "/healthz", ""},
      {"dataset list", "GET", "/v1/datasets", ""},
      {"inline upload", "POST", "/v1/datasets",
       std::string(R"({"name":"up","csv":")") +
           "d,y,m\\nd0,y0,1\\nd0,y0,2\\nd0,y1,3\\nd1,y0,4\\nd1,y1,5\\nd1,y1,6\\n" +
           R"(","dimensions":["d","y"],"measures":["m"],)" +
           R"("hierarchies":[{"name":"geo","attributes":["d"]},)" +
           R"({"name":"time","attributes":["y"]}],"commits":["time"]})"},
      {"streamed csv upload", "POST",
       "/v1/datasets?name=sup&dimensions=d,y&measures=m"
       "&hierarchy=geo:d&hierarchy=time:y&commits=time",
       kUploadCsv, "text/csv"},
      {"dataset list after uploads", "GET", "/v1/datasets", ""},
      {"session create", "POST", "/v1/sessions",
       R"({"dataset":"up","committed":{"time":1}})"},
      {"session list", "GET", "/v1/sessions", ""},
      {"recommend via session", "POST", "/v1/recommend",
       "{" + session_address +
           R"(,"complaint":{"aggregate":"mean","measure":"m",)" +
           R"("where":[{"column":"y","value":"y0"}]},"options":{"zero_timings":true}})"},
      {"recommend via default", "POST", "/v1/recommend", RecommendBody(R"("dataset":"panel")", 2)},
      {"recommend_batch", "POST", "/v1/recommend_batch", BatchBody(R"("dataset":"panel")")},
      {"view", "POST", "/v1/view",
       R"({"dataset":"panel","group_by":["year"],"measure":"severity"})"},
      {"commit via session", "POST", "/v1/commit",
       "{" + session_address + R"(,"hierarchy":"geo"})"},
      {"session snapshot", "GET", "/v1/sessions/s-1", ""},
      {"session delete", "DELETE", "/v1/sessions/s-1", ""},
      {"deleted session is 404", "GET", "/v1/sessions/s-1", ""},
      {"streamed dataset recommend", "POST", "/v1/recommend",
       R"({"dataset":"sup","complaint":{"aggregate":"mean","measure":"m",)"
       R"("where":[{"column":"y","value":"y1"}]},"options":{"zero_timings":true}})"},
      {"dataset delete", "DELETE", "/v1/datasets/up", ""},
      {"dataset delete again is 404", "DELETE", "/v1/datasets/up", ""},
      {"bad json", "POST", "/v1/recommend", "{nope"},
      {"unknown route", "GET", "/v1/nothing-here", ""},
      {"wrong method", "POST", "/healthz", "{}"},
      {"bad streamed upload metadata", "POST",
       "/v1/datasets?name=bad&dimensions=d,y&hierarchy=broken", kUploadCsv, "text/csv"},
      {"streamed upload parse error", "POST",
       "/v1/datasets?name=bad2&dimensions=d,y&measures=m", "d,y,m\nd0,y0,not-a-number\n",
       "text/csv"},
      {"healthz after lifecycle", "GET", "/healthz", ""},
  };
  RunDifferentialSequence(calls, threaded, reactor);
}

// /metricsz on BOTH front ends: structural assertions only (latency values
// are scheduling-dependent, so no byte comparison) — Prometheus content
// type, the request-latency histogram with cumulative buckets, the stage
// and cache series, and a trace id echoed on the scrape response itself.
TEST(NetDifferentialTest, MetricszServedIdenticallyShapedOnBothFrontEnds) {
  Stack threaded(/*reactor=*/false);
  Stack reactor(/*reactor=*/true);
  for (Stack* stack : {&threaded, &reactor}) {
    HttpClient client("127.0.0.1", stack->port);
    // Drive one recommend through first so the stage histograms are fed.
    Result<HttpClientResponse> rec =
        client.Post("/v1/recommend", RecommendBody(R"("dataset":"panel")", 0));
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ASSERT_EQ(rec->status, 200);

    Result<HttpClientResponse> metrics = client.Get("/metricsz");
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_EQ(metrics->status, 200);
    ASSERT_NE(metrics->FindHeader("content-type"), nullptr);
    EXPECT_NE(metrics->FindHeader("content-type")->find("version=0.0.4"),
              std::string::npos);
    const std::string& body = metrics->body;
    for (const char* needle :
         {"# TYPE reptile_http_request_duration_seconds histogram",
          "reptile_http_request_duration_seconds_bucket{le=\"+Inf\"}",
          "reptile_http_request_duration_seconds_count",
          "reptile_http_requests_total{code=\"2xx\"}",
          "reptile_request_stage_duration_seconds_bucket{stage=\"fit\",le=\"+Inf\"}",
          "reptile_aggregate_cache_hits", "reptile_model_cache_fits",
          "reptile_sessions", "reptile_datasets",
          "reptile_shared_pool_queue_depth"}) {
      EXPECT_NE(body.find(needle), std::string::npos)
          << "missing " << needle << " in:\n" << body.substr(0, 2000);
    }
    ASSERT_NE(metrics->FindHeader("x-request-id"), nullptr);
    EXPECT_FALSE(metrics->FindHeader("x-request-id")->empty());
  }
  // With the transport hook wired (as serve_main does for --reactor), the
  // front end's counters are re-exported as reptile_transport_* gauges.
  auto transport = std::make_shared<std::function<std::string()>>();
  ServiceOptions with_transport;
  with_transport.transport_stats_json = [transport] {
    return *transport ? (*transport)() : std::string("null");
  };
  Stack reactor2(/*reactor=*/true, std::move(with_transport));
  *transport = [&reactor2] { return reactor2.reactor_server->StatsJson(); };
  HttpClient client2("127.0.0.1", reactor2.port);
  ASSERT_TRUE(client2.Get("/healthz").ok());
  Result<HttpClientResponse> metrics2 = client2.Get("/metricsz");
  ASSERT_TRUE(metrics2.ok()) << metrics2.status().ToString();
  EXPECT_NE(metrics2->body.find("reptile_transport_requests_dispatched"),
            std::string::npos)
      << metrics2->body.substr(0, 2000);
}

TEST(NetDifferentialTest, ConcurrentClientsSeeByteIdenticalBodies) {
  Stack threaded(/*reactor=*/false);
  Stack reactor(/*reactor=*/true);

  // Reference bytes, computed serially first.
  std::vector<std::string> expected;
  {
    HttpClient client("127.0.0.1", threaded.port);
    for (int y = 0; y < kYears; ++y) {
      Result<HttpClientResponse> r =
          client.Post("/v1/recommend", RecommendBody(R"("dataset":"panel")", y));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->status, 200);
      expected.push_back(r->body);
    }
  }

  constexpr int kClients = 4;
  constexpr int kIterations = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient via_threaded("127.0.0.1", threaded.port);
      HttpClient via_reactor("127.0.0.1", reactor.port);
      for (int i = 0; i < kIterations; ++i) {
        int year = (c + i) % kYears;
        std::string body = RecommendBody(R"("dataset":"panel")", year);
        Result<HttpClientResponse> rt = via_threaded.Post("/v1/recommend", body);
        Result<HttpClientResponse> rr = via_reactor.Post("/v1/recommend", body);
        if (!rt.ok() || !rr.ok() || rt->status != 200 || rr->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        if (rt->body != expected[year] || rr->body != expected[year]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(reactor.reactor_server->requests_dispatched(), kClients * kIterations);
}

TEST(NetDifferentialTest, PipelinedRequestsAnsweredInOrderOnBothFrontEnds) {
  Stack threaded(/*reactor=*/false);
  Stack reactor(/*reactor=*/true);
  const std::string two_gets =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  for (Stack* stack : {&threaded, &reactor}) {
    HttpClient client("127.0.0.1", stack->port);
    Result<std::string> raw = client.SendRaw(two_gets);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    // Two complete 200 responses, back to back.
    size_t first = raw->find("HTTP/1.1 200 OK");
    ASSERT_NE(first, std::string::npos);
    size_t second = raw->find("HTTP/1.1 200 OK", first + 1);
    ASSERT_NE(second, std::string::npos);
  }
}

TEST(NetDifferentialTest, StreamedBatchBodyMatchesBufferedBytes) {
  ServiceOptions streaming;
  streaming.stream_threshold_bytes = 1;  // stream every batch response
  Stack buffered_stack(/*reactor=*/false);
  Stack streamed_threaded(/*reactor=*/false, streaming);
  Stack streamed_reactor(/*reactor=*/true, streaming);

  HttpClient buffered_client("127.0.0.1", buffered_stack.port);
  Result<HttpClientResponse> buffered =
      buffered_client.Post("/v1/recommend_batch", BatchBody(R"("dataset":"panel")"));
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  ASSERT_EQ(buffered->status, 200);
  EXPECT_EQ(buffered->FindHeader("transfer-encoding"), nullptr);

  for (Stack* stack : {&streamed_threaded, &streamed_reactor}) {
    HttpClient client("127.0.0.1", stack->port);
    Result<HttpClientResponse> streamed =
        client.Post("/v1/recommend_batch", BatchBody(R"("dataset":"panel")"));
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_EQ(streamed->status, 200);
    const std::string* te = streamed->FindHeader("transfer-encoding");
    ASSERT_NE(te, nullptr);
    EXPECT_EQ(*te, "chunked");
    EXPECT_EQ(streamed->body, buffered->body);  // decoded bytes identical
  }
}

TEST(NetDifferentialTest, Http10ClientGetsIdentityBodyFromStreamingServer) {
  ServiceOptions streaming;
  streaming.stream_threshold_bytes = 1;
  Stack stack(/*reactor=*/true, streaming);

  std::string body = BatchBody(R"("dataset":"panel")");
  std::string request = "POST /v1/recommend_batch HTTP/1.0\r\nHost: x\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
  HttpClient client("127.0.0.1", stack.port);
  Result<std::string> raw = client.SendRaw(request);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_NE(raw->find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(raw->find("Transfer-Encoding"), std::string::npos);
  EXPECT_NE(raw->find("Content-Length:"), std::string::npos);
  EXPECT_NE(raw->find("\"responses\":["), std::string::npos);
}

// ---- Auth ------------------------------------------------------------------

HttpRequest MakeRequest(const std::string& method, const std::string& target,
                        std::string body = std::string(),
                        std::vector<std::pair<std::string, std::string>> headers = {}) {
  HttpRequest request;
  request.method = method;
  request.target = target;
  size_t question = target.find('?');
  request.path = target.substr(0, question);
  if (question != std::string::npos) request.query = target.substr(question + 1);
  request.http_version = "HTTP/1.1";
  request.headers = std::move(headers);
  request.body = std::move(body);
  return request;
}

TEST(NetAuthTest, BearerTokenGatesMutatingRoutesOnly) {
  ServiceOptions options;
  options.auth_token = "tok-123";
  ReptileService service(options);
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());

  const std::string commit = R"({"dataset":"panel","hierarchy":"geo"})";

  // Mutating routes without (or with a wrong) token: 401, standard envelope,
  // WWW-Authenticate challenge.
  for (const auto& [method, target] :
       std::vector<std::pair<std::string, std::string>>{
           {"POST", "/v1/datasets"},
           {"DELETE", "/v1/datasets/panel"},
           {"POST", "/v1/datasets/panel/snapshot"},
           {"POST", "/v1/sessions"},
           {"DELETE", "/v1/sessions/s-1"},
           {"POST", "/v1/commit"}}) {
    HttpResponse denied = service.Handle(MakeRequest(method, target, "{}"));
    EXPECT_EQ(denied.status, 401) << method << " " << target;
    EXPECT_NE(denied.body.find("\"code\":\"UNAUTHENTICATED\""), std::string::npos);
    EXPECT_NE(denied.body.find("\"http\":401"), std::string::npos);
    bool has_challenge = false;
    for (const auto& [name, value] : denied.extra_headers) {
      if (name == "WWW-Authenticate") has_challenge = true;
    }
    EXPECT_TRUE(has_challenge);
  }
  HttpResponse wrong = service.Handle(MakeRequest(
      "POST", "/v1/commit", commit, {{"authorization", "Bearer wrong"}}));
  EXPECT_EQ(wrong.status, 401);
  HttpResponse scheme_only = service.Handle(MakeRequest(
      "POST", "/v1/commit", commit, {{"authorization", "tok-123"}}));
  EXPECT_EQ(scheme_only.status, 401);

  // Reads and /healthz stay open (checked before any commit narrows the
  // default session's drill-down frontier).
  EXPECT_EQ(service.Handle(MakeRequest("GET", "/healthz")).status, 200);
  EXPECT_EQ(service.Handle(MakeRequest("GET", "/v1/datasets")).status, 200);
  EXPECT_EQ(service.Handle(MakeRequest("GET", "/v1/sessions")).status, 200);
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/recommend",
                                    RecommendBody(R"("dataset":"panel")", 0)))
                .status,
            200);

  // The right token unlocks the route (case-insensitive scheme).
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/commit", commit,
                                    {{"authorization", "Bearer tok-123"}}))
                .status,
            200);
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/commit", commit,
                                    {{"authorization", "bearer tok-123"}}))
                .status,
            200);

  // Streamed uploads are gated too: the sink rejects the body outright.
  HttpRequest upload = MakeRequest(
      "POST", "/v1/datasets?name=x&dimensions=d", std::string(),
      {{"content-type", "text/csv"}});
  std::unique_ptr<HttpBodySink> sink = service.StartStreamingBody(upload);
  ASSERT_NE(sink, nullptr);
  EXPECT_FALSE(sink->Append("d\n"));
  EXPECT_EQ(sink->Finish(false).status, 401);
}

TEST(NetAuthTest, TokenlessServiceAcceptsEverything) {
  ReptileService service;  // no auth_token
  ASSERT_TRUE(service.AddDataset("panel", MakePanel(), {"time"}).ok());
  EXPECT_EQ(service
                .Handle(MakeRequest("POST", "/v1/commit",
                                    R"({"dataset":"panel","hierarchy":"geo"})"))
                .status,
            200);
}

TEST(NetAuthTest, AuthEnforcedOverBothFrontEnds) {
  ServiceOptions options;
  options.auth_token = "wire-tok";
  Stack threaded(/*reactor=*/false, options);
  Stack reactor(/*reactor=*/true, options);
  for (Stack* stack : {&threaded, &reactor}) {
    HttpClient client("127.0.0.1", stack->port);
    Result<HttpClientResponse> denied =
        client.Post("/v1/commit", R"({"dataset":"panel","hierarchy":"geo"})");
    ASSERT_TRUE(denied.ok()) << denied.status().ToString();
    EXPECT_EQ(denied->status, 401);
    client.SetHeader("Authorization", "Bearer wire-tok");
    Result<HttpClientResponse> allowed =
        client.Post("/v1/commit", R"({"dataset":"panel","hierarchy":"geo"})");
    ASSERT_TRUE(allowed.ok()) << allowed.status().ToString();
    EXPECT_EQ(allowed->status, 200);
    // Streamed upload without the token: 401 through the rejecting sink.
    client.SetHeader("Authorization", "");
    Result<HttpClientResponse> upload = client.Post(
        "/v1/datasets?name=n&dimensions=d,y&measures=m", kUploadCsv, "text/csv");
    ASSERT_TRUE(upload.ok()) << upload.status().ToString();
    EXPECT_EQ(upload->status, 401);
  }
}

// ---- Hostile clients -------------------------------------------------------

TEST(NetHostileTest, SlowLorisHeaderTrickleGets408) {
  ReactorServerOptions options;
  options.num_threads = 1;
  options.idle_timeout_seconds = 1;
  options.tick_interval_ms = 25;
  ReactorServer server(std::move(options),
                       [](const HttpRequest&) { return HttpResponse::Json(200, "{}"); });
  ASSERT_TRUE(server.Start().ok());

  RawSocket socket(server.port());
  ASSERT_TRUE(socket.ok());
  // A few header bytes, then silence: the request never completes, but the
  // connection is not idle-empty either — the slow-loris pattern.
  ASSERT_TRUE(socket.Send("GET /healthz HTT"));
  std::string response = socket.ReadUntilClosed(5000);
  EXPECT_NE(response.find("HTTP/1.1 408 Request Timeout"), std::string::npos) << response;
  server.Stop();
}

TEST(NetHostileTest, ByteFreeIdleConnectionIsClosedSilently) {
  ReactorServerOptions options;
  options.num_threads = 1;
  options.idle_timeout_seconds = 1;
  options.tick_interval_ms = 25;
  ReactorServer server(std::move(options),
                       [](const HttpRequest&) { return HttpResponse::Json(200, "{}"); });
  ASSERT_TRUE(server.Start().ok());

  RawSocket socket(server.port());
  ASSERT_TRUE(socket.ok());
  std::string bytes = socket.ReadUntilClosed(5000);
  EXPECT_TRUE(bytes.empty()) << bytes;  // no 408 for a connection that sent nothing
  server.Stop();
}

TEST(NetHostileTest, MidBodyDisconnectLeavesServerHealthy) {
  Stack stack(/*reactor=*/true);
  {
    RawSocket buffered(stack.port);
    ASSERT_TRUE(buffered.ok());
    ASSERT_TRUE(buffered.Send("POST /v1/recommend HTTP/1.1\r\nHost: x\r\n"
                              "Content-Length: 100000\r\n\r\n{\"partial"));
    buffered.Close();  // vanish mid-body
  }
  {
    RawSocket streamed(stack.port);
    ASSERT_TRUE(streamed.ok());
    ASSERT_TRUE(streamed.Send(
        "POST /v1/datasets?name=gone&dimensions=d HTTP/1.1\r\nHost: x\r\n"
        "Content-Type: text/csv\r\nContent-Length: 100000\r\n\r\nd\nrow1\n"));
    streamed.Close();  // sink must be destroyed without Finish
  }
  // The server keeps serving, and the half-uploaded dataset never appeared.
  HttpClient client("127.0.0.1", stack.port);
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (stack.reactor_server->open_connections() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Result<HttpClientResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  Result<HttpClientResponse> sessions = client.Get("/v1/sessions");
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->body.find("gone"), std::string::npos);
}

TEST(NetHostileTest, StalledReaderOnStreamedResponseIsDisconnected) {
  // A handler that streams 16 MiB in 16 KiB pieces — far beyond socket
  // buffering — to a client that never reads: the write queue must cap at
  // the high-water mark (backpressure) and the stall timer must kill the
  // connection instead of letting bytes pile up forever.
  ReactorServerOptions options;
  options.num_threads = 1;
  options.tick_interval_ms = 25;
  options.write_high_water_bytes = 64 * 1024;
  options.write_stall_seconds = 0.5;
  ReactorServer server(std::move(options), [](const HttpRequest&) {
    HttpResponse response;
    auto remaining = std::make_shared<int>(1024);
    response.body_stream = [remaining](std::string* piece) {
      if (*remaining == 0) return false;
      --*remaining;
      piece->assign(16 * 1024, 'x');
      return true;
    };
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  RawSocket socket(server.port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket.Send("GET /big HTTP/1.1\r\nHost: x\r\n\r\n"));
  // Do not read. The server must give up within the stall window.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.slow_client_disconnects() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.slow_client_disconnects(), 1);
  EXPECT_GE(server.backpressure_trips(), 1);
  // The bounded queue never held more than high-water + one piece.
  EXPECT_LE(server.queued_bytes(), static_cast<int64_t>(80 * 1024));
  server.Stop();
}

TEST(NetHostileTest, OversizedStreamedUploadRejectedWithoutBuffering) {
  std::atomic<int64_t> bytes_fed{0};
  class CountingSink : public HttpBodySink {
   public:
    explicit CountingSink(std::atomic<int64_t>* fed) : fed_(fed) {}
    bool Append(std::string_view chunk) override {
      fed_->fetch_add(static_cast<int64_t>(chunk.size()));
      return true;
    }
    HttpResponse Finish(bool) override { return HttpResponse::Json(200, "{}"); }

   private:
    std::atomic<int64_t>* fed_;
  };

  ReactorServerOptions options;
  options.num_threads = 1;
  options.tick_interval_ms = 25;
  options.max_stream_body_bytes = 1024;
  options.stream_factory = [&bytes_fed](const HttpRequest&) {
    return std::make_unique<CountingSink>(&bytes_fed);
  };
  ReactorServer server(std::move(options),
                       [](const HttpRequest&) { return HttpResponse::Json(200, "{}"); });
  ASSERT_TRUE(server.Start().ok());

  RawSocket socket(server.port());
  ASSERT_TRUE(socket.ok());
  // Declare a 10 MB body but send none of it: the declared length alone must
  // trigger the 413 — no buffering, no draining of megabytes.
  ASSERT_TRUE(socket.Send("POST /upload HTTP/1.1\r\nHost: x\r\n"
                          "Content-Length: 10000000\r\n\r\n"));
  std::string response = socket.ReadUntilClosed(5000);
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
  EXPECT_EQ(bytes_fed.load(), 0);  // the sink never saw a byte
  server.Stop();
}

// ---- Capacity --------------------------------------------------------------

TEST(NetCapacityTest, Holds256IdleKeepAliveConnectionsWithFixedThreads) {
  Stack stack(/*reactor=*/true);  // 1 loop thread + 2 workers, regardless of load

  int threads_before = ProcessThreadCount();
  ASSERT_GT(threads_before, 0);

  constexpr int kConnections = 256;
  std::vector<RawSocket> sockets;
  sockets.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    sockets.emplace_back(stack.port);
    ASSERT_TRUE(sockets.back().ok()) << "connection " << i;
    if (i % 32 == 0) {
      // Prove a sampling of them actually speak HTTP and stay open after.
      ASSERT_TRUE(sockets.back().Send("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
      std::string response;
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (response.find("\"status\":\"ok\"") == std::string::npos &&
             std::chrono::steady_clock::now() < deadline) {
        response += sockets.back().ReadUntilClosed(100);
      }
      ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    }
  }
  // All 256 are open server-side...
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (stack.reactor_server->open_connections() < kConnections &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(stack.reactor_server->open_connections(), kConnections);
  // ...and the thread count did not move: idle connections are state, not
  // threads.
  EXPECT_EQ(ProcessThreadCount(), threads_before);

  // One of them still works with 255 idle siblings.
  HttpClient client("127.0.0.1", stack.port);
  Result<HttpClientResponse> response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
}

TEST(NetCapacityTest, ConnectionsPastTheCapGet503) {
  ReactorServerOptions options;
  options.num_threads = 1;
  options.tick_interval_ms = 25;
  options.max_connections = 4;
  ReactorServer server(std::move(options),
                       [](const HttpRequest&) { return HttpResponse::Json(200, "{}"); });
  ASSERT_TRUE(server.Start().ok());

  std::vector<RawSocket> held;
  for (int i = 0; i < 4; ++i) {
    held.emplace_back(server.port());
    ASSERT_TRUE(held.back().ok());
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.open_connections() < 4 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.open_connections(), 4);

  RawSocket extra(server.port());
  ASSERT_TRUE(extra.ok());
  std::string response = extra.ReadUntilClosed(5000);
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos) << response;
  EXPECT_TRUE(extra.WaitForEof(2000));
  EXPECT_GE(server.overload_rejections(), 1);
  server.Stop();
}

TEST(NetCapacityTest, StopFlushesInFlightResponses) {
  Stack stack(/*reactor=*/true);
  HttpClient client("127.0.0.1", stack.port);
  Result<HttpClientResponse> warm = client.Get("/healthz");
  ASSERT_TRUE(warm.ok());
  stack.reactor_server->Stop();
  // After Stop() the port no longer accepts (or resets immediately).
  Result<HttpClientResponse> after = HttpClient("127.0.0.1", stack.port).Get("/healthz");
  EXPECT_FALSE(after.ok());
}

// ---- Streaming building blocks --------------------------------------------

std::string TableToString(const Table& table) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    out += table.column_name(c);
    out += table.is_dimension(c) ? "[dim]" : "[measure]";
    out += ';';
  }
  out += '\n';
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (table.is_dimension(c)) {
        out += table.dict(c).name(table.dim_codes(c)[row]);
      } else {
        out += std::to_string(table.measure(c)[row]);
      }
      out += ';';
    }
    out += '\n';
  }
  return out;
}

TEST(CsvStreamTest, AnyChunkSplitParsesIdentically) {
  CsvSpec spec;
  spec.dimension_columns = {"d", "y"};
  spec.measure_columns = {"m"};
  const std::string text(kUploadCsv);

  Result<Table> whole = LoadCsvText(text, spec);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  const std::string expected = TableToString(*whole);

  for (size_t chunk_size : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{64}}) {
    CsvStreamParser parser(spec, "inline csv");
    for (size_t pos = 0; pos < text.size(); pos += chunk_size) {
      ASSERT_TRUE(parser.Feed(std::string_view(text).substr(pos, chunk_size)));
    }
    Result<Table> table = parser.Finish();
    ASSERT_TRUE(table.ok()) << "chunk=" << chunk_size << ": " << table.status().ToString();
    EXPECT_EQ(TableToString(*table), expected) << "chunk=" << chunk_size;
  }
}

TEST(CsvStreamTest, ErrorsAreIdenticalAcrossSplitsAndSticky) {
  CsvSpec spec;
  spec.dimension_columns = {"d"};
  spec.measure_columns = {"m"};
  const std::string bad = "d,m\nd0,1\nd1,oops\nd2,3\n";

  Result<Table> whole = LoadCsvText(bad, spec);
  ASSERT_FALSE(whole.ok());

  CsvStreamParser parser(spec, "inline csv");
  bool fed_ok = true;
  for (char c : bad) {
    if (!parser.Feed(std::string_view(&c, 1))) {
      fed_ok = false;
      break;
    }
  }
  EXPECT_FALSE(fed_ok);  // the parse failed mid-stream and stayed failed
  EXPECT_FALSE(parser.Feed("more\n"));
  Result<Table> streamed = parser.Finish();
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().ToString(), whole.status().ToString());
  EXPECT_NE(streamed.status().message().find("row 2"), std::string::npos);
}

TEST(CsvStreamTest, FinishFlushesUnterminatedTrailingLine) {
  CsvSpec spec;
  spec.dimension_columns = {"d"};
  spec.measure_columns = {"m"};
  CsvStreamParser parser(spec, "inline csv");
  ASSERT_TRUE(parser.Feed("d,m\nd0,1\nd1,2"));  // no trailing newline
  Result<Table> table = parser.Finish();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(parser.rows_parsed(), 2u);
}

TEST(CsvStreamTest, EmptyInputReportsMissingHeader) {
  CsvSpec spec;
  CsvStreamParser parser(spec, "uploaded csv");
  Result<Table> table = parser.Finish();
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("is empty (expected a header row)"),
            std::string::npos);
}

TEST(CsvStreamTest, EdgeFramingIdenticalAcrossBufferedAndChunkedFeeds) {
  CsvSpec spec;
  spec.dimension_columns = {"d"};
  spec.measure_columns = {"m"};
  // Every framing edge at once: a UTF-8 BOM before the header, CRLF and LF
  // line endings mixed in one file, and a final row with no trailing newline.
  const std::string text = "\xEF\xBB\xBF" "d,m\r\nd0,1\nd1,2\r\nd2,3";

  Result<Table> whole = LoadCsvText(text, spec);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_EQ(whole->num_rows(), 3u);
  // The BOM did not glue onto the first header name.
  EXPECT_EQ(whole->column_name(0), "d");
  EXPECT_EQ(whole->dict(0).name(whole->dim_codes(0)[0]), "d0");
  const std::string expected = TableToString(*whole);

  // Chunk-split anywhere — including inside the BOM and inside "\r\n".
  for (size_t chunk_size = 1; chunk_size <= text.size(); ++chunk_size) {
    CsvStreamParser parser(spec, "inline csv");
    for (size_t pos = 0; pos < text.size(); pos += chunk_size) {
      ASSERT_TRUE(parser.Feed(std::string_view(text).substr(pos, chunk_size)));
    }
    Result<Table> table = parser.Finish();
    ASSERT_TRUE(table.ok()) << "chunk=" << chunk_size << ": " << table.status().ToString();
    EXPECT_EQ(TableToString(*table), expected) << "chunk=" << chunk_size;
  }
}

// ---- Snapshot routes (differential) ----------------------------------------

// POST /v1/datasets/{name}/snapshot then create-from-snapshot, over BOTH
// front ends: the restored dataset answers byte-identically to the original
// and — because the snapshot carries the fitted-model cache — without a
// single new fit.
TEST(NetDifferentialTest, SnapshotRestartByteIdenticalAndWarmOnBothFrontEnds) {
  auto model_fits = [](HttpClient& client) {
    Result<HttpClientResponse> health = client.Get("/healthz");
    EXPECT_TRUE(health.ok());
    Result<JsonValue> parsed = ParseJson(health->body);
    EXPECT_TRUE(parsed.ok());
    return parsed->Find("model_cache")->Find("fits")->IntValue();
  };

  for (bool reactor : {false, true}) {
    ServiceOptions service_options;
    service_options.dataset_path_root = ::testing::TempDir();
    Stack stack(reactor, service_options);
    HttpClient client("127.0.0.1", stack.port);
    const std::string batch_body = BatchBody(R"("dataset":"panel")");
    const std::string snap_name =
        reactor ? "restart-reactor.snap" : "restart-threaded.snap";

    // Warm the panel (aggregates + fits), then snapshot it.
    Result<HttpClientResponse> warm = client.Post("/v1/recommend_batch", batch_body);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    ASSERT_EQ(warm->status, 200);
    Result<HttpClientResponse> saved = client.Post(
        "/v1/datasets/panel/snapshot", R"({"path":")" + snap_name + R"("})");
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    ASSERT_EQ(saved->status, 201) << saved->body;
    EXPECT_NE(saved->body.find("\"dataset\":\"panel\""), std::string::npos) << saved->body;
    EXPECT_NE(saved->body.find("\"path\":\"" + snap_name + "\""), std::string::npos);

    // Restore under a new name, with the default session committed to the
    // same drill state as the panel's.
    Result<HttpClientResponse> restored = client.Post(
        "/v1/datasets", R"({"name":"restored","snapshot":")" + snap_name +
                            R"(","commits":["time"]})");
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ASSERT_EQ(restored->status, 201) << restored->body;
    EXPECT_NE(restored->body.find("\"dataset\":\"restored\""), std::string::npos)
        << restored->body;

    // The restored dataset answers byte-identically with zero new fits.
    int64_t fits_before = model_fits(client);
    Result<HttpClientResponse> replay =
        client.Post("/v1/recommend_batch", BatchBody(R"("dataset":"restored")"));
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    ASSERT_EQ(replay->status, 200);
    EXPECT_EQ(replay->body, warm->body) << (reactor ? "reactor" : "threaded");
    EXPECT_EQ(model_fits(client), fits_before)
        << "restored dataset trained models despite a warm snapshot";
  }
}

// ---- Keep-alive request caps -----------------------------------------------

// With max_requests_per_connection = N, response N carries Connection: close
// and the socket is cleanly closed: request N+1 on the same connection gets
// EOF, not a hang (clients reconnect). The satellite case: 257 pipelined
// requests against a cap of 256.
TEST(NetKeepAliveLimitTest, Request257GetsCleanCloseOnBothFrontEnds) {
  constexpr int kCap = 256;
  const HttpHandler handler = [](const HttpRequest&) {
    return HttpResponse::Json(200, "{\"pong\":true}");
  };

  HttpServerOptions threaded_options;
  threaded_options.num_threads = 1;
  threaded_options.max_requests_per_connection = kCap;
  HttpServer threaded(std::move(threaded_options), handler);
  ASSERT_TRUE(threaded.Start().ok());

  ReactorServerOptions reactor_options;
  reactor_options.num_threads = 1;
  reactor_options.tick_interval_ms = 25;
  reactor_options.max_requests_per_connection = kCap;
  ReactorServer reactor(std::move(reactor_options), handler);
  ASSERT_TRUE(reactor.Start().ok());

  for (int port : {threaded.port(), reactor.port()}) {
    std::string pipelined;
    for (int i = 0; i < kCap + 1; ++i) {
      pipelined += "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n";
    }
    RawSocket socket(port);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(socket.Send(pipelined));
    std::string raw = socket.ReadUntilClosed(10000);

    // Exactly kCap responses: the 257th request was never answered.
    size_t responses = 0;
    for (size_t pos = raw.find("HTTP/1.1 200"); pos != std::string::npos;
         pos = raw.find("HTTP/1.1 200", pos + 1)) {
      ++responses;
    }
    EXPECT_EQ(responses, static_cast<size_t>(kCap)) << "port=" << port;
    // The final response announced the close; none before it did.
    size_t close_header = raw.find("Connection: close");
    ASSERT_NE(close_header, std::string::npos) << "port=" << port;
    EXPECT_EQ(raw.find("Connection: close", close_header + 1), std::string::npos);
    EXPECT_GT(close_header, raw.rfind("HTTP/1.1 200"));
    // And the server really closed: EOF, not silence.
    EXPECT_TRUE(socket.WaitForEof(5000)) << "port=" << port;
  }
  threaded.Stop();
  reactor.Stop();
}

// A cap of 1 degenerates to Connection: close on every response.
TEST(NetKeepAliveLimitTest, CapOfOneClosesAfterEveryResponse) {
  ReactorServerOptions options;
  options.num_threads = 1;
  options.tick_interval_ms = 25;
  options.max_requests_per_connection = 1;
  ReactorServer server(std::move(options), [](const HttpRequest&) {
    return HttpResponse::Json(200, "{}");
  });
  ASSERT_TRUE(server.Start().ok());

  RawSocket socket(server.port());
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket.Send("GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
                          "GET /b HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string raw = socket.ReadUntilClosed(5000);
  EXPECT_NE(raw.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(raw.find("HTTP/1.1 200", raw.find("HTTP/1.1 200") + 1), std::string::npos);
  EXPECT_NE(raw.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(socket.WaitForEof(2000));
  server.Stop();
}

TEST(NetStreamingTest, BatchToJsonPiecesConcatenatesToToJson) {
  Result<Session> session = Session::Create(MakePanel());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Commit("time").ok());
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < kYears; ++y) {
    complaints.push_back(ComplaintSpec::TooHigh("std", "severity")
                             .Where("year", "y" + std::to_string(y)));
  }
  Result<BatchExploreResponse> batch = session->RecommendAll(
      std::span<const ComplaintSpec>(complaints.data(), complaints.size()));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  std::string joined;
  for (const std::string& piece : batch->ToJsonPieces()) joined += piece;
  EXPECT_EQ(joined, batch->ToJson());
}

}  // namespace
}  // namespace reptile
