#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors: configure + build with
# -Wall -Wextra -Werror (the REPTILE_WERROR preset), run ctest.
# Future PRs must keep this green.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"

cmake -B "$BUILD_DIR" -S . -DREPTILE_WERROR=ON "$@"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
