#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors: configure + build with
# -Wall -Wextra -Werror (the REPTILE_WERROR preset), run ctest — then build
# the library and tests again under ThreadSanitizer and re-run the suite, so
# every PR exercises the parallel engine paths under race detection.
# Future PRs must keep both green. Set REPTILE_SKIP_TSAN=1 to skip the TSan
# pass (e.g. on toolchains without libtsan).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DREPTILE_WERROR=ON "$@"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${REPTILE_SKIP_TSAN:-0}" != "1" ]]; then
  # Benchmarks and examples add nothing to race coverage; skip them for speed.
  cmake -B "$TSAN_BUILD_DIR" -S . -DREPTILE_TSAN=ON \
    -DREPTILE_BUILD_BENCHMARKS=OFF -DREPTILE_BUILD_EXAMPLES=OFF "$@"
  cmake --build "$TSAN_BUILD_DIR" -j
  # halt_on_error surfaces the first race as a test failure instead of a log
  # line; second_deadlock_stack improves lock-order reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
