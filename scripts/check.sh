#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors: configure + build with
# -Wall -Wextra -Werror (the REPTILE_WERROR preset), run ctest, then smoke
# the HTTP server binary (start reptile_serve on an ephemeral port, probe
# /healthz and /v1/recommend, assert a clean SIGTERM shutdown) — then build
# the library and tests again under ThreadSanitizer and re-run the suite, so
# every PR exercises the parallel engine and server paths under race
# detection. Future PRs must keep all stages green. Set REPTILE_SKIP_TSAN=1
# to skip the TSan pass (e.g. on toolchains without libtsan);
# REPTILE_SKIP_SMOKE=1 skips the server smoke (e.g. no curl, no loopback).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DREPTILE_WERROR=ON "$@"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${REPTILE_SKIP_SMOKE:-0}" != "1" ]]; then
  echo "--- server smoke: reptile_serve --demo on an ephemeral port"
  SERVE_LOG="$(mktemp)"
  "$BUILD_DIR/reptile_serve" --demo --port 0 --http-threads 2 > "$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_LOG")"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG"; exit 1; }
    sleep 0.1
  done
  [[ -n "$PORT" ]] || { echo "server never reported its port"; cat "$SERVE_LOG"; exit 1; }
  curl -fsS "http://127.0.0.1:$PORT/healthz" | grep -q '"status":"ok"'
  curl -fsS -X POST "http://127.0.0.1:$PORT/v1/recommend" \
      -d '{"dataset":"demo","complaint":{"aggregate":"std","measure":"severity","where":[{"column":"year","value":"y3"}]}}' \
    | grep -q '"best_index"'
  # Unknown datasets must map to HTTP 404 through the Status contract.
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://127.0.0.1:$PORT/v1/recommend" -d '{"dataset":"nope","complaint":{"aggregate":"count"}}')" == "404" ]]
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"   # exits 0 on a clean shutdown; set -e fails otherwise
  trap - EXIT
  echo "--- server smoke passed"
fi

if [[ "${REPTILE_SKIP_TSAN:-0}" != "1" ]]; then
  # Benchmarks and examples add nothing to race coverage; skip them for speed.
  cmake -B "$TSAN_BUILD_DIR" -S . -DREPTILE_TSAN=ON \
    -DREPTILE_BUILD_BENCHMARKS=OFF -DREPTILE_BUILD_EXAMPLES=OFF "$@"
  cmake --build "$TSAN_BUILD_DIR" -j
  # halt_on_error surfaces the first race as a test failure instead of a log
  # line; second_deadlock_stack improves lock-order reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
