#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors: configure + build with
# -Wall -Wextra -Werror (the REPTILE_WERROR preset), run ctest, then smoke
# the HTTP server binary (start reptile_serve on an ephemeral port, probe
# /healthz and /v1/recommend, assert a clean SIGTERM shutdown) — then build
# the library and tests again under ThreadSanitizer and re-run the suite, so
# every PR exercises the parallel engine and server paths under race
# detection, and once more under Address+UBSan focused on the byte-level
# snapshot/codec suite. Future PRs must keep all stages green. Set
# REPTILE_SKIP_TSAN=1 to skip the TSan pass (e.g. on toolchains without
# libtsan); REPTILE_SKIP_ASAN=1 likewise for the ASan pass;
# REPTILE_SKIP_SMOKE=1 skips the server smoke (e.g. no curl, no loopback).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-check}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"

# A bench stage that "passed" without leaving its JSON behind is a silent
# no-op, not a pass: every expected BENCH_*.json must exist and be non-empty
# before any grep gates run against it.
require_bench_json() {
  if [[ ! -f "$1" ]]; then
    echo "FAIL: expected bench output $1 was never written" >&2
    exit 1
  fi
  if [[ ! -s "$1" ]]; then
    echo "FAIL: expected bench output $1 is empty" >&2
    exit 1
  fi
}

cmake -B "$BUILD_DIR" -S . -DREPTILE_WERROR=ON "$@"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ -x "$BUILD_DIR/bench/model_cache" ]]; then
  echo "--- model-cache bench: warm sessions must perform zero fits"
  # Emits BENCH_model_cache.json (cold vs warm latency + fits-performed) and
  # exits non-zero when a warm run trains anything; the grep double-checks
  # the recorded contract.
  "$BUILD_DIR/bench/model_cache" "$BUILD_DIR/BENCH_model_cache.json"
  require_bench_json "$BUILD_DIR/BENCH_model_cache.json"
  grep -q '"warm_fits":0' "$BUILD_DIR/BENCH_model_cache.json"
  grep -q '"warm_repeat_fits":0' "$BUILD_DIR/BENCH_model_cache.json"
  echo "--- model-cache bench passed"
fi

if [[ -x "$BUILD_DIR/bench/server_saturation" ]]; then
  echo "--- server-saturation bench: reactor sweep + 256-connection idle hold"
  # Emits BENCH_server_saturation.json (p50/p99/rps per client-count step,
  # idle-hold thread accounting, reactor counters) and exits non-zero when
  # the structural contract breaks; the greps double-check the recorded
  # contract — correctness fields only, never timings (CI machines are slow
  # and shared).
  "$BUILD_DIR/bench/server_saturation" "$BUILD_DIR/BENCH_server_saturation.json"
  require_bench_json "$BUILD_DIR/BENCH_server_saturation.json"
  grep -q '"idle_ok":true' "$BUILD_DIR/BENCH_server_saturation.json"
  grep -q '"probe_ok":true' "$BUILD_DIR/BENCH_server_saturation.json"
  grep -q '"failures":0' "$BUILD_DIR/BENCH_server_saturation.json"
  grep -q '"mismatches":0' "$BUILD_DIR/BENCH_server_saturation.json"
  grep -q '"open_with_idle":256' "$BUILD_DIR/BENCH_server_saturation.json"
  echo "--- server-saturation bench passed"
fi

if [[ -x "$BUILD_DIR/bench/snapshot_restart" ]]; then
  echo "--- snapshot bench: warm restart byte-identity + eviction under budget"
  # Emits BENCH_snapshot.json (cold CSV-parse+build+fit vs snapshot load to
  # first recommend, plus the budgeted churn sweep) and exits non-zero on a
  # contract break; the greps double-check the recorded contract —
  # correctness fields only, never timings.
  "$BUILD_DIR/bench/snapshot_restart" "$BUILD_DIR/BENCH_snapshot.json"
  require_bench_json "$BUILD_DIR/BENCH_snapshot.json"
  grep -q '"byte_identical":true' "$BUILD_DIR/BENCH_snapshot.json"
  grep -q '"warm_fits":0' "$BUILD_DIR/BENCH_snapshot.json"
  grep -q '"under_budget":true' "$BUILD_DIR/BENCH_snapshot.json"
  echo "--- snapshot bench passed"
fi

if [[ -x "$BUILD_DIR/bench/obs_overhead" ]]; then
  echo "--- observability bench: tracing + metrics must cost <2% on the fig08 panel"
  # Emits BENCH_observability.json (traced vs untraced min-of-repeats latency
  # and the span/histogram counts) and exits non-zero when the traced arm
  # recorded nothing or blew the overhead budget; the greps double-check the
  # recorded contract.
  "$BUILD_DIR/bench/obs_overhead" "$BUILD_DIR/BENCH_observability.json"
  require_bench_json "$BUILD_DIR/BENCH_observability.json"
  grep -q '"within_budget":true' "$BUILD_DIR/BENCH_observability.json"
  grep -q '"spans_recorded":' "$BUILD_DIR/BENCH_observability.json"
  if grep -q '"spans_recorded":0,' "$BUILD_DIR/BENCH_observability.json"; then
    echo "FAIL: observability bench recorded zero spans" >&2
    exit 1
  fi
  echo "--- observability bench passed"
fi

if [[ -x "$BUILD_DIR/bench/incremental_append" ]]; then
  echo "--- incremental-append bench: append must beat the cold rebuild"
  # Emits BENCH_incremental.json (f-tree builds and model fits for absorbing
  # a delta via the version chain vs a cold rebuild of the concatenated CSV,
  # plus the dirty-subtree accounting) and exits non-zero when the append is
  # not strictly cheaper, a rebuild lands outside the dirtied subtrees, or
  # any response byte diverges; the greps double-check the recorded contract
  # — structural fields only, never timings (CI machines are slow and
  # shared).
  "$BUILD_DIR/bench/incremental_append" "$BUILD_DIR/BENCH_incremental.json"
  require_bench_json "$BUILD_DIR/BENCH_incremental.json"
  grep -q '"append_strictly_fewer":true' "$BUILD_DIR/BENCH_incremental.json"
  grep -q '"rebuilds_outside_dirty":0' "$BUILD_DIR/BENCH_incremental.json"
  grep -q '"byte_identical":true' "$BUILD_DIR/BENCH_incremental.json"
  grep -q '"pinned_stable":true' "$BUILD_DIR/BENCH_incremental.json"
  echo "--- incremental-append bench passed"
fi

if [[ "${REPTILE_SKIP_SMOKE:-0}" != "1" ]]; then
  echo "--- server smoke: reptile_serve --demo on an ephemeral port"
  SERVE_LOG="$(mktemp)"
  "$BUILD_DIR/reptile_serve" --demo --port 0 --http-threads 2 > "$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_LOG")"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG"; exit 1; }
    sleep 0.1
  done
  [[ -n "$PORT" ]] || { echo "server never reported its port"; cat "$SERVE_LOG"; exit 1; }
  # No `grep -q` downstream of curl: -q exits on first match, and under
  # pipefail a still-writing curl then dies with EPIPE (exit 23). Plain grep
  # reads to EOF, and >/dev/null keeps the gate silent.
  curl -fsS "http://127.0.0.1:$PORT/healthz" | grep '"status":"ok"' >/dev/null
  # The Prometheus endpoint serves the request-latency histogram, and a
  # client-supplied X-Request-Id is echoed back on the response.
  curl -fsS "http://127.0.0.1:$PORT/metricsz" \
    | grep 'reptile_http_request_duration_seconds_bucket' >/dev/null
  curl -fsS -D - -o /dev/null -H 'X-Request-Id: smoke-trace-1' \
      "http://127.0.0.1:$PORT/healthz" | grep -i '^x-request-id: smoke-trace-1' >/dev/null
  curl -fsS -X POST "http://127.0.0.1:$PORT/v1/recommend" \
      -d '{"dataset":"demo","complaint":{"aggregate":"std","measure":"severity","where":[{"column":"year","value":"y3"}]}}' \
    | grep '"best_index"' >/dev/null
  # Unknown datasets must map to HTTP 404 through the Status contract.
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://127.0.0.1:$PORT/v1/recommend" -d '{"dataset":"nope","complaint":{"aggregate":"count"}}')" == "404" ]]

  echo "--- server smoke: full dataset/session lifecycle"
  # Upload a CSV inline into the registry (and pre-commit its time hierarchy).
  UPLOAD='{"name":"up","csv":"d,y,m\nd0,y0,1\nd0,y0,2\nd0,y1,3\nd0,y1,4\nd1,y0,5\nd1,y0,3\nd1,y1,2\nd1,y1,6\nd2,y0,4\nd2,y0,2\nd2,y1,5\nd2,y1,1\n","dimensions":["d","y"],"measures":["m"],"hierarchies":[{"name":"geo","attributes":["d"]},{"name":"time","attributes":["y"]}],"commits":["time"]}'
  curl -fsS -X POST "http://127.0.0.1:$PORT/v1/datasets" -d "$UPLOAD" | grep '"dataset":"up"' >/dev/null
  # Create a per-client session restoring the committed drill state.
  SID="$(curl -fsS -X POST "http://127.0.0.1:$PORT/v1/sessions" \
      -d '{"dataset":"up","committed":{"time":1}}' \
    | sed -n 's/.*"session":"\([^"]*\)".*/\1/p')"
  [[ -n "$SID" ]] || { echo "session create returned no id"; exit 1; }
  # Recommend and commit through the session id.
  curl -fsS -X POST "http://127.0.0.1:$PORT/v1/recommend" \
      -d '{"session":"'"$SID"'","complaint":{"aggregate":"mean","measure":"m","where":[{"column":"y","value":"y0"}]}}' \
    | grep '"best_index"' >/dev/null
  curl -fsS -X POST "http://127.0.0.1:$PORT/v1/commit" \
      -d '{"session":"'"$SID"'","hierarchy":"geo"}' | grep '"depth":1' >/dev/null
  # Snapshot shows the committed drill state; delete ends the session.
  curl -fsS "http://127.0.0.1:$PORT/v1/sessions/$SID" | grep '"geo":1' >/dev/null
  curl -fsS -X DELETE "http://127.0.0.1:$PORT/v1/sessions/$SID" | grep '"deleted"' >/dev/null
  [[ "$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/v1/sessions/$SID")" == "404" ]]

  echo "--- server smoke: append lifecycle (pin v1, append v2, both answer, delete)"
  # Pin a session to version 1 BEFORE the append so the ancestor stays live.
  PIN_SID="$(curl -fsS -X POST "http://127.0.0.1:$PORT/v1/sessions" \
      -d '{"dataset":"up@v1","committed":{"time":1}}' \
    | sed -n 's/.*"session":"\([^"]*\)".*/\1/p')"
  [[ -n "$PIN_SID" ]] || { echo "pinned session create returned no id"; exit 1; }
  # Inline-JSON append: one new district row becomes version 2 of the chain.
  curl -fsS -X POST "http://127.0.0.1:$PORT/v1/datasets/up/rows" \
      -d '{"csv":"d,y,m\nd3,y0,7\n"}' | grep '"dataset_version":2' >/dev/null
  # Both versions answer: the head recommend reads v2, the pinned session
  # stays on v1 — the X-Dataset-Version header names the version each used.
  curl -fsS -D - -X POST "http://127.0.0.1:$PORT/v1/recommend" \
      -d '{"dataset":"up","complaint":{"aggregate":"mean","measure":"m","where":[{"column":"y","value":"y0"}]}}' \
    | grep -i '^x-dataset-version: 2' >/dev/null
  curl -fsS -D - -X POST "http://127.0.0.1:$PORT/v1/recommend" \
      -d '{"session":"'"$PIN_SID"'","complaint":{"aggregate":"mean","measure":"m","where":[{"column":"y","value":"y0"}]}}' \
    | grep -i '^x-dataset-version: 1' >/dev/null
  # /healthz tracks the chain: head 2 with both versions live while pinned.
  curl -fsS "http://127.0.0.1:$PORT/healthz" \
    | grep '"dataset":"up","head":2,"live":\[1,2\]' >/dev/null
  # Schema-changing appends are 400s naming the exact offending column.
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://127.0.0.1:$PORT/v1/datasets/up/rows" \
        -d '{"csv":"d,y,m,extra\nd0,y0,1,2\n"}')" == "400" ]]
  curl -s -X POST "http://127.0.0.1:$PORT/v1/datasets/up/rows" \
      -d '{"csv":"d,y,m,extra\nd0,y0,1,2\n"}' \
    | grep "unknown column 'extra'" >/dev/null
  # Unpin, append again: the GC retires v1 AND v2 (nothing pins them now),
  # and the retirements surface on /healthz and /metricsz.
  curl -fsS -X DELETE "http://127.0.0.1:$PORT/v1/sessions/$PIN_SID" | grep '"deleted"' >/dev/null
  curl -fsS -X POST "http://127.0.0.1:$PORT/v1/datasets/up/rows" \
      -d '{"csv":"d,y,m\nd3,y1,8\n"}' | grep '"dataset_version":3' >/dev/null
  curl -fsS "http://127.0.0.1:$PORT/healthz" \
    | grep '"dataset":"up","head":3,"live":\[3\]' >/dev/null
  curl -fsS "http://127.0.0.1:$PORT/healthz" | grep '"versions_gc":2' >/dev/null
  curl -fsS "http://127.0.0.1:$PORT/metricsz" \
    | grep -E 'reptile_dataset_head_version\{dataset="up"\} 3' >/dev/null
  curl -fsS "http://127.0.0.1:$PORT/metricsz" \
    | grep -E 'reptile_versions_gc_total [1-9]' >/dev/null
  curl -fsS "http://127.0.0.1:$PORT/metricsz" \
    | grep -E 'reptile_cache_invalidations_total [1-9]' >/dev/null
  # DELETE drops the WHOLE chain: head and pinned spellings both 404 after.
  curl -fsS -X DELETE "http://127.0.0.1:$PORT/v1/datasets/up" | grep '"deleted"' >/dev/null
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://127.0.0.1:$PORT/v1/recommend" \
        -d '{"dataset":"up","complaint":{"aggregate":"count"}}')" == "404" ]]
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://127.0.0.1:$PORT/v1/recommend" \
        -d '{"dataset":"up@v3","complaint":{"aggregate":"count"}}')" == "404" ]]

  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"   # exits 0 on a clean shutdown; set -e fails otherwise
  trap - EXIT
  echo "--- server smoke passed"

  echo "--- reactor smoke: reptile_serve --reactor with auth + streamed upload"
  REACTOR_LOG="$(mktemp)"
  "$BUILD_DIR/reptile_serve" --demo --reactor --port 0 --http-threads 2 \
      --auth-token smoke-tok > "$REACTOR_LOG" 2>&1 &
  REACTOR_PID=$!
  trap 'kill -9 "$REACTOR_PID" 2>/dev/null || true' EXIT
  RPORT=""
  for _ in $(seq 1 100); do
    RPORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$REACTOR_LOG")"
    [[ -n "$RPORT" ]] && break
    kill -0 "$REACTOR_PID" 2>/dev/null || { cat "$REACTOR_LOG"; exit 1; }
    sleep 0.1
  done
  [[ -n "$RPORT" ]] || { echo "reactor server never reported its port"; cat "$REACTOR_LOG"; exit 1; }
  # /healthz is auth-exempt and must surface the reactor's transport counters.
  curl -fsS "http://127.0.0.1:$RPORT/healthz" | grep '"transport":{"open_connections"' >/dev/null
  # Mutating routes require the bearer token: 401 without, 201 with — and the
  # with-token path is a text/csv body streamed straight into the parser.
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://127.0.0.1:$RPORT/v1/datasets?name=s&dimensions=d,y&measures=m" \
        -H 'Content-Type: text/csv' --data-binary $'d,y,m\nd0,y0,1\n')" == "401" ]]
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -H 'Authorization: Bearer smoke-tok' -H 'Content-Type: text/csv' \
        --data-binary $'d,y,m\nd0,y0,1\nd0,y1,2\nd1,y0,3\nd1,y1,4\n' \
        "http://127.0.0.1:$RPORT/v1/datasets?name=s&dimensions=d,y&measures=m&hierarchy=geo:d&hierarchy=time:y&commits=time")" == "201" ]]
  # Reads stay open without a token; the streamed dataset is queryable.
  curl -fsS -X POST "http://127.0.0.1:$RPORT/v1/recommend" \
      -d '{"dataset":"s","complaint":{"aggregate":"mean","measure":"m","where":[{"column":"y","value":"y0"}]}}' \
    | grep '"best_index"' >/dev/null
  # /metricsz works on the reactor front end too, including the transport
  # counters only this front end produces.
  curl -fsS "http://127.0.0.1:$RPORT/metricsz" \
    | grep 'reptile_transport_requests_dispatched' >/dev/null

  echo "--- reactor smoke: streamed append lifecycle on the event-driven front end"
  # Pin a session to version 1, then append a raw text/csv body streamed
  # straight into the parser. Appends are mutations: 401 without the token.
  RPIN="$(curl -fsS -X POST -H 'Authorization: Bearer smoke-tok' \
      "http://127.0.0.1:$RPORT/v1/sessions" -d '{"dataset":"s","committed":{"time":1}}' \
    | sed -n 's/.*"session":"\([^"]*\)".*/\1/p')"
  [[ -n "$RPIN" ]] || { echo "reactor pinned session create returned no id"; exit 1; }
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -H 'Content-Type: text/csv' --data-binary $'d,y,m\nd2,y0,9\n' \
        "http://127.0.0.1:$RPORT/v1/datasets/s/rows")" == "401" ]]
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -H 'Authorization: Bearer smoke-tok' -H 'Content-Type: text/csv' \
        --data-binary $'d,y,m\nd2,y0,9\n' \
        "http://127.0.0.1:$RPORT/v1/datasets/s/rows")" == "201" ]]
  # Both versions answer here too: pinned session on v1, head on v2.
  curl -fsS -D - -X POST "http://127.0.0.1:$RPORT/v1/recommend" \
      -d '{"session":"'"$RPIN"'","complaint":{"aggregate":"mean","measure":"m","where":[{"column":"y","value":"y0"}]}}' \
    | grep -i '^x-dataset-version: 1' >/dev/null
  curl -fsS -D - -X POST "http://127.0.0.1:$RPORT/v1/recommend" \
      -d '{"dataset":"s","complaint":{"aggregate":"mean","measure":"m","where":[{"column":"y","value":"y0"}]}}' \
    | grep -i '^x-dataset-version: 2' >/dev/null
  curl -fsS "http://127.0.0.1:$RPORT/healthz" \
    | grep '"dataset":"s","head":2,"live":\[1,2\]' >/dev/null
  # DELETE drops the chain and every session over it, pinned ones included.
  curl -fsS -X DELETE -H 'Authorization: Bearer smoke-tok' \
      "http://127.0.0.1:$RPORT/v1/datasets/s" | grep '"deleted"' >/dev/null
  [[ "$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$RPORT/v1/sessions/$RPIN")" == "404" ]]
  [[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "http://127.0.0.1:$RPORT/v1/recommend" \
        -d '{"dataset":"s@v2","complaint":{"aggregate":"count"}}')" == "404" ]]
  kill -TERM "$REACTOR_PID"
  wait "$REACTOR_PID"
  trap - EXIT
  echo "--- reactor smoke passed"

  echo "--- loadgen: schedule determinism (same seed => identical bytes)"
  # The schedule is a pure function of (scenario, seed): two dump runs must
  # be byte-identical, and a different seed must produce different bytes.
  "$BUILD_DIR/reptile_loadgen" --scenario both --seed 42 --dump-schedule "$BUILD_DIR/sched_a"
  "$BUILD_DIR/reptile_loadgen" --scenario both --seed 42 --dump-schedule "$BUILD_DIR/sched_b"
  cmp "$BUILD_DIR/sched_a.steady" "$BUILD_DIR/sched_b.steady"
  cmp "$BUILD_DIR/sched_a.burst" "$BUILD_DIR/sched_b.burst"
  "$BUILD_DIR/reptile_loadgen" --scenario steady --seed 43 --dump-schedule "$BUILD_DIR/sched_c"
  if cmp -s "$BUILD_DIR/sched_a.steady" "$BUILD_DIR/sched_c"; then
    echo "FAIL: different seeds produced identical schedules" >&2
    exit 1
  fi

  echo "--- loadgen: steady open-loop replay, every response byte-validated"
  # Unthrottled server: the steady scenario must complete with zero failures,
  # zero mismatches, zero timeouts — loadgen itself exits non-zero otherwise,
  # and the greps double-check the recorded report. Structural gates only:
  # never absolute timings (CI machines are slow and shared).
  STEADY_LOG="$(mktemp)"
  "$BUILD_DIR/reptile_serve" --demo --port 0 --http-threads 4 > "$STEADY_LOG" 2>&1 &
  STEADY_PID=$!
  trap 'kill -9 "$STEADY_PID" 2>/dev/null || true' EXIT
  LPORT=""
  for _ in $(seq 1 100); do
    LPORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$STEADY_LOG")"
    [[ -n "$LPORT" ]] && break
    kill -0 "$STEADY_PID" 2>/dev/null || { cat "$STEADY_LOG"; exit 1; }
    sleep 0.1
  done
  [[ -n "$LPORT" ]] || { echo "steady server never reported its port"; cat "$STEADY_LOG"; exit 1; }
  "$BUILD_DIR/reptile_loadgen" --port "$LPORT" --scenario steady --seed 42 \
    --out "$BUILD_DIR/BENCH_workload_steady.json"
  require_bench_json "$BUILD_DIR/BENCH_workload_steady.json"
  grep -q '"scenario":"steady"' "$BUILD_DIR/BENCH_workload_steady.json"
  grep -q '"mismatches":0' "$BUILD_DIR/BENCH_workload_steady.json"
  grep -q '"failures":0' "$BUILD_DIR/BENCH_workload_steady.json"
  grep -q '"timeouts":0' "$BUILD_DIR/BENCH_workload_steady.json"
  grep -q '"p50_ms":' "$BUILD_DIR/BENCH_workload_steady.json"
  grep -q '"p999_ms":' "$BUILD_DIR/BENCH_workload_steady.json"

  echo "--- loadgen: churn appends mid-run with pinned analysts, byte-validated"
  # Same unthrottled server (per-scenario dataset names never collide): a
  # feeder appends v2 and v3 mid-run while analysts stay pinned to @v1, and
  # every response — pinned and head alike — must match the oracle's bytes.
  "$BUILD_DIR/reptile_loadgen" --port "$LPORT" --scenario churn --seed 42 \
    --out "$BUILD_DIR/BENCH_workload_churn.json"
  require_bench_json "$BUILD_DIR/BENCH_workload_churn.json"
  grep -q '"scenario":"churn"' "$BUILD_DIR/BENCH_workload_churn.json"
  grep -q '"mismatches":0' "$BUILD_DIR/BENCH_workload_churn.json"
  grep -q '"failures":0' "$BUILD_DIR/BENCH_workload_churn.json"
  grep -q '"timeouts":0' "$BUILD_DIR/BENCH_workload_churn.json"
  kill -TERM "$STEADY_PID"
  wait "$STEADY_PID"
  trap - EXIT

  echo "--- loadgen: burst overload must provoke 429s AND 503 sheds"
  # One throttled worker behind a tight token bucket and a 1ms queue
  # deadline: the MMPP burst has to light up both pushback paths
  # (loadgen --expect-overload exits non-zero unless both counters moved).
  BURST_LOG="$(mktemp)"
  "$BUILD_DIR/reptile_serve" --demo --port 0 --http-threads 1 \
      --rate-limit-rps 150 --rate-limit-burst 50 --queue-deadline-ms 1 \
      > "$BURST_LOG" 2>&1 &
  BURST_PID=$!
  trap 'kill -9 "$BURST_PID" 2>/dev/null || true' EXIT
  BPORT=""
  for _ in $(seq 1 100); do
    BPORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$BURST_LOG")"
    [[ -n "$BPORT" ]] && break
    kill -0 "$BURST_PID" 2>/dev/null || { cat "$BURST_LOG"; exit 1; }
    sleep 0.1
  done
  [[ -n "$BPORT" ]] || { echo "burst server never reported its port"; cat "$BURST_LOG"; exit 1; }
  "$BUILD_DIR/reptile_loadgen" --port "$BPORT" --scenario burst --seed 42 \
    --workers 24 --expect-overload --out "$BUILD_DIR/BENCH_workload_burst.json"
  require_bench_json "$BUILD_DIR/BENCH_workload_burst.json"
  grep -q '"scenario":"burst"' "$BUILD_DIR/BENCH_workload_burst.json"
  grep -q '"mismatches":0' "$BUILD_DIR/BENCH_workload_burst.json"
  if grep -q '"rate_limited_429":0,' "$BUILD_DIR/BENCH_workload_burst.json"; then
    echo "FAIL: burst run never hit the rate limiter" >&2
    exit 1
  fi
  if grep -q '"shed_503":0,' "$BUILD_DIR/BENCH_workload_burst.json"; then
    echo "FAIL: burst run never shed queued work" >&2
    exit 1
  fi
  # The same counters must be visible on the server's own /metricsz.
  METRICS="$(curl -fsS "http://127.0.0.1:$BPORT/metricsz")"
  echo "$METRICS" | grep -Eq 'reptile_transport_requests_rate_limited [1-9]'
  echo "$METRICS" | grep -Eq 'reptile_transport_requests_shed [1-9]'
  kill -TERM "$BURST_PID"
  wait "$BURST_PID"
  trap - EXIT

  # The canonical two-scenario report: splice the per-run scenario objects
  # into one BENCH_workload.json (each report is a single JSON line).
  STEADY_SCEN="$(sed -e 's/^.*"scenarios":\[//' -e 's/\]}$//' "$BUILD_DIR/BENCH_workload_steady.json")"
  BURST_SCEN="$(sed -e 's/^.*"scenarios":\[//' -e 's/\]}$//' "$BUILD_DIR/BENCH_workload_burst.json")"
  printf '{"bench":"workload","seed":42,"scenarios":[%s,%s]}\n' \
    "$STEADY_SCEN" "$BURST_SCEN" > "$BUILD_DIR/BENCH_workload.json"
  require_bench_json "$BUILD_DIR/BENCH_workload.json"
  grep -q '"scenario":"steady"' "$BUILD_DIR/BENCH_workload.json"
  grep -q '"scenario":"burst"' "$BUILD_DIR/BENCH_workload.json"
  echo "--- loadgen stage passed"
fi

if [[ "${REPTILE_SKIP_ASAN:-0}" != "1" ]]; then
  # ASan+UBSan over the suites that parse or shuffle raw bytes: the snapshot
  # container/codec round trips and corruption sweeps, the LRU cache, the
  # CSV chunk-split framing, and the observability primitives (the renderers
  # build Prometheus/JSON text by hand) — the places where an off-by-one
  # reads out of bounds instead of racing.
  cmake -B "$ASAN_BUILD_DIR" -S . -DREPTILE_ASAN=ON \
    -DREPTILE_BUILD_BENCHMARKS=OFF -DREPTILE_BUILD_EXAMPLES=OFF "$@"
  cmake --build "$ASAN_BUILD_DIR" -j
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$(nproc)" \
      -R 'Snapshot|LruByteCache|CsvStream|Obs'
fi

if [[ "${REPTILE_SKIP_TSAN:-0}" != "1" ]]; then
  # Benchmarks and examples add nothing to race coverage; skip them for speed.
  cmake -B "$TSAN_BUILD_DIR" -S . -DREPTILE_TSAN=ON \
    -DREPTILE_BUILD_BENCHMARKS=OFF -DREPTILE_BUILD_EXAMPLES=OFF "$@"
  cmake --build "$TSAN_BUILD_DIR" -j
  # halt_on_error surfaces the first race as a test failure instead of a log
  # line; second_deadlock_stack improves lock-order reports.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
